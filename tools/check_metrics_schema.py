#!/usr/bin/env python3
"""Validate tsdist observability JSON artifacts.

Checks a metrics dump against the tsdist.metrics.v1 schema, and optionally a
trace file against the Chrome trace-event format and a BENCH_*.json /
suite.json file against the tsdist.bench.v1 or tsdist.bench.v2 schema (v2
adds the run manifest, per-case sample arrays, and the peak-RSS gauge; a v2
"suite" document aggregates several reports). Stdlib only; exits 0 on
success, 1 with one message per violation otherwise.

Also validates tsdist.results.v1 per-cell reports (tsdist_eval
--results-json) via --results: statuses, reasons, accuracy ranges, and the
summary tallies must all be internally consistent.

Also validates the live exposition endpoint's output via --openmetrics: the
OpenMetrics text format served at /metrics by tsdist_eval --serve (TYPE
metadata, counter `_total` samples, cumulative histogram `_bucket` series on
the 64<<i nanosecond bucket ladder, `_sum`/`_count`, trailing `# EOF`).

Usage:
  check_metrics_schema.py [METRICS.json]
      [--trace TRACE.json] [--bench BENCH.json] [--results RESULTS.json]
      [--openmetrics METRICS.txt]
      [--require-nonzero COUNTER ...] [--require-histogram NAME ...]
      [--require-case BENCH/CASE ...] [--min-samples N]
      [--self-test]
"""

import argparse
import copy
import json
import re
import sys

METRICS_SCHEMA = "tsdist.metrics.v1"
BENCH_SCHEMA_V1 = "tsdist.bench.v1"
BENCH_SCHEMA_V2 = "tsdist.bench.v2"
RESULTS_SCHEMA = "tsdist.results.v1"
RESULT_STATUSES = ("ok", "dnf", "failed", "interrupted")

# Histogram bucket ladder shared by every tsdist emitter: finite bucket i
# holds values <= 64 << i (nanoseconds). Bounds from any build are a prefix
# of this ladder, which is what keeps cross-run merges well-defined.
BUCKET_LADDER_BASE = 64


def _is_ladder_bound(le, index):
    return le == BUCKET_LADDER_BASE << index

MANIFEST_STRING_FIELDS = (
    "git_sha", "compiler", "compiler_flags", "build_type", "cpu_model",
    "scale",
)


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_histogram(errors, path, name, hist):
    if not isinstance(hist, dict):
        _err(errors, path, f"histogram {name!r} is not an object")
        return
    for key in ("count", "sum", "min", "max", "buckets"):
        if key not in hist:
            _err(errors, path, f"histogram {name!r} missing field {key!r}")
            return
    for key in ("count", "sum", "min", "max"):
        v = hist[key]
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"histogram {name!r} field {key!r} must be a non-negative "
                 f"integer, got {v!r}")
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        _err(errors, path, f"histogram {name!r} has no bucket list")
        return
    prev_bound = -1
    total = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} must be {{'le', 'count'}}")
            return
        count = bucket["count"]
        if not _is_int(count) or count < 0:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} count must be a "
                 f"non-negative integer, got {count!r}")
            return
        total += count
        le = bucket["le"]
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                _err(errors, path,
                     f"histogram {name!r} last bucket le must be '+Inf', "
                     f"got {le!r}")
        else:
            if not _is_int(le):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} le must be an integer "
                     f"bound, got {le!r}")
                return
            if le <= prev_bound:
                _err(errors, path,
                     f"histogram {name!r} bucket bounds must be strictly "
                     f"increasing ({le} after {prev_bound})")
            if not _is_ladder_bound(le, i):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} bound {le} is off the "
                     f"64<<i ladder (expected {BUCKET_LADDER_BASE << i})")
            prev_bound = le
    if total != hist["count"]:
        _err(errors, path,
             f"histogram {name!r} bucket counts sum to {total} but count "
             f"is {hist['count']}")
    if hist["count"] > 0 and hist["min"] > hist["max"]:
        _err(errors, path, f"histogram {name!r} has min > max")


def check_metrics(errors, path, doc, require_nonzero=(), require_histogram=()):
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        _err(errors, path,
             f"schema must be {METRICS_SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            _err(errors, path, f"missing or non-object section {section!r}")
            return
    for name, value in doc["counters"].items():
        if not _is_int(value) or value < 0:
            _err(errors, path,
                 f"counter {name!r} must be a non-negative integer, "
                 f"got {value!r}")
    for name, value in doc["gauges"].items():
        if not _is_num(value):
            _err(errors, path, f"gauge {name!r} must be a number, got {value!r}")
    for name, hist in doc["histograms"].items():
        check_histogram(errors, path, name, hist)
    for name in require_nonzero:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            _err(errors, path,
                 f"required counter {name!r} missing or zero (got {value!r})")
    for name in require_histogram:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            _err(errors, path,
                 f"required histogram {name!r} missing or empty")


def check_trace(errors, path, doc):
    if not isinstance(doc, list):
        _err(errors, path, "trace must be a JSON array of event objects")
        return
    if not doc:
        _err(errors, path, "trace contains no events")
        return
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            _err(errors, path, f"event {i} is not an object")
            return
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                _err(errors, path, f"event {i} missing field {key!r}")
                return
        if not isinstance(event["name"], str):
            _err(errors, path, f"event {i} name must be a string")
        if not isinstance(event["ph"], str):
            _err(errors, path, f"event {i} ph must be a string")
        for key in ("ts", "pid", "tid"):
            if not _is_num(event[key]):
                _err(errors, path, f"event {i} {key!r} must be a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not _is_num(dur) or dur < 0:
                _err(errors, path,
                     f"complete event {i} needs a non-negative 'dur', "
                     f"got {dur!r}")


def check_manifest(errors, path, manifest):
    if not isinstance(manifest, dict):
        _err(errors, path, "manifest must be an object")
        return
    if manifest.get("schema_version") != 2:
        _err(errors, path,
             f"manifest schema_version must be 2, "
             f"got {manifest.get('schema_version')!r}")
    for key in MANIFEST_STRING_FIELDS:
        v = manifest.get(key)
        if not isinstance(v, str):
            _err(errors, path, f"manifest field {key!r} must be a string, "
                               f"got {v!r}")
        elif key == "git_sha" and not v:
            _err(errors, path, "manifest git_sha is empty")
    if not isinstance(manifest.get("git_dirty"), bool):
        _err(errors, path, "manifest git_dirty must be a boolean")
    cores = manifest.get("cpu_cores")
    if not _is_int(cores) or cores <= 0:
        _err(errors, path,
             f"manifest cpu_cores must be a positive integer, got {cores!r}")
    for key in ("threads", "rng_seed"):
        v = manifest.get(key)
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"manifest field {key!r} must be a non-negative integer, "
                 f"got {v!r}")


def check_case(errors, path, i, case, min_samples=1):
    if not isinstance(case, dict):
        _err(errors, path, f"case {i} is not an object")
        return
    name = case.get("name")
    if not isinstance(name, str) or not name:
        _err(errors, path, f"case {i} needs a non-empty 'name'")
        name = f"#{i}"
    warmup = case.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"case {name!r} warmup must be a non-negative integer, "
             f"got {warmup!r}")
    samples = case.get("samples_ms")
    if not isinstance(samples, list) or not samples:
        _err(errors, path, f"case {name!r} needs a non-empty samples_ms array")
        return
    for s in samples:
        if not _is_num(s) or s < 0:
            _err(errors, path,
                 f"case {name!r} has a non-numeric/negative sample: {s!r}")
            return
    if case.get("iters") != len(samples):
        _err(errors, path,
             f"case {name!r} iters ({case.get('iters')!r}) != "
             f"len(samples_ms) ({len(samples)})")
    if len(samples) < min_samples:
        _err(errors, path,
             f"case {name!r} has {len(samples)} samples, "
             f"expected at least {min_samples}")
    for key in ("min_ms", "median_ms", "p90_ms", "mean_ms"):
        v = case.get(key)
        if not _is_num(v) or v < 0:
            _err(errors, path,
                 f"case {name!r} field {key!r} must be a non-negative "
                 f"number, got {v!r}")
            return
    if case["min_ms"] > case["median_ms"] or case["median_ms"] > case["p90_ms"]:
        _err(errors, path,
             f"case {name!r} summary ordering violated: expected "
             f"min <= median <= p90")
    if abs(case["min_ms"] - min(samples)) > 1e-3:
        _err(errors, path,
             f"case {name!r} min_ms does not match min(samples_ms)")


def check_bench_v2(errors, path, doc, min_samples=1):
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "field 'bench' must be a non-empty string")
    if not isinstance(doc.get("scale"), str):
        _err(errors, path, "field 'scale' must be a string")
    threads = doc.get("threads")
    if not _is_int(threads) or threads < 0:
        _err(errors, path,
             f"field 'threads' must be a non-negative integer, got {threads!r}")
    wall = doc.get("wall_ms")
    if not _is_num(wall) or wall < 0:
        _err(errors, path,
             f"field 'wall_ms' must be a non-negative number, got {wall!r}")
    if "manifest" not in doc:
        _err(errors, path, "v2 report missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    rss = doc.get("peak_rss_bytes")
    if not _is_int(rss) or rss < 0:
        _err(errors, path,
             f"field 'peak_rss_bytes' must be a non-negative integer, "
             f"got {rss!r}")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        _err(errors, path, "v2 report needs a non-empty 'cases' array")
    else:
        for i, case in enumerate(cases):
            check_case(errors, path, i, case, min_samples=min_samples)
    if "metrics" not in doc:
        _err(errors, path, "missing embedded 'metrics' object")
    else:
        check_metrics(errors, f"{path}#metrics", doc["metrics"])


def check_suite(errors, path, doc, min_samples=1):
    for key in ("suite", "scale"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            _err(errors, path, f"suite field {key!r} must be a non-empty string")
    repeat = doc.get("repeat")
    if not _is_int(repeat) or repeat < 1:
        _err(errors, path,
             f"suite 'repeat' must be a positive integer, got {repeat!r}")
    warmup = doc.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"suite 'warmup' must be a non-negative integer, got {warmup!r}")
    if "manifest" not in doc:
        _err(errors, path, "suite missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        _err(errors, path, "suite needs a non-empty 'benches' array")
        return
    for i, report in enumerate(benches):
        sub = f"{path}#benches[{i}]"
        if not isinstance(report, dict):
            _err(errors, sub, "bench entry is not an object")
            continue
        if report.get("schema") != BENCH_SCHEMA_V2:
            _err(errors, sub,
                 f"embedded report schema must be {BENCH_SCHEMA_V2!r}, "
                 f"got {report.get('schema')!r}")
            continue
        check_bench_v2(errors, sub, report, min_samples=min_samples)


def check_bench(errors, path, doc, min_samples=1):
    """Dispatches on schema: v1 report, v2 report, or v2 suite."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    schema = doc.get("schema")
    if schema == BENCH_SCHEMA_V1:
        if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
            _err(errors, path, "field 'bench' must be a non-empty string")
        wall = doc.get("wall_ms")
        if not _is_num(wall) or wall < 0:
            _err(errors, path,
                 f"field 'wall_ms' must be a non-negative number, got {wall!r}")
        if "metrics" not in doc:
            _err(errors, path, "missing embedded 'metrics' object")
        else:
            check_metrics(errors, f"{path}#metrics", doc["metrics"])
    elif schema == BENCH_SCHEMA_V2:
        if doc.get("kind") == "suite":
            check_suite(errors, path, doc, min_samples=min_samples)
        else:
            check_bench_v2(errors, path, doc, min_samples=min_samples)
    else:
        _err(errors, path,
             f"schema must be {BENCH_SCHEMA_V1!r} or {BENCH_SCHEMA_V2!r}, "
             f"got {schema!r}")


def check_results(errors, path, doc):
    """tsdist.results.v1: tsdist_eval's per-cell status report."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != RESULTS_SCHEMA:
        _err(errors, path,
             f"schema must be {RESULTS_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("supervised", "pruned"):
        if not isinstance(doc.get(key), bool):
            _err(errors, path, f"field {key!r} must be a boolean")
    if not isinstance(doc.get("norm"), str) or not doc.get("norm"):
        _err(errors, path, "field 'norm' must be a non-empty string")
    budget = doc.get("budget_sec")
    if not _is_num(budget) or budget < 0:
        _err(errors, path,
             f"field 'budget_sec' must be a non-negative number, got {budget!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        _err(errors, path, "field 'cells' must be an array")
        return
    tallies = {status: 0 for status in RESULT_STATUSES}
    resumed = 0
    for i, cell in enumerate(cells):
        sub = f"cell {i}"
        if not isinstance(cell, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        for key in ("dataset", "measure"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                _err(errors, path, f"{sub} field {key!r} must be a non-empty "
                                   f"string")
        for key in ("params", "reason"):
            if not isinstance(cell.get(key), str):
                _err(errors, path, f"{sub} field {key!r} must be a string")
        status = cell.get("status")
        if status not in RESULT_STATUSES:
            _err(errors, path,
                 f"{sub} status must be one of {RESULT_STATUSES}, "
                 f"got {status!r}")
            continue
        tallies[status] += 1
        if status != "ok" and not cell.get("reason"):
            _err(errors, path, f"{sub} has status {status!r} but no reason")
        for key in ("train_accuracy", "test_accuracy"):
            v = cell.get(key)
            if not _is_num(v):
                _err(errors, path, f"{sub} field {key!r} must be a number, "
                                   f"got {v!r}")
            elif status == "ok" and not 0.0 <= v <= 1.0:
                _err(errors, path,
                     f"{sub} is ok but {key!r} is outside [0, 1]: {v!r}")
        if not isinstance(cell.get("resumed"), bool):
            _err(errors, path, f"{sub} field 'resumed' must be a boolean")
        elif cell["resumed"]:
            resumed += 1
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        _err(errors, path, "field 'summary' must be an object")
        return
    expected = dict(tallies, total=len(cells), resumed=resumed)
    for key, want in sorted(expected.items()):
        got = summary.get(key)
        if not _is_int(got) or got < 0:
            _err(errors, path,
                 f"summary field {key!r} must be a non-negative integer, "
                 f"got {got!r}")
        elif got != want:
            _err(errors, path,
                 f"summary {key!r} is {got} but the cells tally to {want}")


_OM_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
_OM_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)$')


def check_openmetrics(errors, path, text):
    """Validates the OpenMetrics text exposition served at /metrics.

    Checks the subset tsdist emits: one TYPE line per family; counters
    sampled as `<name>_total`; gauges sampled bare; histograms as cumulative
    `_bucket{le="..."}` series on the 64<<i ladder ending at le="+Inf",
    followed by `_sum` and `_count`; a final `# EOF` line.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        _err(errors, path, "exposition must end with a '# EOF' line")
        body = lines
    else:
        body = lines[:-1]

    types = {}
    counters = {}        # base name -> value
    gauges = {}          # name -> value
    hists = {}           # base name -> {"buckets": [(le, cum)], "sum", "count"}
    for lineno, line in enumerate(body, 1):
        if line == "# EOF":
            _err(errors, path, f"line {lineno}: '# EOF' before the last line")
            continue
        if line.startswith("#"):
            m = _OM_TYPE_RE.match(line)
            if not m:
                _err(errors, path,
                     f"line {lineno}: unrecognized metadata line {line!r}")
                continue
            name, family_type = m.groups()
            if name in types:
                _err(errors, path,
                     f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = family_type
            if family_type == "histogram":
                hists[name] = {"buckets": [], "sum": None, "count": None}
            continue
        m = _OM_SAMPLE_RE.match(line)
        if not m:
            _err(errors, path, f"line {lineno}: malformed sample {line!r}")
            continue
        name, le, raw_value = m.groups()
        try:
            value = float(raw_value)
        except ValueError:
            _err(errors, path,
                 f"line {lineno}: non-numeric sample value {raw_value!r}")
            continue
        if value != value or value < 0:
            _err(errors, path,
                 f"line {lineno}: sample value must be a finite non-negative "
                 f"number, got {raw_value!r}")
            continue

        if types.get(name) == "gauge":
            if le is not None:
                _err(errors, path, f"line {lineno}: gauge {name!r} must not "
                                   f"carry an 'le' label")
            if name in gauges:
                _err(errors, path, f"line {lineno}: duplicate gauge sample "
                                   f"for {name!r}")
            gauges[name] = value
        elif name.endswith("_total") and types.get(name[:-6]) == "counter":
            base = name[:-6]
            if value != int(value):
                _err(errors, path, f"line {lineno}: counter {base!r} must be "
                                   f"an integer, got {raw_value!r}")
            if base in counters:
                _err(errors, path, f"line {lineno}: duplicate counter sample "
                                   f"for {base!r}")
            counters[base] = value
        elif name.endswith("_bucket") and name[:-7] in hists:
            if le is None:
                _err(errors, path, f"line {lineno}: histogram bucket without "
                                   f"an 'le' label")
                continue
            hists[name[:-7]]["buckets"].append((lineno, le, value))
        elif name.endswith("_sum") and name[:-4] in hists:
            hists[name[:-4]]["sum"] = value
        elif name.endswith("_count") and name[:-6] in hists:
            hists[name[:-6]]["count"] = value
        else:
            _err(errors, path,
                 f"line {lineno}: sample {name!r} has no matching TYPE "
                 f"declaration")

    for name, family_type in types.items():
        if family_type == "counter" and name not in counters:
            _err(errors, path, f"counter {name!r} declared but never sampled")
        if family_type == "gauge" and name not in gauges:
            _err(errors, path, f"gauge {name!r} declared but never sampled")

    for name, h in hists.items():
        buckets = h["buckets"]
        if not buckets:
            _err(errors, path, f"histogram {name!r} has no _bucket samples")
            continue
        if buckets[-1][1] != "+Inf":
            _err(errors, path,
                 f"histogram {name!r} last bucket le must be '+Inf', "
                 f"got {buckets[-1][1]!r}")
        prev_cum = -1.0
        for i, (lineno, le, cum) in enumerate(buckets):
            if cum < prev_cum:
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} bucket series must "
                     f"be cumulative (value {cum} after {prev_cum})")
            prev_cum = cum
            if le == "+Inf":
                if i != len(buckets) - 1:
                    _err(errors, path,
                         f"line {lineno}: histogram {name!r} '+Inf' bucket "
                         f"must come last")
                continue
            try:
                bound = int(le)
            except ValueError:
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} finite bound must "
                     f"be an integer, got {le!r}")
                continue
            if not _is_ladder_bound(bound, i):
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} bound {bound} is "
                     f"off the 64<<i ladder "
                     f"(expected {BUCKET_LADDER_BASE << i})")
        if h["count"] is None:
            _err(errors, path, f"histogram {name!r} missing _count sample")
        elif buckets and buckets[-1][1] == "+Inf" and \
                h["count"] != buckets[-1][2]:
            _err(errors, path,
                 f"histogram {name!r} _count ({h['count']}) != '+Inf' "
                 f"cumulative bucket ({buckets[-1][2]})")
        if h["sum"] is None:
            _err(errors, path, f"histogram {name!r} missing _sum sample")
    return {"counters": counters, "gauges": gauges, "histograms": hists}


def check_required_cases(errors, path, doc, required):
    """--require-case BENCH/CASE entries must exist in the bench/suite doc."""
    present = set()
    reports = doc.get("benches", [doc]) if isinstance(doc, dict) else []
    for report in reports:
        if not isinstance(report, dict):
            continue
        bench = report.get("bench", "?")
        for case in report.get("cases", []) or []:
            if isinstance(case, dict):
                present.add(f"{bench}/{case.get('name')}")
    for want in required:
        if want not in present:
            _err(errors, path, f"required case {want!r} not found")


def load(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _err(errors, path, f"invalid JSON: {exc}")
    return None


def load_text(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    return None


def mangle_openmetrics_name(name):
    """The C++ exposition's name mangling: tsdist.pool.jobs ->
    tsdist_pool_jobs (so --require-nonzero works on either format)."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


# --- self test ------------------------------------------------------------

def _valid_metrics():
    return {
        "schema": METRICS_SCHEMA,
        "counters": {"tsdist.pool.tasks": 12},
        "gauges": {"tsdist.proc.peak_rss_bytes": 1048576.0},
        "histograms": {
            "tsdist.pairwise.row_ns.euclidean": {
                "count": 2, "sum": 90, "min": 10, "max": 80,
                "buckets": [{"le": 64, "count": 1}, {"le": 128, "count": 1},
                            {"le": "+Inf", "count": 0}],
            },
        },
    }


def _valid_openmetrics():
    return (
        "# TYPE tsdist_pool_jobs counter\n"
        "tsdist_pool_jobs_total 42\n"
        "# TYPE tsdist_proc_peak_rss_bytes gauge\n"
        "tsdist_proc_peak_rss_bytes 1048576\n"
        "# TYPE tsdist_eval_cell_ns histogram\n"
        'tsdist_eval_cell_ns_bucket{le="64"} 1\n'
        'tsdist_eval_cell_ns_bucket{le="128"} 3\n'
        'tsdist_eval_cell_ns_bucket{le="256"} 3\n'
        'tsdist_eval_cell_ns_bucket{le="+Inf"} 4\n'
        "tsdist_eval_cell_ns_sum 700\n"
        "tsdist_eval_cell_ns_count 4\n"
        "# EOF\n"
    )


def _valid_manifest():
    return {
        "schema_version": 2, "git_sha": "deadbeef", "git_dirty": False,
        "compiler": "GNU 13.2.0", "compiler_flags": "-O2", "build_type":
        "Release", "cpu_model": "test cpu", "cpu_cores": 8, "threads": 4,
        "rng_seed": 20200614, "scale": "tiny",
    }


def _valid_report():
    return {
        "schema": BENCH_SCHEMA_V2, "bench": "bench_x", "scale": "tiny",
        "threads": 4, "wall_ms": 12.5, "manifest": _valid_manifest(),
        "peak_rss_bytes": 1048576,
        "cases": [{
            "name": "evaluate", "warmup": 1, "iters": 3,
            "samples_ms": [4.0, 3.5, 5.0],
            "min_ms": 3.5, "median_ms": 4.0, "p90_ms": 5.0, "mean_ms": 4.1667,
        }],
        "metrics": _valid_metrics(),
    }


def _valid_suite():
    return {
        "schema": BENCH_SCHEMA_V2, "kind": "suite", "suite": "smoke",
        "scale": "tiny", "repeat": 3, "warmup": 1,
        "manifest": _valid_manifest(), "benches": [_valid_report()],
    }


def _valid_results():
    return {
        "schema": RESULTS_SCHEMA, "supervised": True, "pruned": False,
        "norm": "zscore", "budget_sec": 600.0,
        "summary": {"total": 2, "ok": 1, "failed": 0, "dnf": 1,
                    "interrupted": 0, "resumed": 1},
        "cells": [
            {"dataset": "CBF", "measure": "dtw", "params": "delta=9",
             "status": "ok", "reason": "", "train_accuracy": 0.9,
             "test_accuracy": 1.0, "resumed": True},
            {"dataset": "CBF", "measure": "msm", "params": "",
             "status": "dnf", "reason": "dnf: LOOCV matrix cancelled",
             "train_accuracy": 0.0, "test_accuracy": 0.0, "resumed": False},
        ],
    }


def self_test():
    failures = []

    def expect(doc, should_pass, label, mutate=None, min_samples=1):
        doc = copy.deepcopy(doc)
        if mutate:
            mutate(doc)
        errors = []
        check_bench(errors, label, doc, min_samples=min_samples)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    def expect_results(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_results())
        if mutate:
            mutate(doc)
        errors = []
        check_results(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect(_valid_report(), True, "valid v2 report")
    expect(_valid_suite(), True, "valid v2 suite")
    expect({"schema": BENCH_SCHEMA_V1, "bench": "x", "wall_ms": 1.0,
            "metrics": _valid_metrics()}, True, "valid v1 report")

    expect(_valid_report(), False, "bad schema string",
           lambda d: d.update(schema="tsdist.bench.v3"))
    expect(_valid_report(), False, "missing manifest",
           lambda d: d.pop("manifest"))
    expect(_valid_report(), False, "empty git sha",
           lambda d: d["manifest"].update(git_sha=""))
    expect(_valid_report(), False, "manifest wrong version",
           lambda d: d["manifest"].update(schema_version=1))
    expect(_valid_report(), False, "iters mismatch",
           lambda d: d["cases"][0].update(iters=7))
    expect(_valid_report(), False, "negative sample",
           lambda d: d["cases"][0]["samples_ms"].__setitem__(0, -1.0))
    expect(_valid_report(), False, "missing peak rss",
           lambda d: d.pop("peak_rss_bytes"))
    expect(_valid_report(), False, "empty cases",
           lambda d: d.update(cases=[]))
    expect(_valid_report(), False, "summary ordering",
           lambda d: d["cases"][0].update(median_ms=100.0))
    expect(_valid_report(), False, "too few samples", min_samples=5)
    expect(_valid_report(), True, "enough samples", min_samples=3)
    expect(_valid_suite(), False, "suite zero repeat",
           lambda d: d.update(repeat=0))
    expect(_valid_suite(), False, "suite v1 embedded",
           lambda d: d["benches"][0].update(schema=BENCH_SCHEMA_V1))
    expect(_valid_report(), False, "broken embedded metrics",
           lambda d: d["metrics"].update(schema="bogus"))

    expect_results(True, "valid results report")
    expect_results(False, "results bad schema",
                   lambda d: d.update(schema="tsdist.results.v2"))
    expect_results(False, "results unknown status",
                   lambda d: d["cells"][0].update(status="maybe"))
    expect_results(False, "results dnf without reason",
                   lambda d: d["cells"][1].update(reason=""))
    expect_results(False, "results summary tally mismatch",
                   lambda d: d["summary"].update(ok=2, dnf=0))
    expect_results(False, "results resumed tally mismatch",
                   lambda d: d["summary"].update(resumed=0))
    expect_results(False, "results ok accuracy out of range",
                   lambda d: d["cells"][0].update(test_accuracy=1.5))
    expect_results(False, "results non-numeric accuracy",
                   lambda d: d["cells"][0].update(train_accuracy="high"))
    expect_results(False, "results missing dataset",
                   lambda d: d["cells"][0].update(dataset=""))
    expect_results(False, "results negative budget",
                   lambda d: d.update(budget_sec=-1.0))

    # JSON histograms must sit on the shared 64<<i bucket ladder.
    def expect_metrics(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_metrics())
        if mutate:
            mutate(doc)
        errors = []
        check_metrics(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_metrics(True, "valid metrics")
    expect_metrics(False, "off-ladder bucket bound",
                   lambda d: d["histograms"]
                   ["tsdist.pairwise.row_ns.euclidean"]["buckets"][0]
                   .update(le=100))

    def expect_om(should_pass, label, mutate=None):
        text = _valid_openmetrics()
        if mutate:
            text = mutate(text)
        errors = []
        check_openmetrics(errors, label, text)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_om(True, "valid openmetrics")
    expect_om(False, "openmetrics missing EOF",
              lambda t: t.replace("# EOF\n", ""))
    expect_om(False, "openmetrics counter without _total",
              lambda t: t.replace("tsdist_pool_jobs_total 42\n",
                                  "tsdist_pool_jobs 42\n"))
    expect_om(False, "openmetrics non-cumulative buckets",
              lambda t: t.replace('le="128"} 3', 'le="128"} 0'))
    expect_om(False, "openmetrics off-ladder bound",
              lambda t: t.replace('le="128"', 'le="100"'))
    expect_om(False, "openmetrics count mismatch",
              lambda t: t.replace("tsdist_eval_cell_ns_count 4",
                                  "tsdist_eval_cell_ns_count 9"))
    expect_om(False, "openmetrics missing +Inf",
              lambda t: t.replace('tsdist_eval_cell_ns_bucket{le="+Inf"} 4\n',
                                  ""))
    expect_om(False, "openmetrics sample without TYPE",
              lambda t: t + "mystery_metric 1\n# EOF\n")
    expect_om(False, "openmetrics negative value",
              lambda t: t.replace("tsdist_pool_jobs_total 42",
                                  "tsdist_pool_jobs_total -2"))

    if mangle_openmetrics_name("tsdist.pool.jobs") != "tsdist_pool_jobs":
        failures.append("mangle_openmetrics_name: wrong mangling")

    # Required-case lookup across a suite.
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/evaluate"])
    if errors:
        failures.append(f"require-case present: unexpected errors {errors}")
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/missing"])
    if not errors:
        failures.append("require-case absent: expected an error")

    for message in failures:
        print(f"check_metrics_schema self-test: {message}", file=sys.stderr)
    if failures:
        return 1
    print("check_metrics_schema self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", nargs="?",
                        help="tsdist.metrics.v1 JSON file")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--bench",
                        help="tsdist.bench.v1/v2 BENCH_*.json or suite.json")
    parser.add_argument("--results",
                        help="tsdist.results.v1 per-cell report from "
                             "tsdist_eval --results-json")
    parser.add_argument("--openmetrics",
                        help="OpenMetrics text scraped from the /metrics "
                             "endpoint (tsdist_eval --serve)")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless this counter exists and is > 0")
    parser.add_argument("--require-gauge", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this gauge is present "
                             "(--openmetrics only)")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram exists with count > 0")
    parser.add_argument("--require-case", action="append", default=[],
                        metavar="BENCH/CASE",
                        help="fail unless the bench/suite doc has this case")
    parser.add_argument("--min-samples", type=int, default=1, metavar="N",
                        help="minimum samples_ms length per v2 case")
    parser.add_argument("--self-test", action="store_true",
                        help="run the validator's built-in self checks")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.metrics and not args.bench and not args.results \
            and not args.openmetrics:
        parser.error("need a METRICS.json, --bench, --results, "
                     "--openmetrics, or --self-test")

    errors = []
    if args.metrics:
        doc = load(errors, args.metrics)
        if doc is not None:
            check_metrics(errors, args.metrics, doc,
                          require_nonzero=args.require_nonzero,
                          require_histogram=args.require_histogram)
    if args.trace:
        trace = load(errors, args.trace)
        if trace is not None:
            check_trace(errors, args.trace, trace)
    if args.bench:
        bench = load(errors, args.bench)
        if bench is not None:
            check_bench(errors, args.bench, bench,
                        min_samples=args.min_samples)
            if args.require_case:
                check_required_cases(errors, args.bench, bench,
                                     args.require_case)
    if args.results:
        results = load(errors, args.results)
        if results is not None:
            check_results(errors, args.results, results)
    if args.openmetrics:
        text = load_text(errors, args.openmetrics)
        if text is not None:
            families = check_openmetrics(errors, args.openmetrics, text)
            for name in args.require_nonzero:
                om = mangle_openmetrics_name(name)
                value = families["counters"].get(om)
                if value is None or value <= 0:
                    _err(errors, args.openmetrics,
                         f"required counter {name!r} ({om!r}) missing or "
                         f"zero (got {value!r})")
            for name in args.require_gauge:
                om = mangle_openmetrics_name(name)
                if om not in families["gauges"]:
                    _err(errors, args.openmetrics,
                         f"required gauge {name!r} ({om!r}) not exposed")

    for message in errors:
        print(f"check_metrics_schema: {message}", file=sys.stderr)
    if errors:
        return 1
    print("check_metrics_schema: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
