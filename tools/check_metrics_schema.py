#!/usr/bin/env python3
"""Validate tsdist observability JSON artifacts.

Checks a metrics dump against the tsdist.metrics.v1 schema, and optionally a
trace file against the Chrome trace-event format and a BENCH_*.json /
suite.json file against the tsdist.bench.v1 or tsdist.bench.v2 schema (v2
adds the run manifest, per-case sample arrays, and the peak-RSS gauge; a v2
"suite" document aggregates several reports). Stdlib only; exits 0 on
success, 1 with one message per violation otherwise.

Also validates tsdist.results.v1 per-cell reports (tsdist_eval
--results-json) via --results: statuses, reasons, accuracy ranges, and the
summary tallies must all be internally consistent.

Also validates the live exposition endpoint's output via --openmetrics: the
OpenMetrics text format served at /metrics by tsdist_eval --serve (TYPE
metadata, counter `_total` samples, cumulative histogram `_bucket` series on
the 64<<i nanosecond bucket ladder, `_sum`/`_count`, trailing `# EOF`).

Also validates tsdist.profile.v1 collapsed-stack profiles via --profile (the
folded text written by --profile-out / /profilez?dump): the header counts
must be internally consistent and every body row must be a
`frame;frame;... count` line whose counts sum to the header's sample total.
v2 bench cases may carry a per-case `kernel_attribution` block (PerfRegion
self-cost per kernel label), which is checked alongside the timing fields,
and a `memory_attribution` block (MemRegion alloc deltas per label), checked
the same way.

Also validates tsdist.heapprofile.v1 collapsed-stack heap profiles via
--heap (the folded text written by --heap-profile-out / /heapz?dump): two
counts per row (live bytes, cumulative bytes), live <= cumulative, rows
sorted hottest-first by live then cumulative, and both column sums equal to
the header totals.

Also validates tsdist.tracespool.v1 crash-durable span spools via
--trace-spool (the line-delimited files a --trace-spool run leaves under
<checkpoint>/trace/): a valid header line, well-formed event lines, and at
most one torn line at EOF (the legitimate residue of a kill mid-flush), and
tsdist.fleettrace.v1 analyses via --fleet-trace (trace_merge --analysis-out):
critical path, per-worker busy/idle shares, and the imbalance figure.

Usage:
  check_metrics_schema.py [METRICS.json]
      [--trace TRACE.json] [--bench BENCH.json] [--results RESULTS.json]
      [--openmetrics METRICS.txt] [--profile PROFILE.folded]
      [--heap HEAP.folded] [--trace-spool SPOOL.jsonl ...]
      [--fleet-trace ANALYSIS.json]
      [--require-nonzero COUNTER ...] [--require-histogram NAME ...]
      [--require-case BENCH/CASE ...] [--min-samples N]
      [--self-test]
"""

import argparse
import copy
import json
import re
import struct
import sys
import zlib

METRICS_SCHEMA = "tsdist.metrics.v1"
BENCH_SCHEMA_V1 = "tsdist.bench.v1"
BENCH_SCHEMA_V2 = "tsdist.bench.v2"
RESULTS_SCHEMA = "tsdist.results.v1"
FLEET_HEALTH_SCHEMA = "tsdist.fleethealth.v1"
TRACE_SPOOL_SCHEMA = "tsdist.tracespool.v1"
FLEET_TRACE_SCHEMA = "tsdist.fleettrace.v1"
PROFILE_SCHEMA = "tsdist.profile.v1"
HEAP_PROFILE_SCHEMA = "tsdist.heapprofile.v1"
RESULT_STATUSES = ("ok", "dnf", "failed", "interrupted")

# The collapsed-stack header fields, in emission order. All emitters
# (Profiler::RenderFolded, the NOOP stub, tsdist_bench's merger) write every
# field even when zero.
PROFILE_HEADER_FIELDS = ("samples", "dropped", "interval_us", "threads")

# Same contract for the heap profiler's folded output
# (HeapProfiler::RenderFolded, its NOOP stub, tsdist_bench's heap merger).
HEAP_HEADER_FIELDS = ("samples", "dropped", "live_bytes",
                      "cumulative_bytes", "interval_bytes")

# Per-label fields of a v2 case's memory_attribution block
# (MemStatsBetween): exact alloc deltas plus the sampled live peak.
MEM_ATTRIBUTION_FIELDS = ("alloc_bytes", "alloc_count", "peak_live_bytes")

# Raw event counts in a perf-reading block (perf_counters.cc,
# PerfReadingToJson). The derived ratios follow separately.
PERF_COUNT_FIELDS = (
    "cycles", "instructions", "cache_references", "cache_misses",
    "branches", "branch_misses", "time_enabled_ns", "time_running_ns",
)
PERF_RATIO_FIELDS = ("ipc", "cache_miss_rate", "branch_miss_rate",
                     "running_ratio")

# The tsdist.lease.v1 wire record (src/shard/lease.cc WireRecord): 56 bytes,
# little-endian, naturally packed — magic "TSL1", record type
# (1 claim / 2 heartbeat / 3 release), fencing epoch, writer pid, wall-clock
# milliseconds, a 28-byte zero-padded worker id, and a zlib-compatible CRC-32
# over the first 52 bytes. Validating it from Python with nothing but struct
# + zlib is itself part of the contract: the format must stay simple enough
# for any out-of-process observer to audit.
LEASE_RECORD = struct.Struct("<IIIIQ28sI")
LEASE_MAGIC = 0x54534C31  # "TSL1"
LEASE_TYPES = {1: "claim", 2: "heartbeat", 3: "release"}

# Histogram bucket ladder shared by every tsdist emitter: finite bucket i
# holds values <= 64 << i (nanoseconds). Bounds from any build are a prefix
# of this ladder, which is what keeps cross-run merges well-defined.
BUCKET_LADDER_BASE = 64


def _is_ladder_bound(le, index):
    return le == BUCKET_LADDER_BASE << index

MANIFEST_STRING_FIELDS = (
    "git_sha", "compiler", "compiler_flags", "build_type", "cpu_model",
    "scale",
)


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_histogram(errors, path, name, hist):
    if not isinstance(hist, dict):
        _err(errors, path, f"histogram {name!r} is not an object")
        return
    for key in ("count", "sum", "min", "max", "buckets"):
        if key not in hist:
            _err(errors, path, f"histogram {name!r} missing field {key!r}")
            return
    for key in ("count", "sum", "min", "max"):
        v = hist[key]
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"histogram {name!r} field {key!r} must be a non-negative "
                 f"integer, got {v!r}")
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        _err(errors, path, f"histogram {name!r} has no bucket list")
        return
    prev_bound = -1
    total = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} must be {{'le', 'count'}}")
            return
        count = bucket["count"]
        if not _is_int(count) or count < 0:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} count must be a "
                 f"non-negative integer, got {count!r}")
            return
        total += count
        le = bucket["le"]
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                _err(errors, path,
                     f"histogram {name!r} last bucket le must be '+Inf', "
                     f"got {le!r}")
        else:
            if not _is_int(le):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} le must be an integer "
                     f"bound, got {le!r}")
                return
            if le <= prev_bound:
                _err(errors, path,
                     f"histogram {name!r} bucket bounds must be strictly "
                     f"increasing ({le} after {prev_bound})")
            if not _is_ladder_bound(le, i):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} bound {le} is off the "
                     f"64<<i ladder (expected {BUCKET_LADDER_BASE << i})")
            prev_bound = le
    if total != hist["count"]:
        _err(errors, path,
             f"histogram {name!r} bucket counts sum to {total} but count "
             f"is {hist['count']}")
    if hist["count"] > 0 and hist["min"] > hist["max"]:
        _err(errors, path, f"histogram {name!r} has min > max")


def check_metrics(errors, path, doc, require_nonzero=(), require_histogram=()):
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        _err(errors, path,
             f"schema must be {METRICS_SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            _err(errors, path, f"missing or non-object section {section!r}")
            return
    for name, value in doc["counters"].items():
        if not _is_int(value) or value < 0:
            _err(errors, path,
                 f"counter {name!r} must be a non-negative integer, "
                 f"got {value!r}")
    for name, value in doc["gauges"].items():
        if not _is_num(value):
            _err(errors, path, f"gauge {name!r} must be a number, got {value!r}")
    for name, hist in doc["histograms"].items():
        check_histogram(errors, path, name, hist)
    for name in require_nonzero:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            _err(errors, path,
                 f"required counter {name!r} missing or zero (got {value!r})")
    for name in require_histogram:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            _err(errors, path,
                 f"required histogram {name!r} missing or empty")


def check_trace(errors, path, doc):
    if not isinstance(doc, list):
        _err(errors, path, "trace must be a JSON array of event objects")
        return
    if not doc:
        _err(errors, path, "trace contains no events")
        return
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            _err(errors, path, f"event {i} is not an object")
            return
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                _err(errors, path, f"event {i} missing field {key!r}")
                return
        if not isinstance(event["name"], str):
            _err(errors, path, f"event {i} name must be a string")
        if not isinstance(event["ph"], str):
            _err(errors, path, f"event {i} ph must be a string")
        for key in ("ts", "pid", "tid"):
            if not _is_num(event[key]):
                _err(errors, path, f"event {i} {key!r} must be a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not _is_num(dur) or dur < 0:
                _err(errors, path,
                     f"complete event {i} needs a non-negative 'dur', "
                     f"got {dur!r}")


def check_manifest(errors, path, manifest):
    if not isinstance(manifest, dict):
        _err(errors, path, "manifest must be an object")
        return
    if manifest.get("schema_version") != 2:
        _err(errors, path,
             f"manifest schema_version must be 2, "
             f"got {manifest.get('schema_version')!r}")
    for key in MANIFEST_STRING_FIELDS:
        v = manifest.get(key)
        if not isinstance(v, str):
            _err(errors, path, f"manifest field {key!r} must be a string, "
                               f"got {v!r}")
        elif key == "git_sha" and not v:
            _err(errors, path, "manifest git_sha is empty")
    if not isinstance(manifest.get("git_dirty"), bool):
        _err(errors, path, "manifest git_dirty must be a boolean")
    cores = manifest.get("cpu_cores")
    if not _is_int(cores) or cores <= 0:
        _err(errors, path,
             f"manifest cpu_cores must be a positive integer, got {cores!r}")
    for key in ("threads", "rng_seed"):
        v = manifest.get(key)
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"manifest field {key!r} must be a non-negative integer, "
                 f"got {v!r}")


def check_perf_reading(errors, path, ctx, perf):
    """A perf_event_open reading block (PerfReadingToJson): raw 64-bit event
    counts plus derived ratios. Appears as a case's `perf` and nested inside
    kernel_attribution entries; either way the shape is identical."""
    if not isinstance(perf, dict):
        _err(errors, path, f"{ctx} must be an object, got {perf!r}")
        return
    for key in PERF_COUNT_FIELDS:
        v = perf.get(key)
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"{ctx} field {key!r} must be a non-negative integer, "
                 f"got {v!r}")
    for key in PERF_RATIO_FIELDS:
        v = perf.get(key)
        if not _is_num(v) or v < 0:
            _err(errors, path,
                 f"{ctx} field {key!r} must be a non-negative number, "
                 f"got {v!r}")
    enabled = perf.get("time_enabled_ns")
    running = perf.get("time_running_ns")
    if _is_int(enabled) and _is_int(running) and running > enabled:
        _err(errors, path,
             f"{ctx} time_running_ns ({running}) exceeds "
             f"time_enabled_ns ({enabled})")


def check_kernel_attribution(errors, path, ctx, attribution):
    """Per-kernel-label self-cost deltas (KernelStatsBetween over the
    tsdist.kernel.* counter family). The emitter omits the block when empty
    and drops labels whose calls and wall_ns are both zero, so an empty
    object or an all-zero entry means the snapshot logic regressed."""
    if not isinstance(attribution, dict):
        _err(errors, path, f"{ctx} must be an object, got {attribution!r}")
        return
    if not attribution:
        _err(errors, path,
             f"{ctx} is empty (the emitter omits the block instead)")
        return
    for label, stats in attribution.items():
        sub = f"{ctx} label {label!r}"
        if not label:
            _err(errors, path, f"{ctx} has an empty kernel label")
        if not isinstance(stats, dict):
            _err(errors, path, f"{sub} must be an object, got {stats!r}")
            continue
        for key in ("calls", "wall_ns"):
            v = stats.get(key)
            if not _is_int(v) or v < 0:
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-negative integer, "
                     f"got {v!r}")
        if stats.get("calls") == 0 and stats.get("wall_ns") == 0:
            _err(errors, path,
                 f"{sub} has calls == 0 and wall_ns == 0 (the emitter "
                 f"drops such entries)")
        if "perf" in stats:
            check_perf_reading(errors, path, f"{sub} perf", stats["perf"])


def check_memory_attribution(errors, path, ctx, attribution):
    """Per-MemRegion-label allocation deltas (MemStatsBetween over the
    tsdist.mem.* metric family). Mirrors kernel_attribution: the emitter
    omits the block when empty and drops labels whose alloc_bytes and
    alloc_count deltas are both zero. peak_live_bytes is the sampled
    estimate and legitimately stays 0 when the heap profiler was idle."""
    if not isinstance(attribution, dict):
        _err(errors, path, f"{ctx} must be an object, got {attribution!r}")
        return
    if not attribution:
        _err(errors, path,
             f"{ctx} is empty (the emitter omits the block instead)")
        return
    for label, stats in attribution.items():
        sub = f"{ctx} label {label!r}"
        if not label:
            _err(errors, path, f"{ctx} has an empty memory label")
        if not isinstance(stats, dict):
            _err(errors, path, f"{sub} must be an object, got {stats!r}")
            continue
        for key in MEM_ATTRIBUTION_FIELDS:
            v = stats.get(key)
            if not _is_int(v) or v < 0:
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-negative integer, "
                     f"got {v!r}")
        if stats.get("alloc_bytes") == 0 and stats.get("alloc_count") == 0:
            _err(errors, path,
                 f"{sub} has alloc_bytes == 0 and alloc_count == 0 (the "
                 f"emitter drops such entries)")


def check_case(errors, path, i, case, min_samples=1):
    if not isinstance(case, dict):
        _err(errors, path, f"case {i} is not an object")
        return
    name = case.get("name")
    if not isinstance(name, str) or not name:
        _err(errors, path, f"case {i} needs a non-empty 'name'")
        name = f"#{i}"
    warmup = case.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"case {name!r} warmup must be a non-negative integer, "
             f"got {warmup!r}")
    samples = case.get("samples_ms")
    if not isinstance(samples, list) or not samples:
        _err(errors, path, f"case {name!r} needs a non-empty samples_ms array")
        return
    for s in samples:
        if not _is_num(s) or s < 0:
            _err(errors, path,
                 f"case {name!r} has a non-numeric/negative sample: {s!r}")
            return
    if case.get("iters") != len(samples):
        _err(errors, path,
             f"case {name!r} iters ({case.get('iters')!r}) != "
             f"len(samples_ms) ({len(samples)})")
    if len(samples) < min_samples:
        _err(errors, path,
             f"case {name!r} has {len(samples)} samples, "
             f"expected at least {min_samples}")
    for key in ("min_ms", "median_ms", "p90_ms", "mean_ms"):
        v = case.get(key)
        if not _is_num(v) or v < 0:
            _err(errors, path,
                 f"case {name!r} field {key!r} must be a non-negative "
                 f"number, got {v!r}")
            return
    if case["min_ms"] > case["median_ms"] or case["median_ms"] > case["p90_ms"]:
        _err(errors, path,
             f"case {name!r} summary ordering violated: expected "
             f"min <= median <= p90")
    if abs(case["min_ms"] - min(samples)) > 1e-3:
        _err(errors, path,
             f"case {name!r} min_ms does not match min(samples_ms)")
    if "perf" in case:
        check_perf_reading(errors, path, f"case {name!r} perf", case["perf"])
    if "kernel_attribution" in case:
        check_kernel_attribution(errors, path,
                                 f"case {name!r} kernel_attribution",
                                 case["kernel_attribution"])
    if "memory_attribution" in case:
        check_memory_attribution(errors, path,
                                 f"case {name!r} memory_attribution",
                                 case["memory_attribution"])


def check_bench_v2(errors, path, doc, min_samples=1):
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "field 'bench' must be a non-empty string")
    if not isinstance(doc.get("scale"), str):
        _err(errors, path, "field 'scale' must be a string")
    threads = doc.get("threads")
    if not _is_int(threads) or threads < 0:
        _err(errors, path,
             f"field 'threads' must be a non-negative integer, got {threads!r}")
    wall = doc.get("wall_ms")
    if not _is_num(wall) or wall < 0:
        _err(errors, path,
             f"field 'wall_ms' must be a non-negative number, got {wall!r}")
    if "manifest" not in doc:
        _err(errors, path, "v2 report missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    rss = doc.get("peak_rss_bytes")
    if not _is_int(rss) or rss < 0:
        _err(errors, path,
             f"field 'peak_rss_bytes' must be a non-negative integer, "
             f"got {rss!r}")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        _err(errors, path, "v2 report needs a non-empty 'cases' array")
    else:
        for i, case in enumerate(cases):
            check_case(errors, path, i, case, min_samples=min_samples)
    if "metrics" not in doc:
        _err(errors, path, "missing embedded 'metrics' object")
    else:
        check_metrics(errors, f"{path}#metrics", doc["metrics"])


def check_suite(errors, path, doc, min_samples=1):
    for key in ("suite", "scale"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            _err(errors, path, f"suite field {key!r} must be a non-empty string")
    repeat = doc.get("repeat")
    if not _is_int(repeat) or repeat < 1:
        _err(errors, path,
             f"suite 'repeat' must be a positive integer, got {repeat!r}")
    warmup = doc.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"suite 'warmup' must be a non-negative integer, got {warmup!r}")
    if "manifest" not in doc:
        _err(errors, path, "suite missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        _err(errors, path, "suite needs a non-empty 'benches' array")
        return
    for i, report in enumerate(benches):
        sub = f"{path}#benches[{i}]"
        if not isinstance(report, dict):
            _err(errors, sub, "bench entry is not an object")
            continue
        if report.get("schema") != BENCH_SCHEMA_V2:
            _err(errors, sub,
                 f"embedded report schema must be {BENCH_SCHEMA_V2!r}, "
                 f"got {report.get('schema')!r}")
            continue
        check_bench_v2(errors, sub, report, min_samples=min_samples)


def check_bench(errors, path, doc, min_samples=1):
    """Dispatches on schema: v1 report, v2 report, or v2 suite."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    schema = doc.get("schema")
    if schema == BENCH_SCHEMA_V1:
        if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
            _err(errors, path, "field 'bench' must be a non-empty string")
        wall = doc.get("wall_ms")
        if not _is_num(wall) or wall < 0:
            _err(errors, path,
                 f"field 'wall_ms' must be a non-negative number, got {wall!r}")
        if "metrics" not in doc:
            _err(errors, path, "missing embedded 'metrics' object")
        else:
            check_metrics(errors, f"{path}#metrics", doc["metrics"])
    elif schema == BENCH_SCHEMA_V2:
        if doc.get("kind") == "suite":
            check_suite(errors, path, doc, min_samples=min_samples)
        else:
            check_bench_v2(errors, path, doc, min_samples=min_samples)
    else:
        _err(errors, path,
             f"schema must be {BENCH_SCHEMA_V1!r} or {BENCH_SCHEMA_V2!r}, "
             f"got {schema!r}")


def check_results(errors, path, doc):
    """tsdist.results.v1: tsdist_eval's per-cell status report."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != RESULTS_SCHEMA:
        _err(errors, path,
             f"schema must be {RESULTS_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("supervised", "pruned"):
        if not isinstance(doc.get(key), bool):
            _err(errors, path, f"field {key!r} must be a boolean")
    if not isinstance(doc.get("norm"), str) or not doc.get("norm"):
        _err(errors, path, "field 'norm' must be a non-empty string")
    budget = doc.get("budget_sec")
    if not _is_num(budget) or budget < 0:
        _err(errors, path,
             f"field 'budget_sec' must be a non-negative number, got {budget!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        _err(errors, path, "field 'cells' must be an array")
        return
    tallies = {status: 0 for status in RESULT_STATUSES}
    resumed = 0
    for i, cell in enumerate(cells):
        sub = f"cell {i}"
        if not isinstance(cell, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        for key in ("dataset", "measure"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                _err(errors, path, f"{sub} field {key!r} must be a non-empty "
                                   f"string")
        for key in ("params", "reason"):
            if not isinstance(cell.get(key), str):
                _err(errors, path, f"{sub} field {key!r} must be a string")
        status = cell.get("status")
        if status not in RESULT_STATUSES:
            _err(errors, path,
                 f"{sub} status must be one of {RESULT_STATUSES}, "
                 f"got {status!r}")
            continue
        tallies[status] += 1
        if status != "ok" and not cell.get("reason"):
            _err(errors, path, f"{sub} has status {status!r} but no reason")
        for key in ("train_accuracy", "test_accuracy"):
            v = cell.get(key)
            if not _is_num(v):
                _err(errors, path, f"{sub} field {key!r} must be a number, "
                                   f"got {v!r}")
            elif status == "ok" and not 0.0 <= v <= 1.0:
                _err(errors, path,
                     f"{sub} is ok but {key!r} is outside [0, 1]: {v!r}")
        if not isinstance(cell.get("resumed"), bool):
            _err(errors, path, f"{sub} field 'resumed' must be a boolean")
        elif cell["resumed"]:
            resumed += 1
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        _err(errors, path, "field 'summary' must be an object")
        return
    expected = dict(tallies, total=len(cells), resumed=resumed)
    for key, want in sorted(expected.items()):
        got = summary.get(key)
        if not _is_int(got) or got < 0:
            _err(errors, path,
                 f"summary field {key!r} must be a non-negative integer, "
                 f"got {got!r}")
        elif got != want:
            _err(errors, path,
                 f"summary {key!r} is {got} but the cells tally to {want}")


_OM_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
_OM_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)$')


def check_openmetrics(errors, path, text):
    """Validates the OpenMetrics text exposition served at /metrics.

    Checks the subset tsdist emits: one TYPE line per family; counters
    sampled as `<name>_total`; gauges sampled bare; histograms as cumulative
    `_bucket{le="..."}` series on the 64<<i ladder ending at le="+Inf",
    followed by `_sum` and `_count`; a final `# EOF` line.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        _err(errors, path, "exposition must end with a '# EOF' line")
        body = lines
    else:
        body = lines[:-1]

    types = {}
    counters = {}        # base name -> value
    gauges = {}          # name -> value
    hists = {}           # base name -> {"buckets": [(le, cum)], "sum", "count"}
    for lineno, line in enumerate(body, 1):
        if line == "# EOF":
            _err(errors, path, f"line {lineno}: '# EOF' before the last line")
            continue
        if line.startswith("#"):
            m = _OM_TYPE_RE.match(line)
            if not m:
                _err(errors, path,
                     f"line {lineno}: unrecognized metadata line {line!r}")
                continue
            name, family_type = m.groups()
            if name in types:
                _err(errors, path,
                     f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = family_type
            if family_type == "histogram":
                hists[name] = {"buckets": [], "sum": None, "count": None}
            continue
        m = _OM_SAMPLE_RE.match(line)
        if not m:
            _err(errors, path, f"line {lineno}: malformed sample {line!r}")
            continue
        name, le, raw_value = m.groups()
        try:
            value = float(raw_value)
        except ValueError:
            _err(errors, path,
                 f"line {lineno}: non-numeric sample value {raw_value!r}")
            continue
        if value != value or value < 0:
            _err(errors, path,
                 f"line {lineno}: sample value must be a finite non-negative "
                 f"number, got {raw_value!r}")
            continue

        if types.get(name) == "gauge":
            if le is not None:
                _err(errors, path, f"line {lineno}: gauge {name!r} must not "
                                   f"carry an 'le' label")
            if name in gauges:
                _err(errors, path, f"line {lineno}: duplicate gauge sample "
                                   f"for {name!r}")
            gauges[name] = value
        elif name.endswith("_total") and types.get(name[:-6]) == "counter":
            base = name[:-6]
            if value != int(value):
                _err(errors, path, f"line {lineno}: counter {base!r} must be "
                                   f"an integer, got {raw_value!r}")
            if base in counters:
                _err(errors, path, f"line {lineno}: duplicate counter sample "
                                   f"for {base!r}")
            counters[base] = value
        elif name.endswith("_bucket") and name[:-7] in hists:
            if le is None:
                _err(errors, path, f"line {lineno}: histogram bucket without "
                                   f"an 'le' label")
                continue
            hists[name[:-7]]["buckets"].append((lineno, le, value))
        elif name.endswith("_sum") and name[:-4] in hists:
            hists[name[:-4]]["sum"] = value
        elif name.endswith("_count") and name[:-6] in hists:
            hists[name[:-6]]["count"] = value
        else:
            _err(errors, path,
                 f"line {lineno}: sample {name!r} has no matching TYPE "
                 f"declaration")

    for name, family_type in types.items():
        if family_type == "counter" and name not in counters:
            _err(errors, path, f"counter {name!r} declared but never sampled")
        if family_type == "gauge" and name not in gauges:
            _err(errors, path, f"gauge {name!r} declared but never sampled")

    for name, h in hists.items():
        buckets = h["buckets"]
        if not buckets:
            _err(errors, path, f"histogram {name!r} has no _bucket samples")
            continue
        if buckets[-1][1] != "+Inf":
            _err(errors, path,
                 f"histogram {name!r} last bucket le must be '+Inf', "
                 f"got {buckets[-1][1]!r}")
        prev_cum = -1.0
        for i, (lineno, le, cum) in enumerate(buckets):
            if cum < prev_cum:
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} bucket series must "
                     f"be cumulative (value {cum} after {prev_cum})")
            prev_cum = cum
            if le == "+Inf":
                if i != len(buckets) - 1:
                    _err(errors, path,
                         f"line {lineno}: histogram {name!r} '+Inf' bucket "
                         f"must come last")
                continue
            try:
                bound = int(le)
            except ValueError:
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} finite bound must "
                     f"be an integer, got {le!r}")
                continue
            if not _is_ladder_bound(bound, i):
                _err(errors, path,
                     f"line {lineno}: histogram {name!r} bound {bound} is "
                     f"off the 64<<i ladder "
                     f"(expected {BUCKET_LADDER_BASE << i})")
        if h["count"] is None:
            _err(errors, path, f"histogram {name!r} missing _count sample")
        elif buckets and buckets[-1][1] == "+Inf" and \
                h["count"] != buckets[-1][2]:
            _err(errors, path,
                 f"histogram {name!r} _count ({h['count']}) != '+Inf' "
                 f"cumulative bucket ({buckets[-1][2]})")
        if h["sum"] is None:
            _err(errors, path, f"histogram {name!r} missing _sum sample")
    return {"counters": counters, "gauges": gauges, "histograms": hists}


def check_folded_profile(errors, path, text):
    """Validates a tsdist.profile.v1 collapsed-stack profile.

    First line: `# tsdist.profile.v1 samples=N dropped=M interval_us=U
    threads=T` with every field a non-negative integer. Every following
    line: `frame;frame;... count` with a positive count; counts are
    non-increasing top to bottom (emitters sort hottest-first), no stack
    repeats, and the body counts sum to the header's sample total.

    Returns the parsed header as a dict (all fields present, defaulting to
    0 when the header was unreadable), so callers can assert on e.g.
    `samples` after the structural checks pass.
    """
    header = {key: 0 for key in PROFILE_HEADER_FIELDS}
    lines = text.splitlines()
    if not lines:
        _err(errors, path, "profile is empty")
        return header
    first = lines[0]
    prefix = f"# {PROFILE_SCHEMA} "
    if not first.startswith(prefix):
        _err(errors, path,
             f"header must start with {prefix.strip()!r}, got {first!r}")
        return header
    seen = set()
    for token in first[len(prefix):].split():
        key, eq, raw = token.partition("=")
        if not eq or key not in PROFILE_HEADER_FIELDS:
            _err(errors, path, f"unrecognized header token {token!r}")
            continue
        if key in seen:
            _err(errors, path, f"duplicate header field {key!r}")
            continue
        seen.add(key)
        if not raw.isdigit():
            _err(errors, path,
                 f"header field {key!r} must be a non-negative integer, "
                 f"got {raw!r}")
            continue
        header[key] = int(raw)
    for key in PROFILE_HEADER_FIELDS:
        if key not in seen:
            _err(errors, path, f"header missing field {key!r}")

    body_total = 0
    prev_count = None
    stacks = set()
    for lineno, line in enumerate(lines[1:], 2):
        if not line:
            _err(errors, path, f"line {lineno}: blank line in profile body")
            continue
        if line.startswith("#"):
            _err(errors, path,
                 f"line {lineno}: comment after the header line")
            continue
        sp = line.rfind(" ")
        if sp <= 0 or sp + 1 >= len(line):
            _err(errors, path,
                 f"line {lineno}: expected 'stack count', got {line!r}")
            continue
        stack, raw_count = line[:sp], line[sp + 1:]
        if not raw_count.isdigit() or int(raw_count) == 0:
            _err(errors, path,
                 f"line {lineno}: count must be a positive integer, "
                 f"got {raw_count!r}")
            continue
        count = int(raw_count)
        body_total += count
        if prev_count is not None and count > prev_count:
            _err(errors, path,
                 f"line {lineno}: counts must be non-increasing "
                 f"({count} after {prev_count})")
        prev_count = count
        if stack in stacks:
            _err(errors, path, f"line {lineno}: duplicate stack {stack!r}")
        stacks.add(stack)
        if any(not frame for frame in stack.split(";")):
            _err(errors, path,
                 f"line {lineno}: stack has an empty frame: {stack!r}")
    if "samples" in seen and body_total != header["samples"]:
        _err(errors, path,
             f"body counts sum to {body_total} but the header claims "
             f"{header['samples']} samples")
    return header


def check_heap_profile(errors, path, text):
    """Validates a tsdist.heapprofile.v1 collapsed-stack heap profile.

    First line: `# tsdist.heapprofile.v1 samples=N dropped=D live_bytes=L
    cumulative_bytes=C interval_bytes=I` with every field a non-negative
    integer. Every following line: `frame;frame;... live cum` with
    0 <= live <= cum and cum > 0 (fully-retired stacks keep their cumulative
    bytes; zero-cumulative rows are dropped by the emitter). Rows sort by
    descending live bytes, then descending cumulative bytes; no stack
    repeats; the live and cum column sums equal the header's live_bytes and
    cumulative_bytes (the emitters compute the header from the rows). A
    samples=0 header (idle or unavailable profiler, NOOP stub) must carry an
    empty body.

    Returns the parsed header as a dict, defaulting to 0 on unreadable
    fields, so callers can assert on e.g. `samples` afterwards.
    """
    header = {key: 0 for key in HEAP_HEADER_FIELDS}
    lines = text.splitlines()
    if not lines:
        _err(errors, path, "heap profile is empty")
        return header
    first = lines[0]
    prefix = f"# {HEAP_PROFILE_SCHEMA} "
    if not first.startswith(prefix):
        _err(errors, path,
             f"header must start with {prefix.strip()!r}, got {first!r}")
        return header
    seen = set()
    for token in first[len(prefix):].split():
        key, eq, raw = token.partition("=")
        if not eq or key not in HEAP_HEADER_FIELDS:
            _err(errors, path, f"unrecognized header token {token!r}")
            continue
        if key in seen:
            _err(errors, path, f"duplicate header field {key!r}")
            continue
        seen.add(key)
        if not raw.isdigit():
            _err(errors, path,
                 f"header field {key!r} must be a non-negative integer, "
                 f"got {raw!r}")
            continue
        header[key] = int(raw)
    for key in HEAP_HEADER_FIELDS:
        if key not in seen:
            _err(errors, path, f"header missing field {key!r}")

    live_total = 0
    cum_total = 0
    rows = 0
    prev = None  # (live, cum) of the previous row
    stacks = set()
    for lineno, line in enumerate(lines[1:], 2):
        if not line:
            _err(errors, path, f"line {lineno}: blank line in profile body")
            continue
        if line.startswith("#"):
            _err(errors, path,
                 f"line {lineno}: comment after the header line")
            continue
        parts = line.rsplit(" ", 2)
        if len(parts) != 3 or not parts[0]:
            _err(errors, path,
                 f"line {lineno}: expected 'stack live cum', got {line!r}")
            continue
        stack, raw_live, raw_cum = parts
        if not raw_live.isdigit() or not raw_cum.isdigit():
            _err(errors, path,
                 f"line {lineno}: counts must be non-negative integers, "
                 f"got {raw_live!r} {raw_cum!r}")
            continue
        live, cum = int(raw_live), int(raw_cum)
        if cum == 0:
            _err(errors, path,
                 f"line {lineno}: cumulative bytes must be positive (the "
                 f"emitter drops zero-cumulative rows)")
            continue
        if live > cum:
            _err(errors, path,
                 f"line {lineno}: live bytes ({live}) exceed cumulative "
                 f"bytes ({cum})")
        rows += 1
        live_total += live
        cum_total += cum
        if prev is not None and (live, cum) > prev:
            _err(errors, path,
                 f"line {lineno}: rows must be sorted by descending live, "
                 f"then cumulative bytes ({(live, cum)} after {prev})")
        prev = (live, cum)
        if stack in stacks:
            _err(errors, path, f"line {lineno}: duplicate stack {stack!r}")
        stacks.add(stack)
        if any(not frame for frame in stack.split(";")):
            _err(errors, path,
                 f"line {lineno}: stack has an empty frame: {stack!r}")
    if "live_bytes" in seen and live_total != header["live_bytes"]:
        _err(errors, path,
             f"live column sums to {live_total} but the header claims "
             f"{header['live_bytes']}")
    if "cumulative_bytes" in seen and cum_total != header["cumulative_bytes"]:
        _err(errors, path,
             f"cumulative column sums to {cum_total} but the header claims "
             f"{header['cumulative_bytes']}")
    if "samples" in seen and header["samples"] == 0 and rows:
        _err(errors, path,
             f"header claims 0 samples but the body has {rows} row(s)")
    return header


def check_lease(errors, path, data):
    """Validates a tsdist.lease.v1 shard-lease file (binary).

    Decodes the valid prefix of fixed-size CRC-framed records exactly the way
    the C++ reader does: records are consumed until the first bad magic, CRC,
    or type, and anything after that point is a *torn tail* — legitimate
    (that is what a kill mid-append leaves behind) and therefore never an
    error here. Within the valid prefix the file must be a well-formed lease
    history: at least one record, the first a claim, every record carrying
    the claim's fencing epoch, and nothing appended after a release (the
    release closes the lease; the writer closes the descriptor with it).

    Returns a summary dict: records, epoch, worker, pid, released,
    torn_bytes.
    """
    summary = {"records": 0, "epoch": 0, "worker": "", "pid": 0,
               "released": False, "torn_bytes": 0}
    pos = 0
    while pos + LEASE_RECORD.size <= len(data):
        raw = data[pos:pos + LEASE_RECORD.size]
        magic, rtype, epoch, pid, wall_ms, worker, crc = \
            LEASE_RECORD.unpack(raw)
        if magic != LEASE_MAGIC or rtype not in LEASE_TYPES or \
                crc != zlib.crc32(raw[:-4]):
            break  # torn tail: the valid prefix ends here
        record = summary["records"]
        if record == 0:
            if rtype != 1:
                _err(errors, path,
                     f"first record must be a claim, got "
                     f"{LEASE_TYPES[rtype]!r}")
                return summary
            summary["epoch"] = epoch
            summary["pid"] = pid
            summary["worker"] = worker.split(b"\0", 1)[0].decode(
                "utf-8", "replace")
        else:
            if summary["released"]:
                _err(errors, path,
                     f"record {record} appended after a release (the "
                     f"release record must close the lease)")
            if epoch != summary["epoch"]:
                _err(errors, path,
                     f"record {record} carries epoch {epoch} but the claim "
                     f"pinned epoch {summary['epoch']} (fencing violation)")
            if rtype == 1:
                _err(errors, path, f"record {record} is a second claim")
        if worker[-1:] != b"\0":
            _err(errors, path,
                 f"record {record} worker field is not NUL-terminated")
        if rtype == 3:
            summary["released"] = True
        summary["records"] += 1
        pos += LEASE_RECORD.size
    summary["torn_bytes"] = len(data) - pos
    if summary["records"] == 0:
        _err(errors, path,
             f"no valid record in {len(data)} bytes (a lease must start "
             f"with a CRC-framed claim)")
    return summary


def check_fleet_health(errors, path, doc):
    """tsdist.fleethealth.v1: the aggregated fleet view served at /fleetz
    and embedded as the `fleet` block of a shard worker's /healthz."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != FLEET_HEALTH_SCHEMA:
        _err(errors, path,
             f"schema must be {FLEET_HEALTH_SCHEMA!r}, "
             f"got {doc.get('schema')!r}")
    stale_after = doc.get("stale_after_sec")
    if not _is_num(stale_after) or stale_after < 0:
        _err(errors, path,
             f"field 'stale_after_sec' must be a non-negative number, "
             f"got {stale_after!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        _err(errors, path, "field 'summary' must be an object")
        return
    for key in ("workers", "live", "stale"):
        v = summary.get(key)
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"summary field {key!r} must be a non-negative integer, "
                 f"got {v!r}")
            return
    if summary["workers"] != summary["live"] + summary["stale"]:
        _err(errors, path,
             f"summary workers ({summary['workers']}) != live "
             f"({summary['live']}) + stale ({summary['stale']})")
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        _err(errors, path, "field 'trace' must be an object")
    else:
        for key in ("spooling_workers", "spooled_spans"):
            v = trace.get(key)
            if not _is_int(v) or v < 0:
                _err(errors, path,
                     f"trace field {key!r} must be a non-negative integer, "
                     f"got {v!r}")
        if _is_int(trace.get("spooling_workers")) and \
                trace["spooling_workers"] > summary["workers"]:
            _err(errors, path,
                 f"trace spooling_workers ({trace['spooling_workers']}) "
                 f"exceeds the fleet size ({summary['workers']})")
    workers = doc.get("workers")
    if not isinstance(workers, list):
        _err(errors, path, "field 'workers' must be an array")
        return
    if len(workers) != summary["workers"]:
        _err(errors, path,
             f"summary counts {summary['workers']} workers but the array "
             f"has {len(workers)}")
    stale_flags = 0
    for i, worker in enumerate(workers):
        sub = f"worker {i}"
        if not isinstance(worker, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        if not isinstance(worker.get("worker"), str) or \
                not worker.get("worker"):
            _err(errors, path, f"{sub} field 'worker' must be a non-empty "
                               f"string")
        if not isinstance(worker.get("phase"), str):
            _err(errors, path, f"{sub} field 'phase' must be a string")
        for key in ("pid", "epoch"):
            v = worker.get(key)
            if not _is_int(v) or v < 0:
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-negative integer, "
                     f"got {v!r}")
        if not _is_int(worker.get("shard")):
            # -1 means "between shards", so only integer-ness is required.
            _err(errors, path,
                 f"{sub} field 'shard' must be an integer, "
                 f"got {worker.get('shard')!r}")
        cells = worker.get("cells")
        if not isinstance(cells, dict):
            _err(errors, path, f"{sub} field 'cells' must be an object")
        else:
            for key in ("done", "total"):
                v = cells.get(key)
                if not _is_int(v) or v < 0:
                    _err(errors, path,
                         f"{sub} cells field {key!r} must be a non-negative "
                         f"integer, got {v!r}")
        spooled = worker.get("spans_spooled")
        if not _is_int(spooled) or spooled < 0:
            _err(errors, path,
                 f"{sub} field 'spans_spooled' must be a non-negative "
                 f"integer (0 = not spooling), got {spooled!r}")
        age = worker.get("age_sec")
        if not _is_num(age) or age < 0:
            _err(errors, path,
                 f"{sub} field 'age_sec' must be a non-negative number, "
                 f"got {age!r}")
        if not isinstance(worker.get("stale"), bool):
            _err(errors, path, f"{sub} field 'stale' must be a boolean")
        elif worker["stale"]:
            stale_flags += 1
    if stale_flags != summary["stale"]:
        _err(errors, path,
             f"summary claims {summary['stale']} stale workers but "
             f"{stale_flags} carry the stale flag")


def check_trace_spool(errors, path, text):
    """Validates a tsdist.tracespool.v1 crash-durable span spool.

    The spool is line-delimited JSON: a header line pinning the process's
    trace identity (run id, role, worker, pid, fencing epoch) and its
    CLOCK_REALTIME anchor, then one event line per flushed span. The writer
    appends whole lines and fsyncs each flush, so a SIGKILL can leave at
    most one torn line, at EOF, without a trailing newline — that is
    legitimate kill residue and never an error here. Anything else
    malformed (a bad header, a complete-but-invalid line, garbage before
    EOF) is corruption and fails.

    Returns a summary dict: events, torn_lines, run_id, role, worker, pid.
    """
    summary = {"events": 0, "torn_lines": 0, "run_id": "", "role": "",
               "worker": "", "pid": 0}
    if not text:
        _err(errors, path, "empty spool (no header line)")
        return summary
    terminated = text.endswith("\n")
    lines = text.split("\n")
    if terminated:
        lines.pop()  # the split artifact, not a line
    for i, line in enumerate(lines):
        last = i == len(lines) - 1
        torn_ok = last and not terminated
        try:
            record = json.loads(line)
        except ValueError:
            if torn_ok and i > 0:
                summary["torn_lines"] = 1
                return summary
            _err(errors, path,
                 f"line {i + 1} is not JSON and not a torn tail "
                 f"({'header line' if i == 0 else 'mid-file garbage'})")
            return summary
        if not isinstance(record, dict):
            _err(errors, path, f"line {i + 1} is not a JSON object")
            return summary
        if i == 0 and torn_ok:
            _err(errors, path,
                 "header line has no trailing newline (the process died "
                 "before its header was durable; nothing to merge)")
            return summary
        if i == 0:
            if record.get("schema") != TRACE_SPOOL_SCHEMA:
                _err(errors, path,
                     f"header schema must be {TRACE_SPOOL_SCHEMA!r}, got "
                     f"{record.get('schema')!r}")
                return summary
            for key in ("run_id", "role", "worker"):
                if not isinstance(record.get(key), str):
                    _err(errors, path,
                         f"header field {key!r} must be a string, got "
                         f"{record.get(key)!r}")
            if not record.get("run_id"):
                _err(errors, path, "header run_id must be non-empty")
            if not record.get("role"):
                _err(errors, path, "header role must be non-empty")
            for key in ("pid", "epoch", "anchor_wall_us"):
                if not _is_int(record.get(key)) or record.get(key) < 0:
                    _err(errors, path,
                         f"header field {key!r} must be a non-negative "
                         f"integer, got {record.get(key)!r}")
            if record.get("anchor_wall_us") == 0:
                _err(errors, path,
                     "header anchor_wall_us is 0 (no wall-clock anchor; "
                     "events cannot be placed on the fleet timeline)")
            summary["run_id"] = record.get("run_id", "")
            summary["role"] = record.get("role", "")
            summary["worker"] = record.get("worker", "")
            summary["pid"] = record.get("pid", 0)
            continue
        sub = f"event line {i + 1}"
        if not isinstance(record.get("name"), str) or not record["name"]:
            _err(errors, path,
                 f"{sub}: field 'name' must be a non-empty string")
        if not isinstance(record.get("cat"), str):
            _err(errors, path, f"{sub}: field 'cat' must be a string")
        for key in ("ts_ns", "dur_ns", "tid", "id"):
            if not _is_int(record.get(key)) or record.get(key) < 0:
                _err(errors, path,
                     f"{sub}: field {key!r} must be a non-negative "
                     f"integer, got {record.get(key)!r}")
        if not _is_int(record.get("parent")):
            _err(errors, path,
                 f"{sub}: field 'parent' must be an integer (-1 for a "
                 f"root span), got {record.get('parent')!r}")
        ph = record.get("ph")
        if ph is not None and ph != "i":
            _err(errors, path,
                 f"{sub}: field 'ph' must be 'i' when present (complete "
                 f"spans omit it), got {ph!r}")
        if ph == "i" and record.get("dur_ns") not in (0, None):
            _err(errors, path,
                 f"{sub}: instant event carries dur_ns "
                 f"{record.get('dur_ns')!r}, expected 0")
        if "args" in record and not isinstance(record["args"], dict):
            _err(errors, path, f"{sub}: field 'args' must be an object")
        summary["events"] += 1
    return summary


def check_fleet_trace(errors, path, doc):
    """tsdist.fleettrace.v1: the fleet-wide analysis trace_merge emits
    alongside the stitched Chrome trace (--analysis-out)."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != FLEET_TRACE_SCHEMA:
        _err(errors, path,
             f"schema must be {FLEET_TRACE_SCHEMA!r}, "
             f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("run_id"), str):
        _err(errors, path, "field 'run_id' must be a string")
    for key in ("processes", "events"):
        if not _is_int(doc.get(key)) or doc.get(key) < 0:
            _err(errors, path,
                 f"field {key!r} must be a non-negative integer, got "
                 f"{doc.get(key)!r}")
    if doc.get("processes") == 0:
        _err(errors, path, "field 'processes' is 0 (nothing was merged)")
    torn = doc.get("torn")
    if not isinstance(torn, dict):
        _err(errors, path, "field 'torn' must be an object")
    else:
        for key in ("files", "lines", "bytes"):
            if not _is_int(torn.get(key)) or torn.get(key) < 0:
                _err(errors, path,
                     f"torn field {key!r} must be a non-negative integer, "
                     f"got {torn.get(key)!r}")
    shard_events = doc.get("shard_events")
    if not isinstance(shard_events, dict):
        _err(errors, path, "field 'shard_events' must be an object")
    else:
        for key in ("claims", "steals", "reclaims", "conflicts"):
            if not _is_int(shard_events.get(key)) or shard_events[key] < 0:
                _err(errors, path,
                     f"shard_events field {key!r} must be a non-negative "
                     f"integer, got {shard_events.get(key)!r}")
    if not _is_num(doc.get("makespan_ms")) or doc.get("makespan_ms") < 0:
        _err(errors, path,
             f"field 'makespan_ms' must be a non-negative number, got "
             f"{doc.get('makespan_ms')!r}")
    imbalance = doc.get("imbalance_pct")
    if not _is_num(imbalance) or not 0 <= imbalance <= 100:
        _err(errors, path,
             f"field 'imbalance_pct' must be a number in [0, 100], got "
             f"{imbalance!r}")
    critical = doc.get("critical_path")
    if not isinstance(critical, dict) or \
            not isinstance(critical.get("segments"), list):
        _err(errors, path,
             "field 'critical_path' must be an object with a 'segments' "
             "array")
    else:
        coverage = critical.get("coverage_pct")
        # The chain's segments are disjoint in time, so coverage cannot
        # exceed the makespan (tiny float slack for the ms rounding).
        if not _is_num(coverage) or not 0 <= coverage <= 100.5:
            _err(errors, path,
                 f"critical_path coverage_pct must be a number in "
                 f"[0, 100], got {coverage!r}")
        prev_start = -1.0
        for i, seg in enumerate(critical["segments"]):
            sub = f"critical_path segment {i}"
            if not isinstance(seg, dict):
                _err(errors, path, f"{sub} is not an object")
                return
            for key in ("proc", "name"):
                if not isinstance(seg.get(key), str) or not seg.get(key):
                    _err(errors, path,
                         f"{sub} field {key!r} must be a non-empty string")
            for key in ("start_ms", "dur_ms"):
                if not _is_num(seg.get(key)) or seg.get(key) < 0:
                    _err(errors, path,
                         f"{sub} field {key!r} must be a non-negative "
                         f"number, got {seg.get(key)!r}")
            if _is_num(seg.get("start_ms")):
                if seg["start_ms"] < prev_start:
                    _err(errors, path,
                         f"{sub} starts at {seg['start_ms']} ms, before "
                         f"the previous segment ({prev_start} ms) — the "
                         f"chain must be emitted in time order")
                prev_start = seg["start_ms"]
    workers = doc.get("workers")
    if not isinstance(workers, list) or not workers:
        _err(errors, path, "field 'workers' must be a non-empty array")
        return
    if _is_int(doc.get("processes")) and len(workers) != doc["processes"]:
        _err(errors, path,
             f"'processes' counts {doc['processes']} but the workers array "
             f"has {len(workers)}")
    for i, worker in enumerate(workers):
        sub = f"worker {i}"
        if not isinstance(worker, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        if not isinstance(worker.get("proc"), str) or not worker["proc"]:
            _err(errors, path,
                 f"{sub} field 'proc' must be a non-empty string")
        for key in ("role", "worker"):
            if not isinstance(worker.get(key), str):
                _err(errors, path, f"{sub} field {key!r} must be a string")
        for key in ("pid", "cells", "torn_lines"):
            if not _is_int(worker.get(key)) or worker.get(key) < 0:
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-negative "
                     f"integer, got {worker.get(key)!r}")
        for key in ("busy_ms", "idle_ms"):
            if not _is_num(worker.get(key)) or worker.get(key) < 0:
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-negative number, "
                     f"got {worker.get(key)!r}")
        busy_pct = worker.get("busy_pct")
        if not _is_num(busy_pct) or not 0 <= busy_pct <= 100.5:
            _err(errors, path,
                 f"{sub} field 'busy_pct' must be a number in [0, 100], "
                 f"got {busy_pct!r}")
    stragglers = doc.get("stragglers")
    if not isinstance(stragglers, list):
        _err(errors, path, "field 'stragglers' must be an array")
        return
    prev_dur = None
    for i, cell in enumerate(stragglers):
        sub = f"straggler {i}"
        if not isinstance(cell, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        for key in ("name", "proc"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                _err(errors, path,
                     f"{sub} field {key!r} must be a non-empty string")
        for key in ("dataset", "measure"):
            if not isinstance(cell.get(key), str):
                _err(errors, path, f"{sub} field {key!r} must be a string")
        dur = cell.get("dur_ms")
        if not _is_num(dur) or dur < 0:
            _err(errors, path,
                 f"{sub} field 'dur_ms' must be a non-negative number, "
                 f"got {dur!r}")
        elif prev_dur is not None and dur > prev_dur:
            _err(errors, path,
                 f"{sub} ({dur} ms) is longer than the one before it "
                 f"({prev_dur} ms) — stragglers must be sorted slowest "
                 f"first")
        if _is_num(dur):
            prev_dur = dur


def check_required_cases(errors, path, doc, required):
    """--require-case BENCH/CASE entries must exist in the bench/suite doc."""
    present = set()
    reports = doc.get("benches", [doc]) if isinstance(doc, dict) else []
    for report in reports:
        if not isinstance(report, dict):
            continue
        bench = report.get("bench", "?")
        for case in report.get("cases", []) or []:
            if isinstance(case, dict):
                present.add(f"{bench}/{case.get('name')}")
    for want in required:
        if want not in present:
            _err(errors, path, f"required case {want!r} not found")


def load(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _err(errors, path, f"invalid JSON: {exc}")
    return None


def load_text(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    return None


def load_bytes(errors, path):
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    return None


def mangle_openmetrics_name(name):
    """The C++ exposition's name mangling: tsdist.pool.jobs ->
    tsdist_pool_jobs (so --require-nonzero works on either format)."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


# --- self test ------------------------------------------------------------

def _valid_metrics():
    return {
        "schema": METRICS_SCHEMA,
        "counters": {"tsdist.pool.tasks": 12},
        "gauges": {"tsdist.proc.peak_rss_bytes": 1048576.0},
        "histograms": {
            "tsdist.pairwise.row_ns.euclidean": {
                "count": 2, "sum": 90, "min": 10, "max": 80,
                "buckets": [{"le": 64, "count": 1}, {"le": 128, "count": 1},
                            {"le": "+Inf", "count": 0}],
            },
        },
    }


def _valid_openmetrics():
    return (
        "# TYPE tsdist_pool_jobs counter\n"
        "tsdist_pool_jobs_total 42\n"
        "# TYPE tsdist_proc_peak_rss_bytes gauge\n"
        "tsdist_proc_peak_rss_bytes 1048576\n"
        "# TYPE tsdist_eval_cell_ns histogram\n"
        'tsdist_eval_cell_ns_bucket{le="64"} 1\n'
        'tsdist_eval_cell_ns_bucket{le="128"} 3\n'
        'tsdist_eval_cell_ns_bucket{le="256"} 3\n'
        'tsdist_eval_cell_ns_bucket{le="+Inf"} 4\n'
        "tsdist_eval_cell_ns_sum 700\n"
        "tsdist_eval_cell_ns_count 4\n"
        "# EOF\n"
    )


def _valid_perf_reading():
    return {
        "cycles": 1000000, "instructions": 2500000,
        "cache_references": 20000, "cache_misses": 400,
        "branches": 500000, "branch_misses": 2000,
        "time_enabled_ns": 800000, "time_running_ns": 800000,
        "ipc": 2.5, "cache_miss_rate": 0.02, "branch_miss_rate": 0.004,
        "running_ratio": 1.0,
    }


def _valid_kernel_attribution():
    return {
        "euclidean": {"calls": 128, "wall_ns": 73000,
                      "perf": _valid_perf_reading()},
        "dtw": {"calls": 64, "wall_ns": 910000},
    }


def _valid_folded():
    return (
        f"# {PROFILE_SCHEMA} samples=6 dropped=1 interval_us=1000 threads=2\n"
        "main;Evaluate;DtwKernel 3\n"
        "main;Evaluate;EuclideanKernel 2\n"
        "main;Export 1\n"
    )


def _valid_memory_attribution():
    return {
        "euclidean": {"alloc_bytes": 262144, "alloc_count": 128,
                      "peak_live_bytes": 131072},
        "dtw": {"alloc_bytes": 9437184, "alloc_count": 4096,
                "peak_live_bytes": 0},
    }


def _valid_heap_folded():
    return (
        f"# {HEAP_PROFILE_SCHEMA} samples=5 dropped=1 live_bytes=3072"
        " cumulative_bytes=7168 interval_bytes=1024\n"
        "main;Evaluate;DtwKernel 2048 4096\n"
        "main;Evaluate;EuclideanKernel 1024 2048\n"
        "main;Export 0 1024\n"
    )


def _valid_manifest():
    return {
        "schema_version": 2, "git_sha": "deadbeef", "git_dirty": False,
        "compiler": "GNU 13.2.0", "compiler_flags": "-O2", "build_type":
        "Release", "cpu_model": "test cpu", "cpu_cores": 8, "threads": 4,
        "rng_seed": 20200614, "scale": "tiny",
    }


def _valid_report():
    return {
        "schema": BENCH_SCHEMA_V2, "bench": "bench_x", "scale": "tiny",
        "threads": 4, "wall_ms": 12.5, "manifest": _valid_manifest(),
        "peak_rss_bytes": 1048576,
        "cases": [{
            "name": "evaluate", "warmup": 1, "iters": 3,
            "samples_ms": [4.0, 3.5, 5.0],
            "min_ms": 3.5, "median_ms": 4.0, "p90_ms": 5.0, "mean_ms": 4.1667,
        }],
        "metrics": _valid_metrics(),
    }


def _valid_suite():
    return {
        "schema": BENCH_SCHEMA_V2, "kind": "suite", "suite": "smoke",
        "scale": "tiny", "repeat": 3, "warmup": 1,
        "manifest": _valid_manifest(), "benches": [_valid_report()],
    }


def _valid_results():
    return {
        "schema": RESULTS_SCHEMA, "supervised": True, "pruned": False,
        "norm": "zscore", "budget_sec": 600.0,
        "summary": {"total": 2, "ok": 1, "failed": 0, "dnf": 1,
                    "interrupted": 0, "resumed": 1},
        "cells": [
            {"dataset": "CBF", "measure": "dtw", "params": "delta=9",
             "status": "ok", "reason": "", "train_accuracy": 0.9,
             "test_accuracy": 1.0, "resumed": True},
            {"dataset": "CBF", "measure": "msm", "params": "",
             "status": "dnf", "reason": "dnf: LOOCV matrix cancelled",
             "train_accuracy": 0.0, "test_accuracy": 0.0, "resumed": False},
        ],
    }


def _lease_record(rtype, epoch, pid=4242, wall_ms=1718000000000,
                  worker=b"w0"):
    """One CRC-framed tsdist.lease.v1 record, byte-compatible with the C++
    writer (struct's `28s` zero-pads the worker field the same way)."""
    body = LEASE_RECORD.pack(LEASE_MAGIC, rtype, epoch, pid, wall_ms,
                             worker, 0)[:-4]
    return body + struct.pack("<I", zlib.crc32(body))


def _valid_lease():
    return (_lease_record(1, 3) + _lease_record(2, 3) +
            _lease_record(2, 3) + _lease_record(3, 3))


def _valid_fleet_health():
    return {
        "schema": FLEET_HEALTH_SCHEMA,
        "stale_after_sec": 15.0,
        "summary": {"workers": 2, "live": 1, "stale": 1},
        "trace": {"spooling_workers": 1, "spooled_spans": 37},
        "workers": [
            {"worker": "w0", "pid": 100, "phase": "compute", "shard": 3,
             "epoch": 1, "cells": {"done": 5, "total": 16},
             "spans_spooled": 37, "age_sec": 0.4, "stale": False},
            {"worker": "w1", "pid": 101, "phase": "claim", "shard": -1,
             "epoch": 2, "cells": {"done": 0, "total": 0},
             "spans_spooled": 0, "age_sec": 61.0, "stale": True},
        ],
    }


def _valid_trace_spool():
    """A tsdist.tracespool.v1 spool: header, two complete spans, one
    instant, line-for-line the way TraceSpool's flusher writes them."""
    return (
        '{"schema": "tsdist.tracespool.v1", "run_id": "f00dfeedbeefcafe", '
        '"role": "worker", "worker": "w0", "pid": 4242, "epoch": 2, '
        '"anchor_wall_us": 1718000000000000}\n'
        '{"name": "shard.run", "cat": "shard", "ts_ns": 1000, '
        '"dur_ns": 900000000, "tid": 1, "id": 1, "parent": -1, '
        '"args": {"shard": 3, "epoch": 2}}\n'
        '{"name": "shard.cell/Coffee/euclidean", "cat": "shard", '
        '"ts_ns": 2000, "dur_ns": 450000000, "tid": 1, "id": 2, '
        '"parent": 1, "args": {"dataset": "Coffee", '
        '"measure": "euclidean"}}\n'
        '{"name": "shard.claim", "cat": "shard", "ts_ns": 500, '
        '"dur_ns": 0, "tid": 1, "id": 3, "parent": -1, "ph": "i", '
        '"args": {"shard": 3}}\n'
    )


def _valid_fleet_trace():
    return {
        "schema": FLEET_TRACE_SCHEMA,
        "run_id": "f00dfeedbeefcafe",
        "processes": 2,
        "events": 7,
        "torn": {"files": 1, "lines": 1, "bytes": 42},
        "shard_events": {"claims": 2, "steals": 1, "reclaims": 1,
                         "conflicts": 0},
        "makespan_ms": 1200.0,
        "imbalance_pct": 25.0,
        "critical_path": {
            "segments": [
                {"proc": "w0", "name": "shard.cell/Coffee/euclidean",
                 "start_ms": 0.0, "dur_ms": 450.0},
                {"proc": "w1", "name": "shard.cell/Coffee/sbd",
                 "start_ms": 500.0, "dur_ms": 700.0},
            ],
            "coverage_pct": 95.8,
        },
        "workers": [
            {"proc": "w0", "role": "worker", "worker": "w0", "pid": 100,
             "cells": 3, "busy_ms": 900.0, "idle_ms": 300.0,
             "busy_pct": 75.0, "torn_lines": 1},
            {"proc": "w1", "role": "worker", "worker": "w1", "pid": 101,
             "cells": 4, "busy_ms": 1200.0, "idle_ms": 0.0,
             "busy_pct": 100.0, "torn_lines": 0},
        ],
        "stragglers": [
            {"name": "shard.cell/Coffee/sbd", "proc": "w1",
             "dataset": "Coffee", "measure": "sbd", "dur_ms": 700.0},
            {"name": "shard.cell/Coffee/euclidean", "proc": "w0",
             "dataset": "Coffee", "measure": "euclidean",
             "dur_ms": 450.0},
        ],
    }


def self_test():
    failures = []

    def expect(doc, should_pass, label, mutate=None, min_samples=1):
        doc = copy.deepcopy(doc)
        if mutate:
            mutate(doc)
        errors = []
        check_bench(errors, label, doc, min_samples=min_samples)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    def expect_results(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_results())
        if mutate:
            mutate(doc)
        errors = []
        check_results(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect(_valid_report(), True, "valid v2 report")
    expect(_valid_suite(), True, "valid v2 suite")
    expect({"schema": BENCH_SCHEMA_V1, "bench": "x", "wall_ms": 1.0,
            "metrics": _valid_metrics()}, True, "valid v1 report")

    expect(_valid_report(), False, "bad schema string",
           lambda d: d.update(schema="tsdist.bench.v3"))
    expect(_valid_report(), False, "missing manifest",
           lambda d: d.pop("manifest"))
    expect(_valid_report(), False, "empty git sha",
           lambda d: d["manifest"].update(git_sha=""))
    expect(_valid_report(), False, "manifest wrong version",
           lambda d: d["manifest"].update(schema_version=1))
    expect(_valid_report(), False, "iters mismatch",
           lambda d: d["cases"][0].update(iters=7))
    expect(_valid_report(), False, "negative sample",
           lambda d: d["cases"][0]["samples_ms"].__setitem__(0, -1.0))
    expect(_valid_report(), False, "missing peak rss",
           lambda d: d.pop("peak_rss_bytes"))
    expect(_valid_report(), False, "empty cases",
           lambda d: d.update(cases=[]))
    expect(_valid_report(), False, "summary ordering",
           lambda d: d["cases"][0].update(median_ms=100.0))
    expect(_valid_report(), False, "too few samples", min_samples=5)
    expect(_valid_report(), True, "enough samples", min_samples=3)
    expect(_valid_suite(), False, "suite zero repeat",
           lambda d: d.update(repeat=0))
    expect(_valid_suite(), False, "suite v1 embedded",
           lambda d: d["benches"][0].update(schema=BENCH_SCHEMA_V1))
    expect(_valid_report(), False, "broken embedded metrics",
           lambda d: d["metrics"].update(schema="bogus"))

    # Per-case kernel attribution and perf-reading blocks (optional, but
    # checked when present).
    def with_attribution(doc):
        doc["cases"][0]["kernel_attribution"] = _valid_kernel_attribution()
        doc["cases"][0]["perf"] = _valid_perf_reading()

    expect(_valid_report(), True, "valid kernel attribution",
           with_attribution)
    expect(_valid_report(), False, "attribution empty object",
           lambda d: d["cases"][0].update(kernel_attribution={}))
    expect(_valid_report(), False, "attribution negative calls",
           lambda d: (with_attribution(d), d["cases"][0]
                      ["kernel_attribution"]["dtw"].update(calls=-1)))
    expect(_valid_report(), False, "attribution missing wall_ns",
           lambda d: (with_attribution(d), d["cases"][0]
                      ["kernel_attribution"]["dtw"].pop("wall_ns")))
    expect(_valid_report(), False, "attribution all-zero entry",
           lambda d: (with_attribution(d), d["cases"][0]
                      ["kernel_attribution"]["dtw"]
                      .update(calls=0, wall_ns=0)))
    expect(_valid_report(), False, "attribution non-object stats",
           lambda d: d["cases"][0].update(kernel_attribution={"dtw": 7}))
    expect(_valid_report(), False, "perf running > enabled",
           lambda d: (with_attribution(d), d["cases"][0]["perf"]
                      .update(time_running_ns=10**9)))
    expect(_valid_report(), False, "perf non-integer count",
           lambda d: (with_attribution(d), d["cases"][0]["perf"]
                      .update(cycles=1.5)))

    # Per-case memory attribution (optional, checked when present).
    def with_memory(doc):
        doc["cases"][0]["memory_attribution"] = _valid_memory_attribution()

    expect(_valid_report(), True, "valid memory attribution", with_memory)
    expect(_valid_report(), False, "memory attribution empty object",
           lambda d: d["cases"][0].update(memory_attribution={}))
    expect(_valid_report(), False, "memory attribution negative bytes",
           lambda d: (with_memory(d), d["cases"][0]
                      ["memory_attribution"]["dtw"].update(alloc_bytes=-1)))
    expect(_valid_report(), False, "memory attribution missing peak",
           lambda d: (with_memory(d), d["cases"][0]
                      ["memory_attribution"]["dtw"].pop("peak_live_bytes")))
    expect(_valid_report(), False, "memory attribution all-zero allocs",
           lambda d: (with_memory(d), d["cases"][0]
                      ["memory_attribution"]["dtw"]
                      .update(alloc_bytes=0, alloc_count=0)))
    expect(_valid_report(), False, "memory attribution non-object stats",
           lambda d: d["cases"][0].update(memory_attribution={"dtw": 7}))
    expect(_valid_report(), False, "memory attribution float count",
           lambda d: (with_memory(d), d["cases"][0]
                      ["memory_attribution"]["dtw"].update(alloc_count=1.5)))

    expect_results(True, "valid results report")
    expect_results(False, "results bad schema",
                   lambda d: d.update(schema="tsdist.results.v2"))
    expect_results(False, "results unknown status",
                   lambda d: d["cells"][0].update(status="maybe"))
    expect_results(False, "results dnf without reason",
                   lambda d: d["cells"][1].update(reason=""))
    expect_results(False, "results summary tally mismatch",
                   lambda d: d["summary"].update(ok=2, dnf=0))
    expect_results(False, "results resumed tally mismatch",
                   lambda d: d["summary"].update(resumed=0))
    expect_results(False, "results ok accuracy out of range",
                   lambda d: d["cells"][0].update(test_accuracy=1.5))
    expect_results(False, "results non-numeric accuracy",
                   lambda d: d["cells"][0].update(train_accuracy="high"))
    expect_results(False, "results missing dataset",
                   lambda d: d["cells"][0].update(dataset=""))
    expect_results(False, "results negative budget",
                   lambda d: d.update(budget_sec=-1.0))

    # JSON histograms must sit on the shared 64<<i bucket ladder.
    def expect_metrics(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_metrics())
        if mutate:
            mutate(doc)
        errors = []
        check_metrics(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_metrics(True, "valid metrics")
    expect_metrics(False, "off-ladder bucket bound",
                   lambda d: d["histograms"]
                   ["tsdist.pairwise.row_ns.euclidean"]["buckets"][0]
                   .update(le=100))

    def expect_om(should_pass, label, mutate=None):
        text = _valid_openmetrics()
        if mutate:
            text = mutate(text)
        errors = []
        check_openmetrics(errors, label, text)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_om(True, "valid openmetrics")
    expect_om(False, "openmetrics missing EOF",
              lambda t: t.replace("# EOF\n", ""))
    expect_om(False, "openmetrics counter without _total",
              lambda t: t.replace("tsdist_pool_jobs_total 42\n",
                                  "tsdist_pool_jobs 42\n"))
    expect_om(False, "openmetrics non-cumulative buckets",
              lambda t: t.replace('le="128"} 3', 'le="128"} 0'))
    expect_om(False, "openmetrics off-ladder bound",
              lambda t: t.replace('le="128"', 'le="100"'))
    expect_om(False, "openmetrics count mismatch",
              lambda t: t.replace("tsdist_eval_cell_ns_count 4",
                                  "tsdist_eval_cell_ns_count 9"))
    expect_om(False, "openmetrics missing +Inf",
              lambda t: t.replace('tsdist_eval_cell_ns_bucket{le="+Inf"} 4\n',
                                  ""))
    expect_om(False, "openmetrics sample without TYPE",
              lambda t: t + "mystery_metric 1\n# EOF\n")
    expect_om(False, "openmetrics negative value",
              lambda t: t.replace("tsdist_pool_jobs_total 42",
                                  "tsdist_pool_jobs_total -2"))

    if mangle_openmetrics_name("tsdist.pool.jobs") != "tsdist_pool_jobs":
        failures.append("mangle_openmetrics_name: wrong mangling")

    def expect_folded(should_pass, label, mutate=None, want_samples=None):
        text = _valid_folded()
        if mutate:
            text = mutate(text)
        errors = []
        header = check_folded_profile(errors, label, text)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")
        if want_samples is not None and header["samples"] != want_samples:
            failures.append(f"{label}: header samples {header['samples']}, "
                            f"expected {want_samples}")

    expect_folded(True, "valid folded profile", want_samples=6)
    expect_folded(True, "header-only folded profile (idle profiler)",
                  lambda t: t.splitlines()[0].replace(
                      "samples=6", "samples=0") + "\n")
    expect_folded(False, "folded wrong schema",
                  lambda t: t.replace(PROFILE_SCHEMA, "tsdist.profile.v9"))
    expect_folded(False, "folded missing header field",
                  lambda t: t.replace(" dropped=1", ""))
    expect_folded(False, "folded non-numeric header field",
                  lambda t: t.replace("interval_us=1000", "interval_us=ms"))
    expect_folded(False, "folded body sum mismatch",
                  lambda t: t.replace("samples=6", "samples=9"))
    expect_folded(False, "folded zero count row",
                  lambda t: t.replace("main;Export 1", "main;Export 0"))
    expect_folded(False, "folded malformed row",
                  lambda t: t.replace("main;Export 1", "main;Export"))
    expect_folded(False, "folded increasing counts",
                  lambda t: t.replace("main;Export 1", "main;Export 4"))
    expect_folded(False, "folded duplicate stack",
                  lambda t: t.replace("main;Export 1",
                                      "main;Evaluate;DtwKernel 1"))
    expect_folded(False, "folded empty frame",
                  lambda t: t.replace("main;Export 1", "main;;Export 1"))
    expect_folded(False, "folded empty file", lambda t: "")

    def expect_heap(should_pass, label, mutate=None, want_samples=None):
        text = _valid_heap_folded()
        if mutate:
            text = mutate(text)
        errors = []
        header = check_heap_profile(errors, label, text)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")
        if want_samples is not None and header["samples"] != want_samples:
            failures.append(f"{label}: header samples {header['samples']}, "
                            f"expected {want_samples}")

    expect_heap(True, "valid heap profile", want_samples=5)
    expect_heap(True, "header-only heap profile (idle/NOOP profiler)",
                lambda t: f"# {HEAP_PROFILE_SCHEMA} samples=0 dropped=0"
                          " live_bytes=0 cumulative_bytes=0"
                          " interval_bytes=0\n")
    expect_heap(False, "heap wrong schema",
                lambda t: t.replace(HEAP_PROFILE_SCHEMA,
                                    "tsdist.heapprofile.v9"))
    expect_heap(False, "heap missing header field",
                lambda t: t.replace(" dropped=1", ""))
    expect_heap(False, "heap non-numeric header field",
                lambda t: t.replace("interval_bytes=1024",
                                    "interval_bytes=KiB"))
    expect_heap(False, "heap live exceeds cumulative",
                lambda t: t.replace("main;Export 0 1024",
                                    "main;Export 2048 1024"))
    expect_heap(False, "heap zero cumulative row",
                lambda t: t.replace("main;Export 0 1024", "main;Export 0 0"))
    expect_heap(False, "heap live sum mismatch",
                lambda t: t.replace("live_bytes=3072", "live_bytes=4096"))
    expect_heap(False, "heap cumulative sum mismatch",
                lambda t: t.replace("cumulative_bytes=7168",
                                    "cumulative_bytes=9999"))
    expect_heap(False, "heap ordering violated",
                lambda t: t.replace("main;Export 0 1024",
                                    "main;Export 1536 2048"))
    expect_heap(False, "heap samples=0 with body",
                lambda t: t.replace("samples=5", "samples=0"))
    expect_heap(False, "heap duplicate stack",
                lambda t: t.replace("main;Export 0 1024",
                                    "main;Evaluate;EuclideanKernel 0 1024"))
    expect_heap(False, "heap malformed row",
                lambda t: t.replace("main;Export 0 1024", "main;Export 1024"))
    expect_heap(False, "heap empty frame",
                lambda t: t.replace("main;Export 0 1024",
                                    "main;;Export 0 1024"))
    expect_heap(False, "heap empty file", lambda t: "")

    def expect_lease(should_pass, label, mutate=None, want=None):
        data = _valid_lease()
        if mutate:
            data = mutate(data)
        errors = []
        summary = check_lease(errors, label, data)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")
        for key, value in (want or {}).items():
            if summary[key] != value:
                failures.append(f"{label}: summary {key}={summary[key]!r}, "
                                f"expected {value!r}")

    rec = LEASE_RECORD.size
    expect_lease(True, "valid lease",
                 want={"records": 4, "epoch": 3, "released": True,
                       "worker": "w0", "torn_bytes": 0})
    expect_lease(True, "lease torn tail tolerated",
                 lambda d: d + b"1LST" + b"\x7f" * 9,
                 want={"records": 4, "torn_bytes": 13})
    expect_lease(True, "lease claim only (live holder)",
                 lambda d: d[:rec],
                 want={"records": 1, "released": False})
    expect_lease(False, "lease empty file", lambda d: b"")
    expect_lease(False, "lease all-torn file", lambda d: b"junk" * 20)
    expect_lease(False, "lease first record is a heartbeat",
                 lambda d: _lease_record(2, 3) + d[rec:])
    expect_lease(False, "lease epoch drifts mid-history (fencing)",
                 lambda d: d[:rec] + _lease_record(2, 4) + d[2 * rec:])
    expect_lease(False, "lease record appended after release",
                 lambda d: d + _lease_record(2, 3))
    expect_lease(False, "lease double claim in one file",
                 lambda d: d[:rec] + _lease_record(1, 3) + d[2 * rec:])
    expect_lease(False, "lease corrupt CRC on the claim",
                 lambda d: d[:rec - 1] + bytes([d[rec - 1] ^ 0xFF]) + d[rec:])

    def expect_fleet(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_fleet_health())
        if mutate:
            mutate(doc)
        errors = []
        check_fleet_health(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_fleet(True, "valid fleet health")
    expect_fleet(False, "fleet wrong schema",
                 lambda d: d.update(schema="tsdist.fleethealth.v9"))
    expect_fleet(False, "fleet summary arithmetic broken",
                 lambda d: d["summary"].update(live=2))
    expect_fleet(False, "fleet summary vs array length",
                 lambda d: d["workers"].pop())
    expect_fleet(False, "fleet stale-flag tally mismatch",
                 lambda d: d["workers"][1].update(stale=False))
    expect_fleet(False, "fleet negative age",
                 lambda d: d["workers"][0].update(age_sec=-1.0))
    expect_fleet(False, "fleet non-boolean stale flag",
                 lambda d: d["workers"][0].update(stale=0))
    expect_fleet(False, "fleet empty worker id",
                 lambda d: d["workers"][0].update(worker=""))
    expect_fleet(False, "fleet negative stale_after",
                 lambda d: d.update(stale_after_sec=-5))
    expect_fleet(False, "fleet non-integer shard",
                 lambda d: d["workers"][0].update(shard=1.5))
    expect_fleet(False, "fleet missing trace block",
                 lambda d: d.pop("trace"))
    expect_fleet(False, "fleet spooling exceeds fleet size",
                 lambda d: d["trace"].update(spooling_workers=9))
    expect_fleet(False, "fleet negative spooled spans",
                 lambda d: d["trace"].update(spooled_spans=-1))
    expect_fleet(False, "fleet worker missing spans_spooled",
                 lambda d: d["workers"][0].pop("spans_spooled"))

    def expect_spool(should_pass, label, mutate=None, want=None):
        text = _valid_trace_spool()
        if mutate:
            text = mutate(text)
        errors = []
        summary = check_trace_spool(errors, label, text)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")
        for key, value in (want or {}).items():
            if summary[key] != value:
                failures.append(f"{label}: summary {key}={summary[key]!r}, "
                                f"expected {value!r}")

    expect_spool(True, "valid trace spool",
                 want={"events": 3, "torn_lines": 0, "role": "worker",
                       "worker": "w0", "run_id": "f00dfeedbeefcafe"})
    expect_spool(True, "spool header only (killed before first flush)",
                 lambda t: t.split("\n", 1)[0] + "\n",
                 want={"events": 0, "torn_lines": 0})
    expect_spool(True, "spool torn tail tolerated",
                 lambda t: t + '{"name": "shard.cell/Coff',
                 want={"events": 3, "torn_lines": 1})
    expect_spool(False, "spool empty file", lambda t: "")
    expect_spool(False, "spool torn header (no newline, nothing durable)",
                 lambda t: t.split("\n", 1)[0])
    expect_spool(False, "spool wrong schema",
                 lambda t: t.replace(TRACE_SPOOL_SCHEMA,
                                     "tsdist.tracespool.v9"))
    expect_spool(False, "spool empty run id",
                 lambda t: t.replace('"run_id": "f00dfeedbeefcafe"',
                                     '"run_id": ""'))
    expect_spool(False, "spool zero anchor (no fleet timeline)",
                 lambda t: t.replace('"anchor_wall_us": 1718000000000000',
                                     '"anchor_wall_us": 0'))
    expect_spool(False, "spool mid-file garbage is not a torn tail",
                 lambda t: t.replace(
                     '{"name": "shard.cell/Coffee/euclidean"',
                     'garbage{"name": "shard.cell/Coffee/euclidean"'))
    expect_spool(False, "spool event missing ts_ns",
                 lambda t: t.replace('"ts_ns": 2000, ', ''))
    expect_spool(False, "spool event empty name",
                 lambda t: t.replace('"name": "shard.run"', '"name": ""'))
    expect_spool(False, "spool instant with nonzero duration",
                 lambda t: t.replace('"dur_ns": 0', '"dur_ns": 7'))
    expect_spool(False, "spool bad ph marker",
                 lambda t: t.replace('"ph": "i"', '"ph": "X"'))

    def expect_fleettrace(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_fleet_trace())
        if mutate:
            mutate(doc)
        errors = []
        check_fleet_trace(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect_fleettrace(True, "valid fleet trace")
    expect_fleettrace(False, "fleettrace wrong schema",
                      lambda d: d.update(schema="tsdist.fleettrace.v9"))
    expect_fleettrace(False, "fleettrace zero processes",
                      lambda d: d.update(processes=0, workers=[]))
    expect_fleettrace(False, "fleettrace processes vs workers mismatch",
                      lambda d: d.update(processes=3))
    expect_fleettrace(False, "fleettrace missing torn block",
                      lambda d: d.pop("torn"))
    expect_fleettrace(False, "fleettrace negative makespan",
                      lambda d: d.update(makespan_ms=-1.0))
    expect_fleettrace(False, "fleettrace imbalance out of range",
                      lambda d: d.update(imbalance_pct=120.0))
    expect_fleettrace(False, "fleettrace critical path out of time order",
                      lambda d: d["critical_path"]["segments"]
                      .reverse())
    expect_fleettrace(False, "fleettrace coverage over 100",
                      lambda d: d["critical_path"]
                      .update(coverage_pct=140.0))
    expect_fleettrace(False, "fleettrace worker negative busy",
                      lambda d: d["workers"][0].update(busy_ms=-5.0))
    expect_fleettrace(False, "fleettrace stragglers unsorted",
                      lambda d: d["stragglers"].reverse())
    expect_fleettrace(False, "fleettrace missing shard_events",
                      lambda d: d.pop("shard_events"))

    # Required-case lookup across a suite.
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/evaluate"])
    if errors:
        failures.append(f"require-case present: unexpected errors {errors}")
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/missing"])
    if not errors:
        failures.append("require-case absent: expected an error")

    for message in failures:
        print(f"check_metrics_schema self-test: {message}", file=sys.stderr)
    if failures:
        return 1
    print("check_metrics_schema self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", nargs="?",
                        help="tsdist.metrics.v1 JSON file")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--bench",
                        help="tsdist.bench.v1/v2 BENCH_*.json or suite.json")
    parser.add_argument("--results",
                        help="tsdist.results.v1 per-cell report from "
                             "tsdist_eval --results-json")
    parser.add_argument("--openmetrics",
                        help="OpenMetrics text scraped from the /metrics "
                             "endpoint (tsdist_eval --serve)")
    parser.add_argument("--profile",
                        help="tsdist.profile.v1 collapsed-stack profile "
                             "(--profile-out / /profilez?dump)")
    parser.add_argument("--require-profile-samples", type=int, default=0,
                        metavar="N",
                        help="fail unless the --profile header reports at "
                             "least N samples")
    parser.add_argument("--heap",
                        help="tsdist.heapprofile.v1 collapsed-stack heap "
                             "profile (--heap-profile-out / /heapz?dump)")
    parser.add_argument("--require-heap-samples", type=int, default=0,
                        metavar="N",
                        help="fail unless the --heap header reports at "
                             "least N samples")
    parser.add_argument("--lease", action="append", default=[],
                        metavar="LEASE",
                        help="tsdist.lease.v1 binary shard-lease file "
                             "(repeatable; torn tails are tolerated, "
                             "malformed histories are not)")
    parser.add_argument("--fleet-health",
                        help="tsdist.fleethealth.v1 JSON from /fleetz or a "
                             "worker /healthz fleet block")
    parser.add_argument("--trace-spool", action="append", default=[],
                        metavar="SPOOL",
                        help="tsdist.tracespool.v1 span spool from "
                             "<checkpoint>/trace/ (repeatable; a single "
                             "torn line at EOF is tolerated, anything else "
                             "malformed is not)")
    parser.add_argument("--fleet-trace",
                        help="tsdist.fleettrace.v1 analysis JSON from "
                             "trace_merge --analysis-out")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless this counter exists and is > 0")
    parser.add_argument("--require-gauge", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this gauge is present "
                             "(--openmetrics only)")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram exists with count > 0")
    parser.add_argument("--require-case", action="append", default=[],
                        metavar="BENCH/CASE",
                        help="fail unless the bench/suite doc has this case")
    parser.add_argument("--min-samples", type=int, default=1, metavar="N",
                        help="minimum samples_ms length per v2 case")
    parser.add_argument("--self-test", action="store_true",
                        help="run the validator's built-in self checks")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.metrics and not args.bench and not args.results \
            and not args.openmetrics and not args.profile and not args.heap \
            and not args.lease and not args.fleet_health \
            and not args.trace_spool and not args.fleet_trace:
        parser.error("need a METRICS.json, --bench, --results, "
                     "--openmetrics, --profile, --heap, --lease, "
                     "--fleet-health, --trace-spool, --fleet-trace, or "
                     "--self-test")

    errors = []
    if args.metrics:
        doc = load(errors, args.metrics)
        if doc is not None:
            check_metrics(errors, args.metrics, doc,
                          require_nonzero=args.require_nonzero,
                          require_histogram=args.require_histogram)
    if args.trace:
        trace = load(errors, args.trace)
        if trace is not None:
            check_trace(errors, args.trace, trace)
    if args.bench:
        bench = load(errors, args.bench)
        if bench is not None:
            check_bench(errors, args.bench, bench,
                        min_samples=args.min_samples)
            if args.require_case:
                check_required_cases(errors, args.bench, bench,
                                     args.require_case)
    if args.results:
        results = load(errors, args.results)
        if results is not None:
            check_results(errors, args.results, results)
    if args.openmetrics:
        text = load_text(errors, args.openmetrics)
        if text is not None:
            families = check_openmetrics(errors, args.openmetrics, text)
            for name in args.require_nonzero:
                om = mangle_openmetrics_name(name)
                value = families["counters"].get(om)
                if value is None or value <= 0:
                    _err(errors, args.openmetrics,
                         f"required counter {name!r} ({om!r}) missing or "
                         f"zero (got {value!r})")
            for name in args.require_gauge:
                om = mangle_openmetrics_name(name)
                if om not in families["gauges"]:
                    _err(errors, args.openmetrics,
                         f"required gauge {name!r} ({om!r}) not exposed")
    if args.profile:
        text = load_text(errors, args.profile)
        if text is not None:
            header = check_folded_profile(errors, args.profile, text)
            if header["samples"] < args.require_profile_samples:
                _err(errors, args.profile,
                     f"profile has {header['samples']} samples, required at "
                     f"least {args.require_profile_samples}")
    if args.heap:
        text = load_text(errors, args.heap)
        if text is not None:
            header = check_heap_profile(errors, args.heap, text)
            if header["samples"] < args.require_heap_samples:
                _err(errors, args.heap,
                     f"heap profile has {header['samples']} samples, "
                     f"required at least {args.require_heap_samples}")

    for path in args.lease:
        data = load_bytes(errors, path)
        if data is not None:
            check_lease(errors, path, data)
    if args.fleet_health:
        fleet = load(errors, args.fleet_health)
        if fleet is not None:
            check_fleet_health(errors, args.fleet_health, fleet)
    for path in args.trace_spool:
        text = load_text(errors, path)
        if text is not None:
            check_trace_spool(errors, path, text)
    if args.fleet_trace:
        fleet_trace = load(errors, args.fleet_trace)
        if fleet_trace is not None:
            check_fleet_trace(errors, args.fleet_trace, fleet_trace)

    for message in errors:
        print(f"check_metrics_schema: {message}", file=sys.stderr)
    if errors:
        return 1
    print("check_metrics_schema: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
