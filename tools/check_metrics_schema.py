#!/usr/bin/env python3
"""Validate tsdist observability JSON artifacts.

Checks a metrics dump against the tsdist.metrics.v1 schema, and optionally a
trace file against the Chrome trace-event format and a BENCH_*.json /
suite.json file against the tsdist.bench.v1 or tsdist.bench.v2 schema (v2
adds the run manifest, per-case sample arrays, and the peak-RSS gauge; a v2
"suite" document aggregates several reports). Stdlib only; exits 0 on
success, 1 with one message per violation otherwise.

Also validates tsdist.results.v1 per-cell reports (tsdist_eval
--results-json) via --results: statuses, reasons, accuracy ranges, and the
summary tallies must all be internally consistent.

Usage:
  check_metrics_schema.py [METRICS.json]
      [--trace TRACE.json] [--bench BENCH.json] [--results RESULTS.json]
      [--require-nonzero COUNTER ...] [--require-histogram NAME ...]
      [--require-case BENCH/CASE ...] [--min-samples N]
      [--self-test]
"""

import argparse
import copy
import json
import sys

METRICS_SCHEMA = "tsdist.metrics.v1"
BENCH_SCHEMA_V1 = "tsdist.bench.v1"
BENCH_SCHEMA_V2 = "tsdist.bench.v2"
RESULTS_SCHEMA = "tsdist.results.v1"
RESULT_STATUSES = ("ok", "dnf", "failed", "interrupted")

MANIFEST_STRING_FIELDS = (
    "git_sha", "compiler", "compiler_flags", "build_type", "cpu_model",
    "scale",
)


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_histogram(errors, path, name, hist):
    if not isinstance(hist, dict):
        _err(errors, path, f"histogram {name!r} is not an object")
        return
    for key in ("count", "sum", "min", "max", "buckets"):
        if key not in hist:
            _err(errors, path, f"histogram {name!r} missing field {key!r}")
            return
    for key in ("count", "sum", "min", "max"):
        v = hist[key]
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"histogram {name!r} field {key!r} must be a non-negative "
                 f"integer, got {v!r}")
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        _err(errors, path, f"histogram {name!r} has no bucket list")
        return
    prev_bound = -1
    total = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} must be {{'le', 'count'}}")
            return
        count = bucket["count"]
        if not _is_int(count) or count < 0:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} count must be a "
                 f"non-negative integer, got {count!r}")
            return
        total += count
        le = bucket["le"]
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                _err(errors, path,
                     f"histogram {name!r} last bucket le must be '+Inf', "
                     f"got {le!r}")
        else:
            if not _is_int(le):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} le must be an integer "
                     f"bound, got {le!r}")
                return
            if le <= prev_bound:
                _err(errors, path,
                     f"histogram {name!r} bucket bounds must be strictly "
                     f"increasing ({le} after {prev_bound})")
            prev_bound = le
    if total != hist["count"]:
        _err(errors, path,
             f"histogram {name!r} bucket counts sum to {total} but count "
             f"is {hist['count']}")
    if hist["count"] > 0 and hist["min"] > hist["max"]:
        _err(errors, path, f"histogram {name!r} has min > max")


def check_metrics(errors, path, doc, require_nonzero=(), require_histogram=()):
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        _err(errors, path,
             f"schema must be {METRICS_SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            _err(errors, path, f"missing or non-object section {section!r}")
            return
    for name, value in doc["counters"].items():
        if not _is_int(value) or value < 0:
            _err(errors, path,
                 f"counter {name!r} must be a non-negative integer, "
                 f"got {value!r}")
    for name, value in doc["gauges"].items():
        if not _is_num(value):
            _err(errors, path, f"gauge {name!r} must be a number, got {value!r}")
    for name, hist in doc["histograms"].items():
        check_histogram(errors, path, name, hist)
    for name in require_nonzero:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            _err(errors, path,
                 f"required counter {name!r} missing or zero (got {value!r})")
    for name in require_histogram:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            _err(errors, path,
                 f"required histogram {name!r} missing or empty")


def check_trace(errors, path, doc):
    if not isinstance(doc, list):
        _err(errors, path, "trace must be a JSON array of event objects")
        return
    if not doc:
        _err(errors, path, "trace contains no events")
        return
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            _err(errors, path, f"event {i} is not an object")
            return
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                _err(errors, path, f"event {i} missing field {key!r}")
                return
        if not isinstance(event["name"], str):
            _err(errors, path, f"event {i} name must be a string")
        if not isinstance(event["ph"], str):
            _err(errors, path, f"event {i} ph must be a string")
        for key in ("ts", "pid", "tid"):
            if not _is_num(event[key]):
                _err(errors, path, f"event {i} {key!r} must be a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not _is_num(dur) or dur < 0:
                _err(errors, path,
                     f"complete event {i} needs a non-negative 'dur', "
                     f"got {dur!r}")


def check_manifest(errors, path, manifest):
    if not isinstance(manifest, dict):
        _err(errors, path, "manifest must be an object")
        return
    if manifest.get("schema_version") != 2:
        _err(errors, path,
             f"manifest schema_version must be 2, "
             f"got {manifest.get('schema_version')!r}")
    for key in MANIFEST_STRING_FIELDS:
        v = manifest.get(key)
        if not isinstance(v, str):
            _err(errors, path, f"manifest field {key!r} must be a string, "
                               f"got {v!r}")
        elif key == "git_sha" and not v:
            _err(errors, path, "manifest git_sha is empty")
    if not isinstance(manifest.get("git_dirty"), bool):
        _err(errors, path, "manifest git_dirty must be a boolean")
    cores = manifest.get("cpu_cores")
    if not _is_int(cores) or cores <= 0:
        _err(errors, path,
             f"manifest cpu_cores must be a positive integer, got {cores!r}")
    for key in ("threads", "rng_seed"):
        v = manifest.get(key)
        if not _is_int(v) or v < 0:
            _err(errors, path,
                 f"manifest field {key!r} must be a non-negative integer, "
                 f"got {v!r}")


def check_case(errors, path, i, case, min_samples=1):
    if not isinstance(case, dict):
        _err(errors, path, f"case {i} is not an object")
        return
    name = case.get("name")
    if not isinstance(name, str) or not name:
        _err(errors, path, f"case {i} needs a non-empty 'name'")
        name = f"#{i}"
    warmup = case.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"case {name!r} warmup must be a non-negative integer, "
             f"got {warmup!r}")
    samples = case.get("samples_ms")
    if not isinstance(samples, list) or not samples:
        _err(errors, path, f"case {name!r} needs a non-empty samples_ms array")
        return
    for s in samples:
        if not _is_num(s) or s < 0:
            _err(errors, path,
                 f"case {name!r} has a non-numeric/negative sample: {s!r}")
            return
    if case.get("iters") != len(samples):
        _err(errors, path,
             f"case {name!r} iters ({case.get('iters')!r}) != "
             f"len(samples_ms) ({len(samples)})")
    if len(samples) < min_samples:
        _err(errors, path,
             f"case {name!r} has {len(samples)} samples, "
             f"expected at least {min_samples}")
    for key in ("min_ms", "median_ms", "p90_ms", "mean_ms"):
        v = case.get(key)
        if not _is_num(v) or v < 0:
            _err(errors, path,
                 f"case {name!r} field {key!r} must be a non-negative "
                 f"number, got {v!r}")
            return
    if case["min_ms"] > case["median_ms"] or case["median_ms"] > case["p90_ms"]:
        _err(errors, path,
             f"case {name!r} summary ordering violated: expected "
             f"min <= median <= p90")
    if abs(case["min_ms"] - min(samples)) > 1e-3:
        _err(errors, path,
             f"case {name!r} min_ms does not match min(samples_ms)")


def check_bench_v2(errors, path, doc, min_samples=1):
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "field 'bench' must be a non-empty string")
    if not isinstance(doc.get("scale"), str):
        _err(errors, path, "field 'scale' must be a string")
    threads = doc.get("threads")
    if not _is_int(threads) or threads < 0:
        _err(errors, path,
             f"field 'threads' must be a non-negative integer, got {threads!r}")
    wall = doc.get("wall_ms")
    if not _is_num(wall) or wall < 0:
        _err(errors, path,
             f"field 'wall_ms' must be a non-negative number, got {wall!r}")
    if "manifest" not in doc:
        _err(errors, path, "v2 report missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    rss = doc.get("peak_rss_bytes")
    if not _is_int(rss) or rss < 0:
        _err(errors, path,
             f"field 'peak_rss_bytes' must be a non-negative integer, "
             f"got {rss!r}")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        _err(errors, path, "v2 report needs a non-empty 'cases' array")
    else:
        for i, case in enumerate(cases):
            check_case(errors, path, i, case, min_samples=min_samples)
    if "metrics" not in doc:
        _err(errors, path, "missing embedded 'metrics' object")
    else:
        check_metrics(errors, f"{path}#metrics", doc["metrics"])


def check_suite(errors, path, doc, min_samples=1):
    for key in ("suite", "scale"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            _err(errors, path, f"suite field {key!r} must be a non-empty string")
    repeat = doc.get("repeat")
    if not _is_int(repeat) or repeat < 1:
        _err(errors, path,
             f"suite 'repeat' must be a positive integer, got {repeat!r}")
    warmup = doc.get("warmup")
    if not _is_int(warmup) or warmup < 0:
        _err(errors, path,
             f"suite 'warmup' must be a non-negative integer, got {warmup!r}")
    if "manifest" not in doc:
        _err(errors, path, "suite missing 'manifest'")
    else:
        check_manifest(errors, f"{path}#manifest", doc["manifest"])
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        _err(errors, path, "suite needs a non-empty 'benches' array")
        return
    for i, report in enumerate(benches):
        sub = f"{path}#benches[{i}]"
        if not isinstance(report, dict):
            _err(errors, sub, "bench entry is not an object")
            continue
        if report.get("schema") != BENCH_SCHEMA_V2:
            _err(errors, sub,
                 f"embedded report schema must be {BENCH_SCHEMA_V2!r}, "
                 f"got {report.get('schema')!r}")
            continue
        check_bench_v2(errors, sub, report, min_samples=min_samples)


def check_bench(errors, path, doc, min_samples=1):
    """Dispatches on schema: v1 report, v2 report, or v2 suite."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    schema = doc.get("schema")
    if schema == BENCH_SCHEMA_V1:
        if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
            _err(errors, path, "field 'bench' must be a non-empty string")
        wall = doc.get("wall_ms")
        if not _is_num(wall) or wall < 0:
            _err(errors, path,
                 f"field 'wall_ms' must be a non-negative number, got {wall!r}")
        if "metrics" not in doc:
            _err(errors, path, "missing embedded 'metrics' object")
        else:
            check_metrics(errors, f"{path}#metrics", doc["metrics"])
    elif schema == BENCH_SCHEMA_V2:
        if doc.get("kind") == "suite":
            check_suite(errors, path, doc, min_samples=min_samples)
        else:
            check_bench_v2(errors, path, doc, min_samples=min_samples)
    else:
        _err(errors, path,
             f"schema must be {BENCH_SCHEMA_V1!r} or {BENCH_SCHEMA_V2!r}, "
             f"got {schema!r}")


def check_results(errors, path, doc):
    """tsdist.results.v1: tsdist_eval's per-cell status report."""
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != RESULTS_SCHEMA:
        _err(errors, path,
             f"schema must be {RESULTS_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("supervised", "pruned"):
        if not isinstance(doc.get(key), bool):
            _err(errors, path, f"field {key!r} must be a boolean")
    if not isinstance(doc.get("norm"), str) or not doc.get("norm"):
        _err(errors, path, "field 'norm' must be a non-empty string")
    budget = doc.get("budget_sec")
    if not _is_num(budget) or budget < 0:
        _err(errors, path,
             f"field 'budget_sec' must be a non-negative number, got {budget!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        _err(errors, path, "field 'cells' must be an array")
        return
    tallies = {status: 0 for status in RESULT_STATUSES}
    resumed = 0
    for i, cell in enumerate(cells):
        sub = f"cell {i}"
        if not isinstance(cell, dict):
            _err(errors, path, f"{sub} is not an object")
            return
        for key in ("dataset", "measure"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                _err(errors, path, f"{sub} field {key!r} must be a non-empty "
                                   f"string")
        for key in ("params", "reason"):
            if not isinstance(cell.get(key), str):
                _err(errors, path, f"{sub} field {key!r} must be a string")
        status = cell.get("status")
        if status not in RESULT_STATUSES:
            _err(errors, path,
                 f"{sub} status must be one of {RESULT_STATUSES}, "
                 f"got {status!r}")
            continue
        tallies[status] += 1
        if status != "ok" and not cell.get("reason"):
            _err(errors, path, f"{sub} has status {status!r} but no reason")
        for key in ("train_accuracy", "test_accuracy"):
            v = cell.get(key)
            if not _is_num(v):
                _err(errors, path, f"{sub} field {key!r} must be a number, "
                                   f"got {v!r}")
            elif status == "ok" and not 0.0 <= v <= 1.0:
                _err(errors, path,
                     f"{sub} is ok but {key!r} is outside [0, 1]: {v!r}")
        if not isinstance(cell.get("resumed"), bool):
            _err(errors, path, f"{sub} field 'resumed' must be a boolean")
        elif cell["resumed"]:
            resumed += 1
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        _err(errors, path, "field 'summary' must be an object")
        return
    expected = dict(tallies, total=len(cells), resumed=resumed)
    for key, want in sorted(expected.items()):
        got = summary.get(key)
        if not _is_int(got) or got < 0:
            _err(errors, path,
                 f"summary field {key!r} must be a non-negative integer, "
                 f"got {got!r}")
        elif got != want:
            _err(errors, path,
                 f"summary {key!r} is {got} but the cells tally to {want}")


def check_required_cases(errors, path, doc, required):
    """--require-case BENCH/CASE entries must exist in the bench/suite doc."""
    present = set()
    reports = doc.get("benches", [doc]) if isinstance(doc, dict) else []
    for report in reports:
        if not isinstance(report, dict):
            continue
        bench = report.get("bench", "?")
        for case in report.get("cases", []) or []:
            if isinstance(case, dict):
                present.add(f"{bench}/{case.get('name')}")
    for want in required:
        if want not in present:
            _err(errors, path, f"required case {want!r} not found")


def load(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _err(errors, path, f"invalid JSON: {exc}")
    return None


# --- self test ------------------------------------------------------------

def _valid_metrics():
    return {
        "schema": METRICS_SCHEMA,
        "counters": {"tsdist.pool.tasks": 12},
        "gauges": {"tsdist.proc.peak_rss_bytes": 1048576.0},
        "histograms": {
            "tsdist.pairwise.row_ns.euclidean": {
                "count": 2, "sum": 30, "min": 10, "max": 20,
                "buckets": [{"le": 16, "count": 1}, {"le": "+Inf", "count": 1}],
            },
        },
    }


def _valid_manifest():
    return {
        "schema_version": 2, "git_sha": "deadbeef", "git_dirty": False,
        "compiler": "GNU 13.2.0", "compiler_flags": "-O2", "build_type":
        "Release", "cpu_model": "test cpu", "cpu_cores": 8, "threads": 4,
        "rng_seed": 20200614, "scale": "tiny",
    }


def _valid_report():
    return {
        "schema": BENCH_SCHEMA_V2, "bench": "bench_x", "scale": "tiny",
        "threads": 4, "wall_ms": 12.5, "manifest": _valid_manifest(),
        "peak_rss_bytes": 1048576,
        "cases": [{
            "name": "evaluate", "warmup": 1, "iters": 3,
            "samples_ms": [4.0, 3.5, 5.0],
            "min_ms": 3.5, "median_ms": 4.0, "p90_ms": 5.0, "mean_ms": 4.1667,
        }],
        "metrics": _valid_metrics(),
    }


def _valid_suite():
    return {
        "schema": BENCH_SCHEMA_V2, "kind": "suite", "suite": "smoke",
        "scale": "tiny", "repeat": 3, "warmup": 1,
        "manifest": _valid_manifest(), "benches": [_valid_report()],
    }


def _valid_results():
    return {
        "schema": RESULTS_SCHEMA, "supervised": True, "pruned": False,
        "norm": "zscore", "budget_sec": 600.0,
        "summary": {"total": 2, "ok": 1, "failed": 0, "dnf": 1,
                    "interrupted": 0, "resumed": 1},
        "cells": [
            {"dataset": "CBF", "measure": "dtw", "params": "delta=9",
             "status": "ok", "reason": "", "train_accuracy": 0.9,
             "test_accuracy": 1.0, "resumed": True},
            {"dataset": "CBF", "measure": "msm", "params": "",
             "status": "dnf", "reason": "dnf: LOOCV matrix cancelled",
             "train_accuracy": 0.0, "test_accuracy": 0.0, "resumed": False},
        ],
    }


def self_test():
    failures = []

    def expect(doc, should_pass, label, mutate=None, min_samples=1):
        doc = copy.deepcopy(doc)
        if mutate:
            mutate(doc)
        errors = []
        check_bench(errors, label, doc, min_samples=min_samples)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    def expect_results(should_pass, label, mutate=None):
        doc = copy.deepcopy(_valid_results())
        if mutate:
            mutate(doc)
        errors = []
        check_results(errors, label, doc)
        if should_pass and errors:
            failures.append(f"{label}: expected clean, got {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: expected errors, got none")

    expect(_valid_report(), True, "valid v2 report")
    expect(_valid_suite(), True, "valid v2 suite")
    expect({"schema": BENCH_SCHEMA_V1, "bench": "x", "wall_ms": 1.0,
            "metrics": _valid_metrics()}, True, "valid v1 report")

    expect(_valid_report(), False, "bad schema string",
           lambda d: d.update(schema="tsdist.bench.v3"))
    expect(_valid_report(), False, "missing manifest",
           lambda d: d.pop("manifest"))
    expect(_valid_report(), False, "empty git sha",
           lambda d: d["manifest"].update(git_sha=""))
    expect(_valid_report(), False, "manifest wrong version",
           lambda d: d["manifest"].update(schema_version=1))
    expect(_valid_report(), False, "iters mismatch",
           lambda d: d["cases"][0].update(iters=7))
    expect(_valid_report(), False, "negative sample",
           lambda d: d["cases"][0]["samples_ms"].__setitem__(0, -1.0))
    expect(_valid_report(), False, "missing peak rss",
           lambda d: d.pop("peak_rss_bytes"))
    expect(_valid_report(), False, "empty cases",
           lambda d: d.update(cases=[]))
    expect(_valid_report(), False, "summary ordering",
           lambda d: d["cases"][0].update(median_ms=100.0))
    expect(_valid_report(), False, "too few samples", min_samples=5)
    expect(_valid_report(), True, "enough samples", min_samples=3)
    expect(_valid_suite(), False, "suite zero repeat",
           lambda d: d.update(repeat=0))
    expect(_valid_suite(), False, "suite v1 embedded",
           lambda d: d["benches"][0].update(schema=BENCH_SCHEMA_V1))
    expect(_valid_report(), False, "broken embedded metrics",
           lambda d: d["metrics"].update(schema="bogus"))

    expect_results(True, "valid results report")
    expect_results(False, "results bad schema",
                   lambda d: d.update(schema="tsdist.results.v2"))
    expect_results(False, "results unknown status",
                   lambda d: d["cells"][0].update(status="maybe"))
    expect_results(False, "results dnf without reason",
                   lambda d: d["cells"][1].update(reason=""))
    expect_results(False, "results summary tally mismatch",
                   lambda d: d["summary"].update(ok=2, dnf=0))
    expect_results(False, "results resumed tally mismatch",
                   lambda d: d["summary"].update(resumed=0))
    expect_results(False, "results ok accuracy out of range",
                   lambda d: d["cells"][0].update(test_accuracy=1.5))
    expect_results(False, "results non-numeric accuracy",
                   lambda d: d["cells"][0].update(train_accuracy="high"))
    expect_results(False, "results missing dataset",
                   lambda d: d["cells"][0].update(dataset=""))
    expect_results(False, "results negative budget",
                   lambda d: d.update(budget_sec=-1.0))

    # Required-case lookup across a suite.
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/evaluate"])
    if errors:
        failures.append(f"require-case present: unexpected errors {errors}")
    errors = []
    check_required_cases(errors, "suite", _valid_suite(), ["bench_x/missing"])
    if not errors:
        failures.append("require-case absent: expected an error")

    for message in failures:
        print(f"check_metrics_schema self-test: {message}", file=sys.stderr)
    if failures:
        return 1
    print("check_metrics_schema self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", nargs="?",
                        help="tsdist.metrics.v1 JSON file")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--bench",
                        help="tsdist.bench.v1/v2 BENCH_*.json or suite.json")
    parser.add_argument("--results",
                        help="tsdist.results.v1 per-cell report from "
                             "tsdist_eval --results-json")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless this counter exists and is > 0")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram exists with count > 0")
    parser.add_argument("--require-case", action="append", default=[],
                        metavar="BENCH/CASE",
                        help="fail unless the bench/suite doc has this case")
    parser.add_argument("--min-samples", type=int, default=1, metavar="N",
                        help="minimum samples_ms length per v2 case")
    parser.add_argument("--self-test", action="store_true",
                        help="run the validator's built-in self checks")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.metrics and not args.bench and not args.results:
        parser.error("need a METRICS.json, --bench, --results, or --self-test")

    errors = []
    if args.metrics:
        doc = load(errors, args.metrics)
        if doc is not None:
            check_metrics(errors, args.metrics, doc,
                          require_nonzero=args.require_nonzero,
                          require_histogram=args.require_histogram)
    if args.trace:
        trace = load(errors, args.trace)
        if trace is not None:
            check_trace(errors, args.trace, trace)
    if args.bench:
        bench = load(errors, args.bench)
        if bench is not None:
            check_bench(errors, args.bench, bench,
                        min_samples=args.min_samples)
            if args.require_case:
                check_required_cases(errors, args.bench, bench,
                                     args.require_case)
    if args.results:
        results = load(errors, args.results)
        if results is not None:
            check_results(errors, args.results, results)

    for message in errors:
        print(f"check_metrics_schema: {message}", file=sys.stderr)
    if errors:
        return 1
    print("check_metrics_schema: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
