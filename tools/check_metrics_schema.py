#!/usr/bin/env python3
"""Validate tsdist observability JSON artifacts.

Checks a metrics dump against the tsdist.metrics.v1 schema, and optionally a
trace file against the Chrome trace-event format and a BENCH_*.json file
against the tsdist.bench.v1 schema. Stdlib only; exits 0 on success, 1 with
one message per violation otherwise.

Usage:
  check_metrics_schema.py METRICS.json
      [--trace TRACE.json] [--bench BENCH.json]
      [--require-nonzero COUNTER ...] [--require-histogram NAME ...]
"""

import argparse
import json
import sys

METRICS_SCHEMA = "tsdist.metrics.v1"
BENCH_SCHEMA = "tsdist.bench.v1"


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def check_histogram(errors, path, name, hist):
    if not isinstance(hist, dict):
        _err(errors, path, f"histogram {name!r} is not an object")
        return
    for key in ("count", "sum", "min", "max", "buckets"):
        if key not in hist:
            _err(errors, path, f"histogram {name!r} missing field {key!r}")
            return
    for key in ("count", "sum", "min", "max"):
        v = hist[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            _err(errors, path,
                 f"histogram {name!r} field {key!r} must be a non-negative "
                 f"integer, got {v!r}")
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        _err(errors, path, f"histogram {name!r} has no bucket list")
        return
    prev_bound = -1
    total = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} must be {{'le', 'count'}}")
            return
        count = bucket["count"]
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            _err(errors, path,
                 f"histogram {name!r} bucket {i} count must be a "
                 f"non-negative integer, got {count!r}")
            return
        total += count
        le = bucket["le"]
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                _err(errors, path,
                     f"histogram {name!r} last bucket le must be '+Inf', "
                     f"got {le!r}")
        else:
            if not isinstance(le, int) or isinstance(le, bool):
                _err(errors, path,
                     f"histogram {name!r} bucket {i} le must be an integer "
                     f"bound, got {le!r}")
                return
            if le <= prev_bound:
                _err(errors, path,
                     f"histogram {name!r} bucket bounds must be strictly "
                     f"increasing ({le} after {prev_bound})")
            prev_bound = le
    if total != hist["count"]:
        _err(errors, path,
             f"histogram {name!r} bucket counts sum to {total} but count "
             f"is {hist['count']}")
    if hist["count"] > 0 and hist["min"] > hist["max"]:
        _err(errors, path, f"histogram {name!r} has min > max")


def check_metrics(errors, path, doc, require_nonzero=(), require_histogram=()):
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != METRICS_SCHEMA:
        _err(errors, path,
             f"schema must be {METRICS_SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            _err(errors, path, f"missing or non-object section {section!r}")
            return
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _err(errors, path,
                 f"counter {name!r} must be a non-negative integer, "
                 f"got {value!r}")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _err(errors, path, f"gauge {name!r} must be a number, got {value!r}")
    for name, hist in doc["histograms"].items():
        check_histogram(errors, path, name, hist)
    for name in require_nonzero:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            _err(errors, path,
                 f"required counter {name!r} missing or zero (got {value!r})")
    for name in require_histogram:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            _err(errors, path,
                 f"required histogram {name!r} missing or empty")


def check_trace(errors, path, doc):
    if not isinstance(doc, list):
        _err(errors, path, "trace must be a JSON array of event objects")
        return
    if not doc:
        _err(errors, path, "trace contains no events")
        return
    for i, event in enumerate(doc):
        if not isinstance(event, dict):
            _err(errors, path, f"event {i} is not an object")
            return
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                _err(errors, path, f"event {i} missing field {key!r}")
                return
        if not isinstance(event["name"], str):
            _err(errors, path, f"event {i} name must be a string")
        if not isinstance(event["ph"], str):
            _err(errors, path, f"event {i} ph must be a string")
        for key in ("ts", "pid", "tid"):
            if not isinstance(event[key], (int, float)) or isinstance(event[key], bool):
                _err(errors, path, f"event {i} {key!r} must be a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                _err(errors, path,
                     f"complete event {i} needs a non-negative 'dur', "
                     f"got {dur!r}")


def check_bench(errors, path, doc):
    if not isinstance(doc, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if doc.get("schema") != BENCH_SCHEMA:
        _err(errors, path,
             f"schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "field 'bench' must be a non-empty string")
    wall = doc.get("wall_ms")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
        _err(errors, path, f"field 'wall_ms' must be a non-negative number, got {wall!r}")
    if "metrics" not in doc:
        _err(errors, path, "missing embedded 'metrics' object")
    else:
        check_metrics(errors, f"{path}#metrics", doc["metrics"])


def load(errors, path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        _err(errors, path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _err(errors, path, f"invalid JSON: {exc}")
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="tsdist.metrics.v1 JSON file")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--bench", help="tsdist.bench.v1 BENCH_*.json file")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless this counter exists and is > 0")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this histogram exists with count > 0")
    args = parser.parse_args(argv)

    errors = []
    doc = load(errors, args.metrics)
    if doc is not None:
        check_metrics(errors, args.metrics, doc,
                      require_nonzero=args.require_nonzero,
                      require_histogram=args.require_histogram)
    if args.trace:
        trace = load(errors, args.trace)
        if trace is not None:
            check_trace(errors, args.trace, trace)
    if args.bench:
        bench = load(errors, args.bench)
        if bench is not None:
            check_bench(errors, args.bench, bench)

    for message in errors:
        print(f"check_metrics_schema: {message}", file=sys.stderr)
    if errors:
        return 1
    print("check_metrics_schema: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
