#!/usr/bin/env python3
"""End-to-end check of the bench_compare regression gate.

Synthesizes a baseline suite and two candidate suites — one identical, one
with a case slowed well past the gate threshold — then runs the real
bench_compare binary against them and checks the exit codes:

  identical vs baseline  -> exit 0 (no regression)
  slowed    vs baseline  -> exit 1 (regression detected)
  slowed + --warn-only   -> exit 0 (reported but not fatal)

Usage: bench_compare_selftest.py /path/to/bench_compare [workdir]
"""

import copy
import json
import os
import subprocess
import sys
import tempfile


def make_suite(samples_by_case):
    benches = []
    for bench, cases in samples_by_case.items():
        case_list = []
        for name, samples in cases.items():
            ordered = sorted(samples)
            n = len(ordered)
            median = (ordered[n // 2] if n % 2
                      else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2]))
            case_list.append({
                "name": name, "warmup": 0, "iters": n, "samples_ms": samples,
                "min_ms": ordered[0], "median_ms": median,
                "p90_ms": ordered[min(n - 1, int(0.9 * n))],
                "mean_ms": sum(samples) / n,
            })
        benches.append({
            "schema": "tsdist.bench.v2", "bench": bench, "scale": "tiny",
            "threads": 1, "wall_ms": 1.0,
            "manifest": {
                "schema_version": 2, "git_sha": "selftest", "git_dirty": False,
                "compiler": "selftest", "compiler_flags": "", "build_type":
                "Release", "cpu_model": "selftest", "cpu_cores": 1,
                "threads": 1, "rng_seed": 20200614, "scale": "tiny",
            },
            "peak_rss_bytes": 1,
            "cases": case_list,
            "metrics": {"schema": "tsdist.metrics.v1", "counters": {},
                        "gauges": {}, "histograms": {}},
        })
    return {
        "schema": "tsdist.bench.v2", "kind": "suite", "suite": "selftest",
        "scale": "tiny", "repeat": 6, "warmup": 0,
        "manifest": benches[0]["manifest"], "benches": benches,
    }


def main():
    if len(sys.argv) < 2:
        print("usage: bench_compare_selftest.py BENCH_COMPARE [WORKDIR]",
              file=sys.stderr)
        return 2
    binary = sys.argv[1]
    workdir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp()
    os.makedirs(workdir, exist_ok=True)

    # Six samples per case: enough for the Wilcoxon arm of the gate to fire.
    base_samples = {"bench_a": {"fast": [10.0, 10.2, 9.8, 10.1, 9.9, 10.0],
                                "steady": [5.0, 5.1, 4.9, 5.0, 5.2, 4.8]}}
    baseline = make_suite(base_samples)

    slowed_samples = copy.deepcopy(base_samples)
    slowed_samples["bench_a"]["fast"] = [
        2.0 * s for s in base_samples["bench_a"]["fast"]]  # +100% median
    slowed = make_suite(slowed_samples)

    paths = {}
    for name, doc in (("baseline", baseline), ("identical", baseline),
                      ("slowed", slowed)):
        paths[name] = os.path.join(workdir, f"{name}.json")
        with open(paths[name], "w", encoding="utf-8") as fh:
            json.dump(doc, fh)

    def run(*args):
        proc = subprocess.run([binary, *args], capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr

    failures = []

    rc, out = run(paths["identical"], paths["baseline"])
    if rc != 0:
        failures.append(f"identical suite: expected exit 0, got {rc}\n{out}")

    rc, out = run(paths["slowed"], paths["baseline"])
    if rc != 1:
        failures.append(f"slowed suite: expected exit 1, got {rc}\n{out}")
    elif "REGRESSED" not in out:
        failures.append(f"slowed suite: no REGRESSED verdict in output\n{out}")

    rc, out = run(paths["slowed"], paths["baseline"], "--warn-only")
    if rc != 0:
        failures.append(f"warn-only: expected exit 0, got {rc}\n{out}")

    # A huge threshold waves the same slowdown through.
    rc, out = run(paths["slowed"], paths["baseline"],
                  "--max-regress-pct", "500")
    if rc != 0:
        failures.append(f"loose threshold: expected exit 0, got {rc}\n{out}")

    for message in failures:
        print(f"bench_compare_selftest: {message}", file=sys.stderr)
    if failures:
        return 1
    print("bench_compare_selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
