// Perf-regression gate: diffs a tsdist.bench.v2 suite against a checked-in
// baseline suite (bench/baselines/).
//
//   bench_compare new_suite.json baseline.json [--max-regress-pct 10]
//                 [--alpha 0.05] [--warn-only]
//
// A case REGRESSES only when BOTH hold:
//   1. its median slows down by more than --max-regress-pct, and
//   2. the slowdown is statistically significant: Wilcoxon signed-rank over
//      the index-paired samples rejects "no difference" at --alpha (the
//      same test the paper uses for accuracy comparisons, src/stats/).
// With fewer than 6 paired samples the two-sided Wilcoxon p-value cannot
// drop below ~0.06, so the significance arm can never fire; such cases fall
// back to a gross-only rule — fail when the median regresses by more than
// max(--max-regress-pct, 50%). Run --repeat >= 6 for the full gate.
//
// Exit codes: 0 clean (or --warn-only), 1 at least one regression, 2 usage
// or file errors. Cases present in only one suite are listed but never
// fail the gate (bench subsets evolve).
//
// When both suites carry per-case PMU perf blocks, the tool additionally
// warns (never gates) on IPC divergence beyond 20% or a counter
// running/enabled ratio below 0.9 — both signs that the two runs are not
// directly comparable.
//
// Memory is watched at the same informational tier: a case whose
// surrounding report peak RSS or summed memory_attribution alloc_bytes
// grows beyond --max-mem-grow-pct (default 20%) vs the baseline gets a
// warning, never an exit-code change.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/runinfo.h"
#include "src/stats/wilcoxon.h"

namespace {

using tsdist::obs::JsonValue;

// Smallest paired-sample count where a two-sided Wilcoxon signed-rank test
// can reject at alpha = 0.05 (p = 2/2^6 = 0.03125).
constexpr std::size_t kMinSamplesForWilcoxon = 6;

// Below kMinSamplesForWilcoxon, only gross regressions (median slowdown
// beyond max(threshold, this)) fail — single-sample timing noise routinely
// hits tens of percent.
constexpr double kGrossRegressPct = 50.0;

// An IPC shift this large between baseline and candidate usually means the
// two suites ran on different machines (or one under heavy multiplexing) —
// the wall-clock comparison is then suspect, so say so out loud.
constexpr double kIpcDivergencePct = 20.0;

// Counter multiplexing below this running/enabled ratio makes the scaled
// PMU numbers unreliable.
constexpr double kMinRunningRatio = 0.9;

// Default --max-mem-grow-pct: memory growth beyond this (peak RSS or
// attributed alloc_bytes) earns an informational warning.
constexpr double kDefaultMemGrowPct = 20.0;

struct CaseSamples {
  std::vector<double> samples_ms;
  double median_ms = 0.0;
  bool has_perf = false;  // the report carried a per-case perf block
  double ipc = 0.0;
  double running_ratio = 1.0;
  // Memory signals: the enclosing report's peak RSS (process-wide, repeated
  // onto each of its cases) and this case's memory_attribution alloc_bytes
  // summed over labels. Zero = absent from the report.
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t alloc_bytes = 0;
};

struct Options {
  std::string new_path;
  std::string baseline_path;
  double max_regress_pct = 10.0;
  double alpha = 0.05;
  double max_mem_grow_pct = kDefaultMemGrowPct;
  bool warn_only = false;
};

// Flattens a suite (or a single bench report) into "bench/case" -> samples.
std::map<std::string, CaseSamples> CollectCases(const JsonValue& doc,
                                                const std::string& path) {
  std::map<std::string, CaseSamples> out;
  std::vector<const JsonValue*> reports;
  if (const JsonValue* benches = doc.Find("benches")) {
    for (const JsonValue& b : benches->AsArray()) reports.push_back(&b);
  } else if (doc.Find("cases") != nullptr) {
    reports.push_back(&doc);
  } else {
    throw std::runtime_error(path + ": neither a suite nor a bench report");
  }
  for (const JsonValue* report : reports) {
    const std::string bench = report->GetString("bench", "?");
    const JsonValue* cases = report->Find("cases");
    if (cases == nullptr) continue;
    for (const JsonValue& c : cases->AsArray()) {
      CaseSamples entry;
      if (const JsonValue* samples = c.Find("samples_ms")) {
        for (const JsonValue& s : samples->AsArray()) {
          entry.samples_ms.push_back(s.AsDouble());
        }
      }
      entry.median_ms =
          c.GetDouble("median_ms", tsdist::obs::SampleMedian(entry.samples_ms));
      if (const JsonValue* perf = c.Find("perf")) {
        entry.has_perf = true;
        entry.ipc = perf->GetDouble("ipc", 0.0);
        entry.running_ratio = perf->GetDouble("running_ratio", 1.0);
      }
      entry.peak_rss_bytes = static_cast<std::uint64_t>(
          report->GetDouble("peak_rss_bytes", 0.0));
      if (const JsonValue* mem = c.Find("memory_attribution")) {
        for (const auto& [label, stats] : mem->AsObject()) {
          (void)label;
          entry.alloc_bytes += static_cast<std::uint64_t>(
              stats.GetDouble("alloc_bytes", 0.0));
        }
      }
      out[bench + "/" + c.GetString("name", "?")] = std::move(entry);
    }
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_compare: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--max-regress-pct") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->max_regress_pct = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->alpha = std::atof(v);
    } else if (arg == "--max-mem-grow-pct") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->max_mem_grow_pct = std::atof(v);
    } else if (arg == "--warn-only") {
      opt->warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_compare: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "bench_compare: need <new_suite.json> <baseline.json>\n";
    return false;
  }
  opt->new_path = positional[0];
  opt->baseline_path = positional[1];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    std::cerr << "usage: bench_compare <new_suite.json> <baseline.json>\n"
                 "       [--max-regress-pct P] [--alpha A]\n"
                 "       [--max-mem-grow-pct P] [--warn-only]\n";
    return 2;
  }

  std::map<std::string, CaseSamples> fresh, base;
  try {
    fresh = CollectCases(tsdist::obs::ParseJsonFile(opt.new_path),
                         opt.new_path);
    base = CollectCases(tsdist::obs::ParseJsonFile(opt.baseline_path),
                        opt.baseline_path);
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }

  std::printf("bench_compare: %s vs baseline %s\n", opt.new_path.c_str(),
              opt.baseline_path.c_str());
  std::printf("gate: median regress > %.1f%% AND Wilcoxon p < %.3g "
              "(n >= %zu), else gross > %.0f%%\n",
              opt.max_regress_pct, opt.alpha, kMinSamplesForWilcoxon,
              std::max(opt.max_regress_pct, kGrossRegressPct));
  std::printf("%-48s %4s %12s %12s %9s %9s  %s\n", "case", "n", "base(ms)",
              "new(ms)", "delta%", "p", "verdict");

  int regressions = 0;
  int perf_warnings = 0;
  int mem_warnings = 0;
  for (const auto& [key, new_case] : fresh) {
    const auto it = base.find(key);
    if (it == base.end()) {
      std::printf("%-48s %4zu %12s %12.3f %9s %9s  new case\n", key.c_str(),
                  new_case.samples_ms.size(), "-", new_case.median_ms, "-",
                  "-");
      continue;
    }
    const CaseSamples& old_case = it->second;
    const double old_med = old_case.median_ms;
    const double new_med = new_case.median_ms;
    const double delta_pct =
        old_med > 0.0 ? 100.0 * (new_med - old_med) / old_med : 0.0;

    const std::size_t n =
        std::min(new_case.samples_ms.size(), old_case.samples_ms.size());
    double p = 1.0;
    bool significant = false;
    if (n >= kMinSamplesForWilcoxon) {
      // Index-paired: sample i of the new run against sample i of the
      // baseline. Iterations are identically configured, so pairing by
      // index is the natural blocking.
      std::vector<double> a(new_case.samples_ms.begin(),
                            new_case.samples_ms.begin() +
                                static_cast<std::ptrdiff_t>(n));
      std::vector<double> b(old_case.samples_ms.begin(),
                            old_case.samples_ms.begin() +
                                static_cast<std::ptrdiff_t>(n));
      const tsdist::WilcoxonResult w = tsdist::WilcoxonSignedRank(a, b);
      p = w.p_value;
      // One-directional reading: significant AND the rank mass says the new
      // samples are larger (slower).
      significant = w.p_value < opt.alpha && w.w_plus > w.w_minus;
    }

    const bool over_threshold = delta_pct > opt.max_regress_pct;
    bool regressed;
    if (n >= kMinSamplesForWilcoxon) {
      regressed = over_threshold && significant;
    } else {
      regressed = delta_pct > std::max(opt.max_regress_pct, kGrossRegressPct);
    }

    const char* verdict = regressed          ? "REGRESSED"
                          : delta_pct < -opt.max_regress_pct ? "improved"
                                                             : "ok";
    if (regressed) ++regressions;
    if (n >= kMinSamplesForWilcoxon) {
      std::printf("%-48s %4zu %12.3f %12.3f %+8.1f%% %9.4f  %s\n", key.c_str(),
                  n, old_med, new_med, delta_pct, p, verdict);
    } else {
      std::printf("%-48s %4zu %12.3f %12.3f %+8.1f%% %9s  %s%s\n", key.c_str(),
                  n, old_med, new_med, delta_pct, "-", verdict,
                  over_threshold && !regressed ? " (small n; gross rule)"
                                               : "");
    }

    // Comparability check, not a gate: when both runs carried PMU counters,
    // a large IPC shift or heavy counter multiplexing means the wall-clock
    // delta above may reflect the environment, not the code.
    if (new_case.has_perf && old_case.has_perf) {
      if (old_case.ipc > 0.0 && new_case.ipc > 0.0) {
        const double ipc_delta_pct =
            100.0 * std::abs(new_case.ipc - old_case.ipc) / old_case.ipc;
        if (ipc_delta_pct > kIpcDivergencePct) {
          std::printf("  WARNING %s: IPC diverges %.0f%% (base %.2f, new "
                      "%.2f) — runs may not be comparable\n",
                      key.c_str(), ipc_delta_pct, old_case.ipc, new_case.ipc);
          ++perf_warnings;
        }
      }
      const double min_ratio =
          std::min(new_case.running_ratio, old_case.running_ratio);
      if (min_ratio < kMinRunningRatio) {
        std::printf("  WARNING %s: counters multiplexed (running ratio "
                    "%.2f < %.2f) — PMU-derived numbers are scaled "
                    "estimates\n",
                    key.c_str(), min_ratio, kMinRunningRatio);
        ++perf_warnings;
      }
    }

    // Memory growth check, same informational tier as the IPC divergence
    // warning above: footprint creep deserves a call-out long before it
    // fails any wall-clock gate.
    if (old_case.peak_rss_bytes > 0 && new_case.peak_rss_bytes > 0) {
      const double rss_grow_pct =
          100.0 *
          (static_cast<double>(new_case.peak_rss_bytes) -
           static_cast<double>(old_case.peak_rss_bytes)) /
          static_cast<double>(old_case.peak_rss_bytes);
      if (rss_grow_pct > opt.max_mem_grow_pct) {
        std::printf("  WARNING %s: peak RSS grew %.0f%% (base %zu, new "
                    "%zu bytes) — check for footprint creep\n",
                    key.c_str(), rss_grow_pct,
                    static_cast<std::size_t>(old_case.peak_rss_bytes),
                    static_cast<std::size_t>(new_case.peak_rss_bytes));
        ++mem_warnings;
      }
    }
    if (old_case.alloc_bytes > 0 && new_case.alloc_bytes > 0) {
      const double alloc_grow_pct =
          100.0 *
          (static_cast<double>(new_case.alloc_bytes) -
           static_cast<double>(old_case.alloc_bytes)) /
          static_cast<double>(old_case.alloc_bytes);
      if (alloc_grow_pct > opt.max_mem_grow_pct) {
        std::printf("  WARNING %s: attributed alloc_bytes grew %.0f%% "
                    "(base %zu, new %zu) — check for allocation creep\n",
                    key.c_str(), alloc_grow_pct,
                    static_cast<std::size_t>(old_case.alloc_bytes),
                    static_cast<std::size_t>(new_case.alloc_bytes));
        ++mem_warnings;
      }
    }
  }
  for (const auto& [key, old_case] : base) {
    if (fresh.find(key) == fresh.end()) {
      std::printf("%-48s %4zu %12.3f %12s %9s %9s  missing from new run\n",
                  key.c_str(), old_case.samples_ms.size(), old_case.median_ms,
                  "-", "-", "-");
    }
  }

  if (perf_warnings > 0) {
    std::printf("bench_compare: %d perf-comparability warning(s) "
                "(informational, never gate)\n",
                perf_warnings);
  }
  if (mem_warnings > 0) {
    std::printf("bench_compare: %d memory-growth warning(s) > %.0f%% "
                "(informational, never gate; --max-mem-grow-pct)\n",
                mem_warnings, opt.max_mem_grow_pct);
  }
  if (regressions > 0) {
    std::printf("bench_compare: %d case(s) regressed%s\n", regressions,
                opt.warn_only ? " (warn-only: exiting 0)" : "");
    return opt.warn_only ? 0 : 1;
  }
  std::printf("bench_compare: no regressions\n");
  return 0;
}
