// Folded-profile diff gate: compares two collapsed-stack profiles written
// by the sampling profiler (tsdist_eval/tsdist_bench --profile-out, or
// /profilez?dump) and reports per-frame share movement.
//
//   profile_diff new.folded baseline.folded [--top 20]
//                [--max-grow-pp 25] [--min-samples 50] [--warn-only]
//
// For every frame the tool computes, in each profile:
//   self share  — fraction of samples with the frame as the leaf;
//   total share — fraction of samples with the frame anywhere on stack
//                 (counted once per stack, so recursion does not inflate it).
// The report lists the --top movers ranked by |delta self share|, in
// percentage points. The gate FAILS (exit 1) when any frame's self share
// grows by more than --max-grow-pp percentage points — a new hotspot that
// big means the profile's cost distribution genuinely shifted. Sampling
// noise on two identical runs moves single frames by a few points at most,
// so the default 25 pp threshold keeps same-binary comparisons green while
// still catching a kernel whose guts changed.
//
// With fewer than --min-samples samples in either profile, shares are too
// noisy to gate on: the comparison is printed but always exits 0.
//
// Exit codes: 0 clean (or --warn-only / too few samples), 1 gate failure,
// 2 usage or file errors.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Profile {
  std::uint64_t samples = 0;      // from the header
  std::uint64_t dropped = 0;
  std::uint64_t interval_us = 0;
  std::uint64_t body_samples = 0; // sum of body counts (denominator)
  std::map<std::string, std::uint64_t> self;   // leaf frame -> samples
  std::map<std::string, std::uint64_t> total;  // frame on stack -> samples
};

struct Options {
  std::string new_path;
  std::string baseline_path;
  int top = 20;
  double max_grow_pp = 25.0;
  std::uint64_t min_samples = 50;
  bool warn_only = false;
};

// Splits "a;b;c" into frames. Empty segments (doubled semicolons) are
// dropped rather than treated as anonymous frames.
std::vector<std::string> SplitStack(const std::string& stack) {
  std::vector<std::string> frames;
  std::stringstream ss(stack);
  std::string frame;
  while (std::getline(ss, frame, ';')) {
    if (!frame.empty()) frames.push_back(frame);
  }
  return frames;
}

bool LoadProfile(const std::string& path, Profile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("tsdist.profile.v1") != std::string::npos) {
        saw_header = true;
        std::istringstream header(line.substr(1));
        std::string token;
        while (header >> token) {
          const std::size_t eq = token.find('=');
          if (eq == std::string::npos) continue;
          const std::string key = token.substr(0, eq);
          const std::uint64_t value =
              std::strtoull(token.c_str() + eq + 1, nullptr, 10);
          if (key == "samples") out->samples = value;
          else if (key == "dropped") out->dropped = value;
          else if (key == "interval_us") out->interval_us = value;
        }
      }
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) {
      *error = path + ": malformed line '" + line + "'";
      return false;
    }
    const std::uint64_t count =
        std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    const std::vector<std::string> frames = SplitStack(line.substr(0, sp));
    if (frames.empty() || count == 0) continue;
    out->body_samples += count;
    out->self[frames.back()] += count;
    // Total share counts each frame once per stack, recursion included.
    const std::set<std::string> unique(frames.begin(), frames.end());
    for (const std::string& frame : unique) out->total[frame] += count;
  }
  if (!saw_header) {
    *error = path + ": missing '# tsdist.profile.v1 ...' header";
    return false;
  }
  return true;
}

double SharePct(const std::map<std::string, std::uint64_t>& counts,
                const std::string& frame, std::uint64_t denom) {
  if (denom == 0) return 0.0;
  const auto it = counts.find(frame);
  if (it == counts.end()) return 0.0;
  return 100.0 * static_cast<double>(it->second) /
         static_cast<double>(denom);
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "profile_diff: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--top") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->top = std::max(1, std::atoi(v));
    } else if (arg == "--max-grow-pp") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->max_grow_pp = std::atof(v);
    } else if (arg == "--min-samples") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->min_samples = std::strtoull(v, nullptr, 10);
    } else if (arg == "--warn-only") {
      opt->warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "profile_diff: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "profile_diff: need <new.folded> <baseline.folded>\n";
    return false;
  }
  opt->new_path = positional[0];
  opt->baseline_path = positional[1];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    std::cerr << "usage: profile_diff <new.folded> <baseline.folded>\n"
                 "       [--top N] [--max-grow-pp P] [--min-samples N]\n"
                 "       [--warn-only]\n";
    return 2;
  }

  Profile fresh, base;
  std::string error;
  if (!LoadProfile(opt.new_path, &fresh, &error) ||
      !LoadProfile(opt.baseline_path, &base, &error)) {
    std::cerr << "profile_diff: " << error << "\n";
    return 2;
  }

  std::printf("profile_diff: %s (%llu samples) vs baseline %s (%llu "
              "samples)\n",
              opt.new_path.c_str(),
              static_cast<unsigned long long>(fresh.body_samples),
              opt.baseline_path.c_str(),
              static_cast<unsigned long long>(base.body_samples));

  // Rank every frame seen in either profile by |delta self share|.
  std::set<std::string> frames;
  for (const auto& [frame, count] : fresh.self) frames.insert(frame);
  for (const auto& [frame, count] : base.self) frames.insert(frame);

  struct Mover {
    std::string frame;
    double base_self_pct;
    double new_self_pct;
    double base_total_pct;
    double new_total_pct;
  };
  std::vector<Mover> movers;
  movers.reserve(frames.size());
  for (const std::string& frame : frames) {
    Mover m;
    m.frame = frame;
    m.base_self_pct = SharePct(base.self, frame, base.body_samples);
    m.new_self_pct = SharePct(fresh.self, frame, fresh.body_samples);
    m.base_total_pct = SharePct(base.total, frame, base.body_samples);
    m.new_total_pct = SharePct(fresh.total, frame, fresh.body_samples);
    movers.push_back(std::move(m));
  }
  std::sort(movers.begin(), movers.end(), [](const Mover& a, const Mover& b) {
    const double da = std::abs(a.new_self_pct - a.base_self_pct);
    const double db = std::abs(b.new_self_pct - b.base_self_pct);
    if (da != db) return da > db;
    return a.frame < b.frame;
  });

  std::printf("%-56s %9s %9s %9s %9s %9s\n", "frame", "self0%", "self1%",
              "dself", "total0%", "total1%");
  const std::size_t shown =
      std::min(movers.size(), static_cast<std::size_t>(opt.top));
  int growers = 0;
  double worst_growth = 0.0;
  std::string worst_frame;
  for (const Mover& m : movers) {
    const double delta = m.new_self_pct - m.base_self_pct;
    if (delta > worst_growth) {
      worst_growth = delta;
      worst_frame = m.frame;
    }
    if (delta > opt.max_grow_pp) ++growers;
  }
  for (std::size_t i = 0; i < shown; ++i) {
    const Mover& m = movers[i];
    std::string frame = m.frame;
    if (frame.size() > 56) frame = frame.substr(0, 53) + "...";
    std::printf("%-56s %8.2f%% %8.2f%% %+8.2f%% %8.2f%% %8.2f%%\n",
                frame.c_str(), m.base_self_pct, m.new_self_pct,
                m.new_self_pct - m.base_self_pct, m.base_total_pct,
                m.new_total_pct);
  }
  if (movers.size() > shown) {
    std::printf("  ... %zu more frame(s); rerun with --top %zu\n",
                movers.size() - shown, movers.size());
  }

  const std::uint64_t min_observed =
      std::min(fresh.body_samples, base.body_samples);
  if (min_observed < opt.min_samples) {
    std::printf("profile_diff: only %llu samples (< %llu) — shares too "
                "noisy to gate, exiting 0\n",
                static_cast<unsigned long long>(min_observed),
                static_cast<unsigned long long>(opt.min_samples));
    return 0;
  }
  if (growers > 0) {
    std::printf("profile_diff: %d frame(s) grew self share by more than "
                "%.1f pp (worst: %s, +%.1f pp)%s\n",
                growers, opt.max_grow_pp, worst_frame.c_str(), worst_growth,
                opt.warn_only ? " (warn-only: exiting 0)" : "");
    return opt.warn_only ? 0 : 1;
  }
  std::printf("profile_diff: no frame grew self share beyond %.1f pp "
              "(worst: %s%.1f pp)\n",
              opt.max_grow_pp, worst_growth > 0.0 ? "+" : "", worst_growth);
  return 0;
}
