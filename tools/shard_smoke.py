#!/usr/bin/env python3
"""End-to-end smoke test of tsdist_eval's sharded multi-process mode.

Drives the real binary through the coordinator/worker/merge lifecycle the
in-process unit tests cannot exercise from outside, proving the three
acceptance properties of the sharded runtime:

 1. three concurrent workers plus a coordinator produce a merged
    results.jsonl byte-identical to an uninterrupted single-process run;
 2. SIGKILL of a worker mid-shard is recovered by lease expiry + fencing
    reclaim — no lost cells, no duplicated cells (the byte-compare proves
    both at once);
 3. an injected `shard.merge` fault exits nonzero without corrupting any
    shard input, and a clean rerun of the merge succeeds bit for bit.

Along the way it checks the supporting contracts: a worker pointed at a
directory with no published plan fails fast, coordinator re-publish is
idempotent while an incompatible grid is refused, every lease file on disk
is a well-formed tsdist.lease.v1 history (via check_metrics_schema), and a
live worker's /fleetz endpoint serves a schema-valid fleet-health document.

Each phase records its completion; a phase that is skipped — by an early
return, an unexpected exception, or a future edit that forgets to run it —
fails the harness rather than passing vacuously.

Usage: shard_smoke.py <tsdist_eval-binary> <scratch-dir>
Stdlib only; exits 0 on success, 1 with one message per failure.
"""

import glob
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import check_metrics_schema

COMMON = ["--scale", "tiny", "--measures", "euclidean,kullback_leibler",
          "--supervised"]
LISTEN_RE = re.compile(r"telemetry server listening.*\bport=(\d+)")
FAULT_EXIT = 86  # src/resilience/fault.h kFaultExitCode

FAILURES = []
PHASES = ["baseline", "orphan-worker", "coordinator", "three-workers",
          "merge", "kill-reclaim", "merge-fault"]
COMPLETED = []


def fail(message):
    FAILURES.append(message)
    print(f"shard_smoke: FAIL: {message}", file=sys.stderr)


def run(binary, args, env_extra=None, timeout=300):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run([binary] + args, env=env, timeout=timeout,
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                          text=True)


def spawn_worker(binary, ckpt, worker, extra=None):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    return subprocess.Popen(
        [binary] + COMMON + ["--checkpoint-dir", ckpt,
                             "--shard-worker", worker] + (extra or []),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def snapshot_tree(root):
    """{relative path: bytes} for every regular file under root."""
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            full = os.path.join(dirpath, name)
            out[os.path.relpath(full, root)] = read_bytes(full)
    return out


def check_leases(ckpt):
    """Every lease on disk must be a valid tsdist.lease.v1 history."""
    paths = sorted(glob.glob(os.path.join(ckpt, "shards", "s*", "lease.e*")))
    if not paths:
        fail(f"{ckpt}: no lease files on disk after the sweep")
    for path in paths:
        errors = []
        check_metrics_schema.check_lease(errors, path, read_bytes(path))
        for message in errors:
            fail(f"lease schema: {message}")
    return paths


def check_results_json(path):
    errors = []
    doc = check_metrics_schema.load(errors, path)
    if doc is not None:
        check_metrics_schema.check_results(errors, path, doc)
    for message in errors:
        fail(f"results schema: {message}")
    return doc


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary, scratch = argv
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch)
    path = lambda name: os.path.join(scratch, name)

    # --- baseline: the single-process cell log every merge must reproduce.
    base = path("base")
    proc = run(binary, COMMON + ["--checkpoint-dir", base])
    if proc.returncode != 0:
        fail(f"baseline run exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    baseline = read_bytes(os.path.join(base, "results.jsonl"))
    if not baseline.endswith(b"\n") or not baseline.strip():
        fail("baseline results.jsonl is empty or unterminated")
        return 1
    COMPLETED.append("baseline")

    # --- orphan worker: no published plan -> fail fast, not hang or spin.
    orphan = path("orphan")
    os.makedirs(orphan)
    start = time.monotonic()
    proc = run(binary, COMMON + ["--checkpoint-dir", orphan,
                                 "--shard-worker", "w0"], timeout=60)
    elapsed = time.monotonic() - start
    if proc.returncode == 0:
        fail("worker with no shard plan exited 0, expected an error")
    if elapsed > 30:
        fail(f"plan-less worker took {elapsed:.1f}s to fail, expected fast")
    COMPLETED.append("orphan-worker")

    # --- coordinator: publish 4 shards; re-publish is idempotent; a
    # different grid against the same directory is refused.
    shared = path("shared")
    coord = COMMON + ["--checkpoint-dir", shared, "--shard-coordinator", "4",
                      "--lease-ttl-sec", "2"]
    proc = run(binary, coord)
    if proc.returncode != 0:
        fail(f"coordinator exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    proc = run(binary, coord)
    if proc.returncode != 0:
        fail(f"idempotent coordinator rerun exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
    proc = run(binary, ["--scale", "tiny", "--measures", "euclidean",
                        "--supervised", "--checkpoint-dir", shared,
                        "--shard-coordinator", "4"])
    if proc.returncode == 0:
        fail("coordinator accepted an incompatible grid over an existing "
             "plan")
    COMPLETED.append("coordinator")

    # --- three workers race the same plan; all must drain to completion.
    workers = [spawn_worker(binary, shared, f"w{i}") for i in range(3)]
    for i, worker in enumerate(workers):
        _out, err = worker.communicate(timeout=300)
        if worker.returncode != 0:
            fail(f"worker w{i} exited {worker.returncode}: {err[-500:]}")
    for shard_dir in sorted(glob.glob(os.path.join(shared, "shards", "s*"))):
        if not glob.glob(os.path.join(shard_dir, "e*", "DONE")):
            fail(f"{shard_dir}: no DONE epoch after all workers drained")
    check_leases(shared)
    COMPLETED.append("three-workers")

    # --- merge: byte-identical to the single-process baseline, twice (the
    # merge is read-only over shard state, so a rerun is a no-op rewrite).
    for attempt in ("merge", "merge rerun"):
        proc = run(binary, ["--checkpoint-dir", shared, "--shard-merge",
                            "--results-json", path("merged.json")])
        if proc.returncode != 0:
            fail(f"{attempt} exited {proc.returncode}: {proc.stderr[-500:]}")
            break
        merged = read_bytes(os.path.join(shared, "results.jsonl"))
        if merged != baseline:
            fail(f"{attempt}: merged results.jsonl differs from the "
                 f"single-process baseline ({len(merged)} vs "
                 f"{len(baseline)} bytes)")
    check_results_json(path("merged.json"))
    COMPLETED.append("merge")

    # --- SIGKILL mid-shard: a deliberately slow victim claims a shard, is
    # killed without ceremony, and a rescuer must observe the stale lease,
    # reclaim at a higher fencing epoch, and finish the sweep. While the
    # victim is alive, its /fleetz endpoint must serve a schema-valid
    # fleet-health aggregate naming it as the one live worker.
    shared2 = path("shared2")
    proc = run(binary, COMMON + ["--checkpoint-dir", shared2,
                                 "--shard-coordinator", "4",
                                 "--lease-ttl-sec", "0.5"])
    if proc.returncode != 0:
        fail(f"second coordinator exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
        return 1
    victim = spawn_worker(binary, shared2, "victim",
                          ["--selftest-cell-sleep-ms", "80", "--serve", "0"])
    port_box = {}
    stderr_tail = []

    def tail_stderr():
        for line in victim.stderr:
            stderr_tail.append(line)
            m = LISTEN_RE.search(line)
            if m and "port" not in port_box:
                port_box["port"] = int(m.group(1))

    tail = threading.Thread(target=tail_stderr, daemon=True)
    tail.start()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline and "port" not in port_box:
        time.sleep(0.02)
    if "port" in port_box:
        # The fleet view populates on the victim's first heartbeat, so poll
        # briefly instead of racing it; then the document must validate and
        # name the victim as the one live worker. Polling first also pins
        # the kill timing below: fleet-live means the victim has only just
        # claimed its first shard.
        fleet_doc, fleet_error = None, "never scraped"
        fleet_deadline = time.monotonic() + 8
        while time.monotonic() < fleet_deadline:
            try:
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port_box['port']}/fleetz",
                        timeout=10) as response:
                    doc = json.loads(response.read().decode("utf-8"))
            except (OSError, ValueError) as exc:
                fleet_error = f"cannot scrape /fleetz: {exc}"
                time.sleep(0.1)
                continue
            if doc.get("summary", {}).get("live") == 1:
                fleet_doc = doc
                break
            fleet_error = f"live != 1 in {doc.get('summary')!r}"
            time.sleep(0.1)
        if fleet_doc is None:
            fail(f"/fleetz never reported the victim live: {fleet_error}")
        else:
            errors = []
            check_metrics_schema.check_fleet_health(errors, "/fleetz",
                                                    fleet_doc)
            for message in errors:
                fail(f"fleet-health schema: {message}")
    else:
        fail(f"victim never reported a listening port: "
             f"{''.join(stderr_tail)[-500:]}")
    # Let the victim sink real work into its shard before the kill: with
    # 80 ms per cell a 16-cell shard takes >1.2 s, so killing ~1 s after the
    # first heartbeat always lands mid-shard, leaving an unfinished lease
    # for the rescuer to find stale and reclaim.
    time.sleep(1.0)
    if not glob.glob(os.path.join(shared2, "shards", "s*", "lease.e000001")):
        fail("victim ran for ~1s without claiming any shard")
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=60)
    tail.join(timeout=10)

    rescuer = spawn_worker(binary, shared2, "rescuer")
    _out, err = rescuer.communicate(timeout=300)
    if rescuer.returncode != 0:
        fail(f"rescuer exited {rescuer.returncode}: {err[-500:]}")
    if not glob.glob(os.path.join(shared2, "shards", "s*", "lease.e000002")):
        fail("no epoch-2 lease on disk: the rescuer never actually "
             "reclaimed the victim's shard (vacuous recovery)")
    check_leases(shared2)
    COMPLETED.append("kill-reclaim")

    # --- injected merge fault: exit code 86 via std::_Exit, no
    # results.jsonl, and every shard input byte-unchanged; then the clean
    # rerun reproduces the baseline exactly (which also proves the kill +
    # reclaim above lost and duplicated nothing).
    before = snapshot_tree(os.path.join(shared2, "shards"))
    proc = run(binary, ["--checkpoint-dir", shared2, "--shard-merge"],
               env_extra={"TSDIST_FAULT": "shard.merge:1:exit"})
    if proc.returncode != FAULT_EXIT:
        fail(f"faulted merge exited {proc.returncode}, expected "
             f"{FAULT_EXIT}")
    if os.path.exists(os.path.join(shared2, "results.jsonl")):
        fail("faulted merge left a results.jsonl behind")
    after = snapshot_tree(os.path.join(shared2, "shards"))
    if before != after:
        changed = sorted(set(before) ^ set(after)) or sorted(
            k for k in before if before[k] != after.get(k))
        fail(f"faulted merge mutated shard inputs: {changed[:5]}")
    proc = run(binary, ["--checkpoint-dir", shared2, "--shard-merge"])
    if proc.returncode != 0:
        fail(f"post-fault merge exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
    else:
        merged2 = read_bytes(os.path.join(shared2, "results.jsonl"))
        if merged2 != baseline:
            fail(f"post-kill merge differs from the single-process baseline "
                 f"({len(merged2)} vs {len(baseline)} bytes)")
    COMPLETED.append("merge-fault")

    skipped = [p for p in PHASES if p not in COMPLETED]
    if skipped:
        fail(f"phases skipped: {skipped}")
    if FAILURES:
        print(f"shard_smoke: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("shard_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
