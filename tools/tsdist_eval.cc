// tsdist_eval: command-line driver for the evaluation pipeline.
//
// Runs any set of measures over the synthetic archive (or a real UCR
// dataset directory) and emits the per-dataset accuracy matrix as CSV,
// optionally with the statistical analysis. The scriptable entry point for
// users who want the paper's pipeline without writing C++.
//
// Usage:
//   tsdist_eval [--scale tiny|small|medium] [--measures m1,m2,...]
//               [--norm zscore|...] [--supervised] [--csv]
//               [--ucr <dir> --dataset <Name>]
//
// Examples:
//   tsdist_eval --measures euclidean,lorentzian,nccc --csv
//   tsdist_eval --measures dtw,msm --supervised
//   tsdist_eval --ucr ~/UCRArchive_2018 --dataset ECGFiveDays
//               --measures nccc,dtw     (one line)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/data/archive.h"
#include "src/data/ucr_loader.h"
#include "src/normalization/normalization.h"
#include "src/stats/ranking.h"

namespace {

struct Options {
  tsdist::ArchiveScale scale = tsdist::ArchiveScale::kSmall;
  std::vector<std::string> measures = {"euclidean", "lorentzian", "nccc"};
  std::string norm = "zscore";
  bool supervised = false;
  bool csv = false;
  std::string ucr_dir;
  std::string ucr_dataset;
};

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "tiny") == 0) {
        options->scale = tsdist::ArchiveScale::kTiny;
      } else if (std::strcmp(v, "medium") == 0) {
        options->scale = tsdist::ArchiveScale::kMedium;
      } else if (std::strcmp(v, "small") == 0) {
        options->scale = tsdist::ArchiveScale::kSmall;
      } else {
        return false;
      }
    } else if (arg == "--measures") {
      const char* v = next();
      if (v == nullptr) return false;
      options->measures = SplitCommas(v);
    } else if (arg == "--norm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->norm = v;
    } else if (arg == "--supervised") {
      options->supervised = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else if (arg == "--ucr") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ucr_dir = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ucr_dataset = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->measures.empty();
}

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--scale tiny|small|medium] [--measures m1,m2,...]\n"
      "          [--norm zscore|minmax|meannorm|mediannorm|unitlength|\n"
      "                  logistic|tanh|none] [--supervised] [--csv]\n"
      "          [--ucr <archive-dir> --dataset <Name>]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsdist;
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(argv[0]);
    return 2;
  }

  // Validate measures up front.
  for (const auto& name : options.measures) {
    if (!Registry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown measure '%s'; known measures:\n",
                   name.c_str());
      for (const auto& known : Registry::Global().Names()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
  }

  // Assemble the datasets.
  std::vector<Dataset> datasets;
  if (!options.ucr_dir.empty()) {
    if (options.ucr_dataset.empty()) {
      std::fprintf(stderr, "--ucr requires --dataset\n");
      return 2;
    }
    const LoadResult loaded =
        LoadUcrDataset(options.ucr_dir, options.ucr_dataset);
    if (!loaded.ok) {
      std::fprintf(stderr, "load failed: %s\n", loaded.error.c_str());
      return 1;
    }
    datasets.push_back(ZScoreNormalizer().Apply(loaded.dataset));
  } else {
    ArchiveOptions archive_options;
    archive_options.scale = options.scale;
    datasets = BuildArchive(archive_options);
  }
  // Optional re-normalization on top of the z-normalized base.
  if (options.norm != "zscore" && options.norm != "none") {
    const NormalizerPtr normalizer = MakeNormalizer(options.norm);
    if (normalizer == nullptr) {
      std::fprintf(stderr, "unknown normalization '%s'\n",
                   options.norm.c_str());
      return 2;
    }
    for (auto& d : datasets) d = normalizer->Apply(d);
  }

  const PairwiseEngine engine;
  Matrix accuracies(datasets.size(), options.measures.size());
  if (options.csv) {
    std::printf("dataset");
    for (const auto& m : options.measures) std::printf(",%s", m.c_str());
    std::printf("\n");
  }
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    if (options.csv) std::printf("%s", datasets[i].name().c_str());
    for (std::size_t j = 0; j < options.measures.size(); ++j) {
      const std::string& name = options.measures[j];
      const EvalResult result =
          options.supervised
              ? EvaluateTuned(name, ParamGridFor(name), datasets[i], engine)
              : EvaluateFixed(name, UnsupervisedParamsFor(name), datasets[i],
                              engine);
      accuracies(i, j) = result.test_accuracy;
      if (options.csv) {
        std::printf(",%.4f", result.test_accuracy);
      } else {
        std::printf("%-22s %-14s %.4f\n", datasets[i].name().c_str(),
                    name.c_str(), result.test_accuracy);
      }
    }
    if (options.csv) std::printf("\n");
  }

  if (!options.csv && datasets.size() >= 3 && options.measures.size() >= 2) {
    const CdAnalysis analysis =
        AnalyzeRanks(accuracies, options.measures, 0.10);
    std::printf("\n");
    std::cout << RenderCdDiagram(analysis);
  }
  return 0;
}
