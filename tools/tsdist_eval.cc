// tsdist_eval: command-line driver for the evaluation pipeline.
//
// Runs any set of measures over the synthetic archive (or a real UCR
// dataset directory) and emits the per-dataset accuracy matrix as CSV,
// optionally with the statistical analysis. The scriptable entry point for
// users who want the paper's pipeline without writing C++.
//
// Resilience (see docs/ROBUSTNESS.md):
//   --checkpoint-dir <dir> durable sweep state: finished (dataset, measure)
//                          cells are skipped on restart, interrupted cells
//                          resume from their tile checkpoints bit-identically
//   --budget-sec <s>       per-cell wall-clock budget; an expired cell is
//                          recorded as DNF and the sweep continues
//   --results-json <path>  per-cell status/reason report (tsdist.results.v1)
//   SIGINT/SIGTERM         drain in-flight work, flush checkpoints + metrics,
//                          exit 128+signal (130 / 143)
//   TSDIST_FAULT=<site>:<n>[:exit]  deterministic fault injection
//
// Observability (see docs/OBSERVABILITY.md):
//   --metrics-json <path>  dump the tsdist.metrics.v1 JSON after the run
//   --metrics-csv <path>   same aggregates as flat CSV
//   --trace-json <path>    record spans; dump Chrome trace-event JSON
//                          (open in chrome://tracing or ui.perfetto.dev)
//   --progress             live cells/sec + ETA status line on stderr
//   --serve PORT           embedded telemetry HTTP server: /metrics
//                          (OpenMetrics), /healthz, /runinfo, /logz
//   --log-json <path>      structured JSON-lines event log (tsdist.log.v1)
//
// Examples:
//   tsdist_eval --measures euclidean,lorentzian,nccc --csv
//   tsdist_eval --measures dtw,msm --supervised --progress
//   tsdist_eval --measures euclidean,dtw --metrics-json m.json
//               --trace-json t.json     (one line)
//   tsdist_eval --ucr ~/UCRArchive_2018 --dataset ECGFiveDays
//               --measures nccc,dtw     (one line)
//   tsdist_eval --measures dtw,msm --supervised --checkpoint-dir ckpt
//               --budget-sec 600 --results-json r.json    (one line)

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/core/thread_pool.h"
#include "src/data/archive.h"
#include "src/data/ucr_loader.h"
#include "src/normalization/normalization.h"
#include "src/obs/expo_server.h"
#include "src/obs/health.h"
#include "src/obs/heap_profiler.h"
#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/obs/runinfo.h"
#include "src/obs/trace.h"
#include "src/obs/trace_spool.h"
#include "src/resilience/cancellation.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault.h"
#include "src/shard/cell_log.h"
#include "src/shard/fleet.h"
#include "src/shard/lease.h"
#include "src/shard/manifest.h"
#include "src/shard/merge.h"
#include "src/shard/worker.h"
#include "src/stats/ranking.h"

namespace {

// Process-wide interrupt state. The handler only touches async-signal-safe
// state: one relaxed atomic store plus a sig_atomic_t; everything else
// (draining, flushing, exiting) happens on the main thread when the eval
// loop observes the token.
tsdist::CancellationToken g_interrupt;
volatile std::sig_atomic_t g_signal = 0;

extern "C" void HandleSignal(int sig) {
  g_signal = sig;
  g_interrupt.Cancel();
}

struct Options {
  tsdist::ArchiveScale scale = tsdist::ArchiveScale::kSmall;
  std::vector<std::string> measures = {"euclidean", "lorentzian", "nccc"};
  std::string norm = "zscore";
  bool supervised = false;
  bool pruned = false;
  bool csv = false;
  std::string ucr_dir;
  std::string ucr_dataset;
  tsdist::MissingValuePolicy missing_values =
      tsdist::MissingValuePolicy::kInterpolate;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string metrics_json_path;
  std::string metrics_csv_path;
  std::string trace_json_path;
  bool trace_spool = false;  // crash-durable span spooling (needs ckpt dir)
  std::string results_json_path;
  std::string checkpoint_dir;
  double budget_sec = 0.0;  // 0 = no per-cell budget
  std::size_t tile_rows = 32;
  // Sharded multi-process execution (docs/ROBUSTNESS.md): exactly one of
  // these modes may be active, and all require --checkpoint-dir.
  std::size_t shard_coordinator = 0;  // partition into N shards and publish
  std::string shard_worker;           // worker id; claim and execute shards
  bool shard_merge = false;           // stitch shard logs into results.jsonl
  double lease_ttl_sec = 10.0;
  std::size_t shard_retry_max = 5;
  double shard_steal_after_sec = 0.0;  // 0 = 4 * lease TTL
  // Hidden test hook: raise SIGINT after this many cells complete, driving
  // the real handler/drain/flush path without timing races (0 = off).
  std::size_t selftest_interrupt_after = 0;
  // Hidden test hook: sleep this long after each computed cell so smoke
  // tests have a window to scrape the telemetry server mid-run (0 = off).
  std::size_t selftest_cell_sleep_ms = 0;
  int serve_port = -1;  // -1 = no telemetry server; 0 = ephemeral port
  std::string log_json_path;
  std::string profile_out_path;
  std::string profile_trace_path;
  std::string heap_profile_out_path;
  bool progress = false;
  bool help = false;
};

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

// Parses argv into `options`. On any malformed input — an unknown flag, a
// flag missing its value, or a bad enum value — prints a specific complaint
// to stderr and returns false (the caller exits non-zero with usage).
bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char** value) -> bool {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", arg.c_str());
        return false;
      }
      *value = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--scale") {
      if (!next(&v)) return false;
      if (std::strcmp(v, "tiny") == 0) {
        options->scale = tsdist::ArchiveScale::kTiny;
      } else if (std::strcmp(v, "medium") == 0) {
        options->scale = tsdist::ArchiveScale::kMedium;
      } else if (std::strcmp(v, "small") == 0) {
        options->scale = tsdist::ArchiveScale::kSmall;
      } else {
        std::fprintf(stderr, "--scale must be tiny, small, or medium (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--measures") {
      if (!next(&v)) return false;
      options->measures = SplitCommas(v);
      if (options->measures.empty()) {
        std::fprintf(stderr, "--measures needs a comma-separated list\n");
        return false;
      }
    } else if (arg == "--norm") {
      if (!next(&v)) return false;
      options->norm = v;
    } else if (arg == "--supervised") {
      options->supervised = true;
    } else if (arg == "--pruned") {
      options->pruned = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else if (arg == "--ucr") {
      if (!next(&v)) return false;
      options->ucr_dir = v;
    } else if (arg == "--dataset") {
      if (!next(&v)) return false;
      options->ucr_dataset = v;
    } else if (arg == "--missing-values") {
      if (!next(&v)) return false;
      if (std::strcmp(v, "interpolate") == 0) {
        options->missing_values = tsdist::MissingValuePolicy::kInterpolate;
      } else if (std::strcmp(v, "reject") == 0) {
        options->missing_values = tsdist::MissingValuePolicy::kReject;
      } else {
        std::fprintf(stderr,
                     "--missing-values must be interpolate or reject (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--threads") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--threads must be a non-negative integer (got '%s')\n", v);
        return false;
      }
      options->threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--checkpoint-dir") {
      if (!next(&v)) return false;
      options->checkpoint_dir = v;
    } else if (arg == "--budget-sec") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(parsed > 0.0)) {
        std::fprintf(stderr, "--budget-sec must be a positive number (got '%s')\n", v);
        return false;
      }
      options->budget_sec = parsed;
    } else if (arg == "--tile-rows") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        std::fprintf(stderr, "--tile-rows must be a positive integer (got '%s')\n", v);
        return false;
      }
      options->tile_rows = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-coordinator") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        std::fprintf(stderr,
                     "--shard-coordinator must be a positive shard count "
                     "(got '%s')\n",
                     v);
        return false;
      }
      options->shard_coordinator = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-worker") {
      if (!next(&v)) return false;
      options->shard_worker = v;
      if (options->shard_worker.empty() ||
          options->shard_worker.find('/') != std::string::npos) {
        std::fprintf(stderr,
                     "--shard-worker needs a non-empty id without '/' "
                     "(got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--shard-merge") {
      options->shard_merge = true;
    } else if (arg == "--lease-ttl-sec") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(parsed > 0.0)) {
        std::fprintf(stderr,
                     "--lease-ttl-sec must be a positive number (got '%s')\n",
                     v);
        return false;
      }
      options->lease_ttl_sec = parsed;
    } else if (arg == "--shard-retry-max") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        std::fprintf(stderr,
                     "--shard-retry-max must be a positive integer "
                     "(got '%s')\n",
                     v);
        return false;
      }
      options->shard_retry_max = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-steal-after-sec") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(parsed > 0.0)) {
        std::fprintf(stderr,
                     "--shard-steal-after-sec must be a positive number "
                     "(got '%s')\n",
                     v);
        return false;
      }
      options->shard_steal_after_sec = parsed;
    } else if (arg == "--selftest-interrupt-after") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        std::fprintf(stderr,
                     "--selftest-interrupt-after must be a positive integer (got '%s')\n",
                     v);
        return false;
      }
      options->selftest_interrupt_after = static_cast<std::size_t>(parsed);
    } else if (arg == "--selftest-cell-sleep-ms") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr,
                     "--selftest-cell-sleep-ms must be a non-negative integer "
                     "(got '%s')\n",
                     v);
        return false;
      }
      options->selftest_cell_sleep_ms = static_cast<std::size_t>(parsed);
    } else if (arg == "--serve") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed > 65535) {
        std::fprintf(stderr, "--serve must be a port in [0, 65535] (got '%s')\n",
                     v);
        return false;
      }
      options->serve_port = static_cast<int>(parsed);
    } else if (arg == "--log-json") {
      if (!next(&v)) return false;
      options->log_json_path = v;
    } else if (arg == "--results-json") {
      if (!next(&v)) return false;
      options->results_json_path = v;
    } else if (arg == "--metrics-json") {
      if (!next(&v)) return false;
      options->metrics_json_path = v;
    } else if (arg == "--metrics-csv") {
      if (!next(&v)) return false;
      options->metrics_csv_path = v;
    } else if (arg == "--trace-json") {
      if (!next(&v)) return false;
      options->trace_json_path = v;
    } else if (arg == "--trace-spool") {
      options->trace_spool = true;
    } else if (arg == "--profile-out") {
      if (!next(&v)) return false;
      options->profile_out_path = v;
    } else if (arg == "--profile-trace") {
      if (!next(&v)) return false;
      options->profile_trace_path = v;
    } else if (arg == "--heap-profile-out") {
      if (!next(&v)) return false;
      options->heap_profile_out_path = v;
    } else if (arg == "--progress") {
      options->progress = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  const int shard_modes = (options->shard_coordinator > 0 ? 1 : 0) +
                          (!options->shard_worker.empty() ? 1 : 0) +
                          (options->shard_merge ? 1 : 0);
  if (shard_modes > 1) {
    std::fprintf(stderr,
                 "--shard-coordinator, --shard-worker, and --shard-merge are "
                 "mutually exclusive\n");
    return false;
  }
  if (shard_modes == 1 && options->checkpoint_dir.empty()) {
    std::fprintf(stderr, "shard modes require --checkpoint-dir\n");
    return false;
  }
  if (options->trace_spool && options->checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "--trace-spool requires --checkpoint-dir (spans spool to "
                 "<checkpoint>/trace/)\n");
    return false;
  }
  return true;
}

void PrintUsage(std::FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s [--scale tiny|small|medium] [--measures m1,m2,...]\n"
      "          [--norm zscore|minmax|meannorm|mediannorm|unitlength|\n"
      "                  logistic|tanh|none] [--supervised] [--pruned]\n"
      "          [--csv] [--ucr <archive-dir> --dataset <Name>]\n"
      "          [--missing-values interpolate|reject] [--threads N]\n"
      "          [--checkpoint-dir <dir>] [--budget-sec S] [--tile-rows N]\n"
      "          [--results-json <path>] [--metrics-json <path>]\n"
      "          [--metrics-csv <path>] [--trace-json <path>] [--trace-spool]\n"
      "          [--serve PORT] [--log-json <path>]\n"
      "          [--profile-out <path>] [--profile-trace <path>]\n"
      "          [--heap-profile-out <path>] [--progress] [--help]\n"
      "\n"
      "  --pruned               classify through the lower-bound cascade\n"
      "                         (LB_Kim -> LB_Keogh -> early-abandoned DTW)\n"
      "                         instead of full dissimilarity matrices.\n"
      "                         Accuracies are identical; a prune-rate\n"
      "                         summary is printed to stderr after the run.\n"
      "\n"
      "resilience:\n"
      "  --checkpoint-dir <dir> persist sweep state: finished cells are\n"
      "                         skipped on restart and interrupted matrix\n"
      "                         computations resume from tile checkpoints,\n"
      "                         bit-identically (docs/ROBUSTNESS.md)\n"
      "  --budget-sec S         per-cell wall-clock budget; an expired cell\n"
      "                         is recorded as DNF, the sweep continues\n"
      "  --tile-rows N          rows per checkpoint tile (default 32)\n"
      "  --results-json <path>  per-cell status report (tsdist.results.v1);\n"
      "                         the exit code is 0 unless every cell failed\n"
      "  --missing-values M     'interpolate' (default; the paper's\n"
      "                         preprocessing) or 'reject' (fail the load,\n"
      "                         naming file and line)\n"
      "\n"
      "sharded execution (multi-process; all need --checkpoint-dir):\n"
      "  --shard-coordinator N  partition the sweep into N shards and\n"
      "                         publish the manifest, then exit (idempotent)\n"
      "  --shard-worker ID      claim shards via crash-tolerant leases and\n"
      "                         execute them until the sweep is finished;\n"
      "                         run any number of workers concurrently\n"
      "  --shard-merge          stitch finished shard logs into the\n"
      "                         checkpoint's results.jsonl, byte-identical\n"
      "                         to a single-process run\n"
      "  --lease-ttl-sec S      heartbeat TTL before a dead worker's shard\n"
      "                         is reclaimed (coordinator; default 10)\n"
      "  --shard-retry-max N    epochs before a crashing shard is\n"
      "                         quarantined (coordinator; default 5)\n"
      "  --shard-steal-after-sec S  steal a live straggler's shard after S\n"
      "                         seconds (worker; default 4x lease TTL)\n"
      "\n"
      "observability:\n"
      "  --metrics-json <path>  write counters/gauges/histograms\n"
      "                         (tsdist.metrics.v1 schema) after the run\n"
      "  --metrics-csv <path>   the same aggregates as flat CSV\n"
      "  --trace-json <path>    record scoped spans and write Chrome\n"
      "                         trace-event JSON (chrome://tracing, Perfetto)\n"
      "  --trace-spool          append completed spans continuously to\n"
      "                         <checkpoint>/trace/<proc>.trace.jsonl\n"
      "                         (tsdist.tracespool.v1) so a killed process's\n"
      "                         spans survive; stitch the fleet's spools with\n"
      "                         trace_merge (docs/TRACING.md)\n"
      "  --serve PORT           start the embedded telemetry HTTP server on\n"
      "                         127.0.0.1:PORT (0 = ephemeral): /metrics in\n"
      "                         OpenMetrics text, /healthz, /runinfo, /logz\n"
      "  --log-json <path>      append structured tsdist.log.v1 JSON lines\n"
      "                         for every logged event\n"
      "  --profile-out <path>   run the in-process sampling profiler over the\n"
      "                         sweep and write a collapsed-stack (folded)\n"
      "                         profile on exit (docs/PROFILING.md). Results\n"
      "                         are bit-identical with or without profiling\n"
      "  --profile-trace <path> the same samples as Chrome trace-event JSON\n"
      "                         (chrome://tracing, Perfetto)\n"
      "  --heap-profile-out <path>  sample the allocation stream over the\n"
      "                         sweep (tcmalloc-style byte countdown) and\n"
      "                         write tsdist.heapprofile.v1 collapsed stacks\n"
      "                         on exit; a live-stack summary goes to stderr\n"
      "                         (docs/MEMORY.md). Results stay bit-identical\n"
      "  --progress             live cells/sec + ETA on stderr\n",
      prog);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Pins the fleet identity on the recorder and opens this process's spool
// under <checkpoint>/trace/. Workers and merge hash the published plan
// bytes, so every process of one sweep lands on the same run id; the
// single-process driver (no plan) hashes the checkpoint path instead.
bool StartTraceSpool(const Options& options, const std::string& role,
                     const std::string& proc) {
  tsdist::obs::TraceContext context;
  context.role = role;
  if (role == "worker") context.worker_id = options.shard_worker;
  if (role == "driver") {
    context.run_id = tsdist::obs::TraceRunIdFromBytes(options.checkpoint_dir);
  } else {
    context.run_id = tsdist::obs::TraceRunIdFromBytes(
        ReadFileBytes(tsdist::shard::PlanPath(options.checkpoint_dir)));
  }
  tsdist::obs::TraceRecorder::Global().SetContext(context);
  tsdist::obs::TraceSpoolOptions spool_options;
  spool_options.dir = options.checkpoint_dir + "/trace";
  spool_options.proc = proc;
  std::string error;
  if (!tsdist::obs::TraceSpool::Global().Start(spool_options, &error)) {
    std::fprintf(stderr, "cannot start trace spool: %s\n", error.c_str());
    return false;
  }
  return true;
}

bool WriteFileOrComplain(const std::string& path, const std::string& contents,
                         const char* what) {
  std::ofstream out(path);
  if (!out) {
    TSDIST_LOG(tsdist::obs::LogLevel::kError, "cannot open output file",
               tsdist::obs::F("what", what), tsdist::obs::F("path", path));
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

// Cell serialization lives in src/shard/cell_log.{h,cc} now: the driver,
// the shard workers, and the merge step must share one formatter for the
// merged log to be byte-identical to a single-process run.
using tsdist::shard::CellKey;
using tsdist::shard::CellLogLine;
using tsdist::shard::CellOutcome;
using tsdist::shard::FormatG17;
using tsdist::shard::JsonEscape;
using tsdist::shard::LoadFinishedCells;

const char* ScaleName(tsdist::ArchiveScale scale) {
  switch (scale) {
    case tsdist::ArchiveScale::kTiny: return "tiny";
    case tsdist::ArchiveScale::kSmall: return "small";
    case tsdist::ArchiveScale::kMedium: return "medium";
  }
  return "unknown";
}

bool ScaleFromName(const std::string& name, tsdist::ArchiveScale* scale) {
  if (name == "tiny") {
    *scale = tsdist::ArchiveScale::kTiny;
  } else if (name == "small") {
    *scale = tsdist::ArchiveScale::kSmall;
  } else if (name == "medium") {
    *scale = tsdist::ArchiveScale::kMedium;
  } else {
    return false;
  }
  return true;
}

// The tsdist.results.v1 report: every cell with its terminal status, plus a
// status summary (validated by tools/check_metrics_schema.py --results).
std::string ResultsToJson(const std::vector<CellOutcome>& cells,
                          const Options& options) {
  std::size_t ok = 0, failed = 0, dnf = 0, interrupted = 0, resumed = 0;
  for (const CellOutcome& cell : cells) {
    switch (cell.status) {
      case tsdist::EvalStatus::kOk: ++ok; break;
      case tsdist::EvalStatus::kFailed: ++failed; break;
      case tsdist::EvalStatus::kDnf: ++dnf; break;
      case tsdist::EvalStatus::kInterrupted: ++interrupted; break;
    }
    if (cell.resumed) ++resumed;
  }
  std::ostringstream os;
  os << "{\n  \"schema\": \"tsdist.results.v1\",\n"
     << "  \"supervised\": " << (options.supervised ? "true" : "false")
     << ",\n"
     << "  \"pruned\": " << (options.pruned ? "true" : "false") << ",\n"
     << "  \"norm\": \"" << JsonEscape(options.norm) << "\",\n"
     << "  \"budget_sec\": " << FormatG17(options.budget_sec) << ",\n"
     << "  \"summary\": {\"total\": " << cells.size() << ", \"ok\": " << ok
     << ", \"failed\": " << failed << ", \"dnf\": " << dnf
     << ", \"interrupted\": " << interrupted << ", \"resumed\": " << resumed
     << "},\n"
     << "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellOutcome& cell = cells[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"dataset\": \"" << JsonEscape(cell.dataset)
       << "\", \"measure\": \"" << JsonEscape(cell.measure)
       << "\", \"params\": \"" << JsonEscape(cell.params)
       << "\", \"status\": \"" << tsdist::ToString(cell.status)
       << "\", \"reason\": \"" << JsonEscape(cell.reason)
       << "\", \"train_accuracy\": " << FormatG17(cell.train_accuracy)
       << ", \"test_accuracy\": " << FormatG17(cell.test_accuracy)
       << ", \"resumed\": " << (cell.resumed ? "true" : "false") << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsdist;
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  if (options.help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  fault::ArmFromEnv();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Structured log sink first, so every later event lands in the file.
  if (!options.log_json_path.empty()) {
    std::string error;
    if (!obs::Logger::Global().OpenJsonSink(options.log_json_path, &error)) {
      std::fprintf(stderr, "cannot open log JSON file '%s': %s\n",
                   options.log_json_path.c_str(), error.c_str());
      return 2;
    }
  }

  // Merge mode needs no datasets, no engine, and no server: it reads the
  // manifest plus every shard's finished epoch log and rewrites the
  // checkpoint root's results.jsonl. Read-only over shard state, so a fault
  // or kill mid-merge corrupts nothing and a rerun succeeds.
  if (options.shard_merge) {
    obs::HealthState::Global().SetPhase("merge");
    if (options.trace_spool) StartTraceSpool(options, "merge", "merge");
    shard::ShardPlan plan;
    shard::MergeReport report;
    std::string error;
    bool merged = false;
    if (shard::LoadShardPlan(options.checkpoint_dir, &plan, &error)) {
      try {
        merged = shard::MergeShards(options.checkpoint_dir, plan, &report,
                                    &error);
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (!merged) {
      std::fprintf(stderr, "shard merge failed: %s\n", error.c_str());
      obs::TraceSpool::Global().Stop();
      obs::Logger::Global().Flush();
      obs::Logger::Global().CloseJsonSink();
      return 1;
    }
    if (!options.results_json_path.empty()) {
      // The merged log holds ok/failed cells; any manifest cell absent from
      // it is a terminal DNF (workers only mark DONE when every cell is
      // terminal, and DNF cells are deliberately unlogged so a rerun with a
      // bigger budget retries them).
      std::vector<CellOutcome> outcomes;
      outcomes.reserve(plan.total_cells());
      std::size_t next = 0;
      for (const auto& dataset : plan.datasets) {
        for (const auto& measure : plan.measures) {
          if (next < report.cells.size() &&
              report.cells[next].dataset == dataset.name &&
              report.cells[next].measure == measure) {
            outcomes.push_back(report.cells[next++]);
          } else {
            CellOutcome dnf;
            dnf.dataset = dataset.name;
            dnf.measure = measure;
            dnf.status = EvalStatus::kDnf;
            dnf.reason = "did not finish within the shard budget";
            outcomes.push_back(std::move(dnf));
          }
        }
      }
      Options report_options = options;
      report_options.supervised = plan.supervised;
      report_options.pruned = plan.pruned;
      report_options.norm = plan.norm;
      report_options.budget_sec = plan.budget_sec;
      if (!AtomicWriteFile(options.results_json_path,
                           ResultsToJson(outcomes, report_options), &error)) {
        std::fprintf(stderr, "cannot write results JSON: %s\n",
                     error.c_str());
        obs::TraceSpool::Global().Stop();
        obs::Logger::Global().Flush();
        obs::Logger::Global().CloseJsonSink();
        return 1;
      }
    }
    std::printf(
        "merged %zu shards: %zu cells (%zu ok, %zu failed, %zu dnf) -> %s\n",
        report.shards, report.lines + report.dnf, report.ok, report.failed,
        report.dnf, (options.checkpoint_dir + "/results.jsonl").c_str());
    obs::TraceSpool::Global().Stop();
    obs::Logger::Global().Flush();
    obs::Logger::Global().CloseJsonSink();
    return 0;
  }

  // Worker mode: the manifest — not the command line — pins the sweep
  // (measures, supervision, pruning, budget, tile size, normalization,
  // archive scale), so every worker computes exactly the grid the
  // coordinator published. Loaded before measure validation so the plan's
  // measures are validated like CLI ones.
  shard::ShardPlan worker_plan;
  if (!options.shard_worker.empty()) {
    std::string error;
    if (!shard::LoadShardPlan(options.checkpoint_dir, &worker_plan, &error)) {
      std::fprintf(stderr, "shard worker cannot start: %s\n", error.c_str());
      return 1;
    }
    options.measures = worker_plan.measures;
    options.supervised = worker_plan.supervised;
    options.pruned = worker_plan.pruned;
    options.budget_sec = worker_plan.budget_sec;
    options.tile_rows = worker_plan.tile_rows;
    options.norm = worker_plan.norm;
    if (worker_plan.scale == "ucr") {
      if (options.ucr_dir.empty() || options.ucr_dataset.empty()) {
        std::fprintf(stderr,
                     "the shard manifest was built from a UCR dataset; pass "
                     "the same --ucr/--dataset to the worker\n");
        return 1;
      }
    } else if (!ScaleFromName(worker_plan.scale, &options.scale)) {
      std::fprintf(stderr, "shard manifest has unknown scale '%s'\n",
                   worker_plan.scale.c_str());
      return 1;
    }
  }

  // Telemetry server next: /healthz is live through dataset loading too.
  obs::HealthState::Global().SetPhase("startup");
  obs::ExpoServer server;
  if (options.serve_port >= 0) {
    obs::ExpoServer::Options server_options;
    server_options.port = options.serve_port;
    // The server refreshes peak RSS on every sampling pass by itself; the
    // pool gauges live in core, so the driver passes them in.
    server_options.sampler = UpdatePoolLiveGauges;
    std::string error;
    if (!server.Start(server_options, &error)) {
      std::fprintf(stderr, "cannot start telemetry server: %s\n",
                   error.c_str());
      return 2;
    }
    server.SetRunInfoJson(
        obs::ManifestToJson(
            obs::CollectRunManifest(options.threads, ArchiveOptions{}.seed,
                                    ScaleName(options.scale)),
            0) +
        "\n");
  }

  // Validate measures up front.
  for (const auto& name : options.measures) {
    if (!Registry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown measure '%s'; known measures:\n",
                   name.c_str());
      for (const auto& known : Registry::Global().Names()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
  }

  if (!options.trace_json_path.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }
  if (options.trace_spool) {
    if (!options.trace_json_path.empty()) {
      std::fprintf(stderr,
                   "note: --trace-spool drains spans continuously; the "
                   "--trace-json export will hold only the final batch\n");
    }
    if (options.shard_coordinator > 0) {
      // The run id is the hash of the plan bytes, which do not exist yet:
      // record spans from here on and open the spool after the publish.
      obs::TraceRecorder::Global().SetEnabled(true);
    } else if (!options.shard_worker.empty()) {
      if (!StartTraceSpool(options, "worker", options.shard_worker)) return 2;
    } else {
      if (!StartTraceSpool(options, "driver", "driver")) return 2;
    }
  }

  // Assemble the datasets.
  obs::HealthState::Global().SetPhase("load");
  std::vector<Dataset> datasets;
  if (!options.ucr_dir.empty()) {
    if (options.ucr_dataset.empty()) {
      std::fprintf(stderr, "--ucr requires --dataset\n");
      return 2;
    }
    LoadOptions load_options;
    load_options.missing_values = options.missing_values;
    const LoadResult loaded =
        LoadUcrDataset(options.ucr_dir, options.ucr_dataset, load_options);
    if (!loaded.ok) {
      std::fprintf(stderr, "load failed: %s\n", loaded.error.c_str());
      return 1;
    }
    datasets.push_back(ZScoreNormalizer().Apply(loaded.dataset));
  } else {
    ArchiveOptions archive_options;
    archive_options.scale = options.scale;
    datasets = BuildArchive(archive_options);
  }
  // Optional re-normalization on top of the z-normalized base.
  if (options.norm != "zscore" && options.norm != "none") {
    const NormalizerPtr normalizer = MakeNormalizer(options.norm);
    if (normalizer == nullptr) {
      std::fprintf(stderr, "unknown normalization '%s'\n",
                   options.norm.c_str());
      return 2;
    }
    for (auto& d : datasets) d = normalizer->Apply(d);
  }

  // Coordinator mode: publish the shard manifest and exit. Idempotent — a
  // coordinator killed mid-publish leaves either no manifest or a complete
  // one, and a rerun over an unchanged configuration reproduces the same
  // bytes; a *changed* configuration against an existing manifest is
  // refused.
  if (options.shard_coordinator > 0) {
    obs::HealthState::Global().SetPhase("plan");
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create checkpoint dir '%s': %s\n",
                   options.checkpoint_dir.c_str(), ec.message().c_str());
      return 1;
    }
    shard::ShardPlan plan;
    plan.supervised = options.supervised;
    plan.pruned = options.pruned;
    plan.norm = options.norm;
    plan.scale = options.ucr_dir.empty() ? ScaleName(options.scale) : "ucr";
    plan.budget_sec = options.budget_sec;
    plan.tile_rows = options.tile_rows;
    plan.lease_ttl_sec = options.lease_ttl_sec;
    plan.retry_max = static_cast<std::uint32_t>(options.shard_retry_max);
    plan.measures = options.measures;
    plan.datasets = shard::FingerprintDatasets(datasets);
    shard::PartitionCells(&plan, options.shard_coordinator);
    std::string error;
    const bool written =
        shard::WriteShardPlan(options.checkpoint_dir, plan, &error);
    if (written && options.trace_spool) {
      // Now that the plan bytes exist the fleet run id is known; the spool
      // drains the already-recorded plan_publish span on Stop.
      StartTraceSpool(options, "coordinator", "coordinator");
      obs::TraceSpool::Global().Stop();
    }
    obs::HealthState::Global().SetPhase("done");
    server.Stop();
    obs::Logger::Global().Flush();
    obs::Logger::Global().CloseJsonSink();
    if (!written) {
      std::fprintf(stderr, "cannot publish shard plan: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "published %zu shards over %zu cells (%zu datasets x %zu measures) "
        "to %s\n",
        plan.shards.size(), plan.total_cells(), plan.datasets.size(),
        plan.measures.size(),
        shard::PlanPath(options.checkpoint_dir).c_str());
    return 0;
  }

  // Worker mode: validate this process's data against the manifest, then
  // hand the loop to the shard worker until the sweep is finished or we are
  // interrupted.
  if (!options.shard_worker.empty()) {
    std::string error;
    if (!shard::ValidatePlanDatasets(worker_plan, datasets, &error)) {
      std::fprintf(stderr, "shard worker cannot start: %s\n", error.c_str());
      server.Stop();
      obs::Logger::Global().Flush();
      obs::Logger::Global().CloseJsonSink();
      return 1;
    }
    const PairwiseEngine worker_engine(options.threads);
    shard::WorkerOptions worker_options;
    worker_options.checkpoint_dir = options.checkpoint_dir;
    worker_options.worker_id = options.shard_worker;
    worker_options.steal_after_sec = options.shard_steal_after_sec;
    worker_options.selftest_cell_sleep_ms = options.selftest_cell_sleep_ms;
    worker_options.cancel = &g_interrupt;
    shard::WorkerStats stats;
    bool worker_ok = false;
    try {
      worker_ok = shard::RunShardWorker(worker_plan, datasets, worker_engine,
                                        worker_options, &stats, &error);
    } catch (const std::exception& e) {
      error = e.what();
    }
    TSDIST_LOG(obs::LogLevel::kInfo, "shard worker finished",
               obs::F("worker", options.shard_worker),
               obs::F("shards_done",
                      static_cast<std::uint64_t>(stats.shards_done)),
               obs::F("reclaimed",
                      static_cast<std::uint64_t>(stats.shards_reclaimed)),
               obs::F("stolen",
                      static_cast<std::uint64_t>(stats.shards_stolen)),
               obs::F("quarantined",
                      static_cast<std::uint64_t>(stats.shards_quarantined)),
               obs::F("cells_computed",
                      static_cast<std::uint64_t>(stats.cells_computed)),
               obs::F("cells_salvaged",
                      static_cast<std::uint64_t>(stats.cells_salvaged)),
               obs::F("interrupted", stats.interrupted));
    int export_failures = 0;
    if (!options.metrics_json_path.empty() &&
        !WriteFileOrComplain(options.metrics_json_path,
                             obs::MetricsRegistry::Global().ToJson(),
                             "metrics JSON")) {
      ++export_failures;
    }
    obs::HealthState::Global().SetPhase("done");
    obs::TraceSpool::Global().Stop();
    server.Stop();
    obs::Logger::Global().Flush();
    obs::Logger::Global().CloseJsonSink();
    if (!worker_ok) {
      std::fprintf(stderr, "shard worker failed: %s\n", error.c_str());
      return 1;
    }
    if (stats.interrupted && g_signal != 0) {
      return 128 + static_cast<int>(g_signal);
    }
    return export_failures > 0 ? 1 : 0;
  }

  // Resume state: cells finished (status ok) by a previous run under the
  // same checkpoint directory are skipped entirely.
  std::string cell_log_path;
  std::map<std::string, CellOutcome> finished;
  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create checkpoint dir '%s': %s\n",
                   options.checkpoint_dir.c_str(), ec.message().c_str());
      return 1;
    }
    cell_log_path = options.checkpoint_dir + "/results.jsonl";
    finished = LoadFinishedCells(cell_log_path);
    if (!finished.empty()) {
      TSDIST_LOG(obs::LogLevel::kInfo, "checkpoint resuming",
                 obs::F("finished_cells",
                        static_cast<std::uint64_t>(finished.size())),
                 obs::F("dir", options.checkpoint_dir));
    }
  }

  // Total pairwise cells across the whole run, for the progress ETA. The
  // supervised path adds |grid| LOOCV passes per dataset/measure on top of
  // the test-vs-train pass. Per pass:
  //  * pruned: one progress tick per candidate examined, so train per test
  //    query and train-1 per LOOCV query;
  //  * full matrix: test*train cells, and for LOOCV an upper triangle when
  //    the measure is symmetric or the full n^2 matrix when it is not.
  std::uint64_t total_cells = 0;
  for (const auto& d : datasets) {
    const std::uint64_t train = d.train().size();
    const std::uint64_t test = d.test().size();
    for (const auto& m : options.measures) {
      total_cells += test * train;
      if (!options.supervised) continue;
      const std::uint64_t grid = ParamGridFor(m).size();
      if (options.pruned) {
        total_cells += grid * train * (train > 0 ? train - 1 : 0);
      } else {
        const MeasurePtr probe =
            Registry::Global().Create(m, UnsupervisedParamsFor(m));
        const bool symmetric = probe == nullptr || probe->symmetric();
        total_cells += grid * (symmetric ? (train * (train + 1)) / 2
                                         : train * train);
      }
    }
  }
  obs::ProgressReporter progress("tsdist_eval", total_cells);
  if (options.progress) {
    // Explicit --progress prints even when stderr is piped (the reporter
    // suppresses its `\r` frames on non-TTY stderr otherwise).
    progress.set_force(true);
    obs::SetActiveProgress(&progress);
  }

  const PairwiseEngine engine(options.threads);
  Matrix accuracies(datasets.size(), options.measures.size());
  std::vector<CellOutcome> outcomes;
  outcomes.reserve(datasets.size() * options.measures.size());
  std::size_t cells_computed = 0;
  bool interrupted = false;

  obs::Counter* cell_counters[4] = {nullptr, nullptr, nullptr, nullptr};
  if (obs::Enabled()) {
    auto& metrics = obs::MetricsRegistry::Global();
    cell_counters[0] = &metrics.GetCounter("tsdist.eval.cells_ok");
    cell_counters[1] = &metrics.GetCounter("tsdist.eval.cells_dnf");
    cell_counters[2] = &metrics.GetCounter("tsdist.eval.cells_failed");
    cell_counters[3] = &metrics.GetCounter("tsdist.eval.cells_resumed");
  }

  if (options.csv) {
    std::printf("dataset");
    for (const auto& m : options.measures) std::printf(",%s", m.c_str());
    std::printf("\n");
  }
  const std::uint64_t sweep_total =
      static_cast<std::uint64_t>(datasets.size()) * options.measures.size();
  std::uint64_t sweep_resumed = 0;
  std::uint64_t sweep_dnf = 0;
  std::uint64_t sweep_failed = 0;
  obs::HealthState::Global().SetPhase("eval");
  obs::HealthState::Global().SetCells(0, sweep_total, 0);

  // Profiling covers the sweep only — setup and export I/O would otherwise
  // drown the kernel frames the profile exists to attribute.
  const bool profiling = !options.profile_out_path.empty() ||
                         !options.profile_trace_path.empty();
  if (profiling && !obs::Profiler::Global().Start()) {
    TSDIST_LOG(obs::LogLevel::kWarn, "profiler did not start",
               obs::F("reason", "already running or observability disabled"));
  }
  const bool heap_profiling = !options.heap_profile_out_path.empty();
  if (heap_profiling && !obs::HeapProfiler::Global().Start()) {
    // Unavailable (sanitizer build, non-glibc) or disabled: the export
    // below still writes a schema-valid header-only profile.
    TSDIST_LOG(obs::LogLevel::kWarn, "heap profiler did not start");
  }
  {
    // Scoped so the root span closes (and lands in the trace file) before
    // the exports below run.
    const obs::TraceSpan run_span("tsdist_eval.run");
    for (std::size_t i = 0; i < datasets.size() && !interrupted; ++i) {
      const obs::TraceSpan dataset_span(
          obs::TraceRecorder::Global().enabled()
              ? "eval.dataset/" + datasets[i].name()
              : std::string());
      if (options.csv) std::printf("%s", datasets[i].name().c_str());
      for (std::size_t j = 0; j < options.measures.size(); ++j) {
        const std::string& name = options.measures[j];
        CellOutcome cell;
        cell.dataset = datasets[i].name();
        cell.measure = name;
        obs::HealthState::Global().SetCurrentCell(cell.dataset + "/" + name);

        const auto resumed_it = finished.find(CellKey(cell.dataset, name));
        if (resumed_it != finished.end()) {
          cell = resumed_it->second;
          ++sweep_resumed;
          if (cell_counters[3] != nullptr) cell_counters[3]->Add(1);
        } else {
          // Per-cell budget token, chained to the process interrupt token:
          // SIGINT cancels everything, a budget expiry only this cell.
          CancellationToken budget(&g_interrupt);
          if (options.budget_sec > 0.0) budget.SetBudget(options.budget_sec);
          EvalOptions eval_options;
          eval_options.pruned = options.pruned;
          eval_options.cancel = &budget;
          eval_options.tile_rows = options.tile_rows;
          if (!options.checkpoint_dir.empty()) {
            eval_options.checkpoint_dir =
                options.checkpoint_dir + "/" + cell.dataset + "/" + name;
          }
          try {
            const EvalResult result =
                options.supervised
                    ? EvaluateTuned(name, ParamGridFor(name), datasets[i],
                                    engine, Registry::Global(), eval_options)
                    : EvaluateFixed(name, UnsupervisedParamsFor(name),
                                    datasets[i], engine, Registry::Global(),
                                    eval_options);
            cell.params = ToString(result.params);
            cell.status = result.status;
            cell.reason = result.reason;
            cell.train_accuracy = result.train_accuracy;
            cell.test_accuracy = result.test_accuracy;
          } catch (const std::exception& e) {
            cell.status = EvalStatus::kFailed;
            cell.reason = e.what();
          }
          if (cell.status == EvalStatus::kOk &&
              !std::isfinite(cell.test_accuracy)) {
            // A non-finite accuracy means every prediction drowned in NaN
            // distances — an upstream data or measure problem, not a result.
            cell.status = EvalStatus::kFailed;
            cell.reason = "non-finite test accuracy";
            cell.test_accuracy = 0.0;
          }
          if (cell.status == EvalStatus::kDnf) ++sweep_dnf;
          if (cell.status == EvalStatus::kFailed) ++sweep_failed;
          if (obs::Enabled()) {
            switch (cell.status) {
              case EvalStatus::kOk: cell_counters[0]->Add(1); break;
              case EvalStatus::kDnf: cell_counters[1]->Add(1); break;
              case EvalStatus::kFailed: cell_counters[2]->Add(1); break;
              case EvalStatus::kInterrupted: break;
            }
          }
          // Persist terminal outcomes. DNF and interrupted cells are *not*
          // logged: a rerun (with a bigger budget) should retry them from
          // their tile checkpoints.
          if (!cell_log_path.empty() &&
              (cell.status == EvalStatus::kOk ||
               cell.status == EvalStatus::kFailed)) {
            AppendJsonLogLine(cell_log_path, CellLogLine(cell));
          }
          ++cells_computed;
          // Keep the RSS gauges fresh for runs without a telemetry server
          // sampling in the background (peak would otherwise only be read
          // at exit, and current never).
          obs::UpdatePeakRssGauge();
          obs::UpdateCurrentRssGauge();
          if (options.selftest_cell_sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options.selftest_cell_sleep_ms));
          }
        }
        obs::HealthState::Global().SetCells(outcomes.size() + 1, sweep_total,
                                            sweep_resumed, sweep_dnf,
                                            sweep_failed);

        accuracies(i, j) = cell.status == EvalStatus::kOk
                               ? cell.test_accuracy
                               : std::numeric_limits<double>::quiet_NaN();
        if (options.csv) {
          if (cell.status == EvalStatus::kOk) {
            std::printf(",%.4f", cell.test_accuracy);
          } else {
            std::printf(",%s", ToString(cell.status));
          }
        } else if (cell.status == EvalStatus::kOk) {
          std::printf("%-22s %-14s %.4f\n", cell.dataset.c_str(), name.c_str(),
                      cell.test_accuracy);
        } else {
          std::printf("%-22s %-14s %s (%s)\n", cell.dataset.c_str(),
                      name.c_str(), ToString(cell.status),
                      cell.reason.c_str());
        }
        outcomes.push_back(std::move(cell));

        if (options.selftest_interrupt_after > 0 &&
            cells_computed >= options.selftest_interrupt_after) {
          options.selftest_interrupt_after = 0;  // fire once
          std::raise(SIGINT);
        }
        if (g_interrupt.cancel_requested()) {
          interrupted = true;
          break;
        }
      }
      if (options.csv) std::printf("\n");
    }
  }
  if (options.progress) {
    obs::SetActiveProgress(nullptr);
    progress.Finish();
  }
  if (profiling) obs::Profiler::Global().Stop();
  if (heap_profiling) {
    obs::HeapProfiler::Global().Stop();
    // Leak-style summary: allocations sampled during the sweep and still
    // live now. Stays on stderr so it never perturbs stdout tables.
    std::fputs(obs::HeapProfiler::Global().RenderLeakReport().c_str(),
               stderr);
  }
  TSDIST_LOG(obs::LogLevel::kInfo, "sweep finished",
             obs::F("done", static_cast<std::uint64_t>(outcomes.size())),
             obs::F("total", sweep_total), obs::F("resumed", sweep_resumed),
             obs::F("dnf", sweep_dnf), obs::F("failed", sweep_failed));
  if (interrupted) {
    TSDIST_LOG(obs::LogLevel::kWarn,
               "interrupted: checkpoints and metrics flushed, rerun to resume",
               obs::F("signal", static_cast<int>(g_signal)),
               obs::F("cells_done",
                      static_cast<std::uint64_t>(outcomes.size())));
  }

  if (options.pruned && obs::Enabled()) {
    // How much work the cascade actually avoided, from the same counters
    // that land in --metrics-json (see docs/PRUNING.md).
    auto& metrics = obs::MetricsRegistry::Global();
    const std::uint64_t candidates =
        metrics.GetCounter("tsdist.prune.candidates").Value();
    const std::uint64_t kim = metrics.GetCounter("tsdist.prune.lb_kim").Value();
    const std::uint64_t keogh =
        metrics.GetCounter("tsdist.prune.lb_keogh").Value();
    const std::uint64_t abandoned =
        metrics.GetCounter("tsdist.prune.abandoned").Value();
    const std::uint64_t full = metrics.GetCounter("tsdist.prune.full").Value();
    const double denom = candidates > 0 ? static_cast<double>(candidates) : 1.0;
    TSDIST_LOG(obs::LogLevel::kInfo, "pruning summary",
               obs::F("candidates", candidates),
               obs::F("lb_kim_pruned", kim),
               obs::F("lb_kim_pct", 100.0 * kim / denom),
               obs::F("lb_keogh_pruned", keogh),
               obs::F("lb_keogh_pct", 100.0 * keogh / denom),
               obs::F("abandoned", abandoned),
               obs::F("abandoned_pct", 100.0 * abandoned / denom),
               obs::F("full", full), obs::F("full_pct", 100.0 * full / denom));
  }

  // The CD diagram needs a complete, finite accuracy matrix; skip it when
  // any cell is missing (interrupt, DNF, failure).
  bool all_ok = !interrupted && outcomes.size() ==
                                    datasets.size() * options.measures.size();
  for (const CellOutcome& cell : outcomes) {
    all_ok = all_ok && cell.status == EvalStatus::kOk;
  }
  if (all_ok && !options.csv && datasets.size() >= 3 &&
      options.measures.size() >= 2) {
    const CdAnalysis analysis =
        AnalyzeRanks(accuracies, options.measures, 0.10);
    std::printf("\n");
    std::cout << RenderCdDiagram(analysis);
  }

  // Exports run on interrupted runs too — a flushed metrics file plus the
  // durable checkpoints is exactly what post-mortem debugging needs. The
  // final RSS sample keeps exit-time metrics dumps accurate even when no
  // telemetry server was sampling in the background.
  obs::HealthState::Global().SetPhase("export");
  obs::UpdatePeakRssGauge();
  int export_failures = 0;
  if (!options.results_json_path.empty()) {
    std::string error;
    if (!AtomicWriteFile(options.results_json_path,
                         ResultsToJson(outcomes, options), &error)) {
      TSDIST_LOG(obs::LogLevel::kError, "cannot write results JSON",
                 obs::F("path", options.results_json_path),
                 obs::F("error", error));
      ++export_failures;
    }
  }
  if (!options.metrics_json_path.empty() &&
      !WriteFileOrComplain(options.metrics_json_path,
                           obs::MetricsRegistry::Global().ToJson(),
                           "metrics JSON")) {
    ++export_failures;
  }
  if (!options.metrics_csv_path.empty() &&
      !WriteFileOrComplain(options.metrics_csv_path,
                           obs::MetricsRegistry::Global().ToCsv(),
                           "metrics CSV")) {
    ++export_failures;
  }
  if (!options.trace_json_path.empty() &&
      !WriteFileOrComplain(options.trace_json_path,
                           obs::TraceRecorder::Global().ToChromeJson(),
                           "trace JSON")) {
    ++export_failures;
  }
  if (!options.profile_out_path.empty() &&
      !obs::WriteProfileFolded(options.profile_out_path)) {
    ++export_failures;
  }
  if (!options.profile_trace_path.empty() &&
      !WriteFileOrComplain(options.profile_trace_path,
                           obs::Profiler::Global().RenderChromeTrace(),
                           "profile trace JSON")) {
    ++export_failures;
  }
  if (!options.heap_profile_out_path.empty() &&
      !obs::WriteHeapProfileFolded(options.heap_profile_out_path)) {
    ++export_failures;
  }

  // Orderly telemetry shutdown: last health phase for any final scrape,
  // then stop serving, then drain the log ring so the JSON sink is complete.
  obs::HealthState::Global().SetPhase("done");
  obs::HealthState::Global().SetCurrentCell("");
  obs::TraceSpool::Global().Stop();
  server.Stop();
  obs::Logger::Global().Flush();
  obs::Logger::Global().CloseJsonSink();

  if (interrupted) return 128 + static_cast<int>(g_signal);
  if (export_failures > 0) return 1;
  if (!outcomes.empty()) {
    bool all_failed = true;
    for (const CellOutcome& cell : outcomes) {
      all_failed = all_failed && cell.status == EvalStatus::kFailed;
    }
    // Partial failure is a report, not an error: the exit code flags only
    // the nothing-worked case (e.g. a typoed archive path failing every
    // load, or an injected fault on every cell).
    if (all_failed) return 1;
  }
  return 0;
}
