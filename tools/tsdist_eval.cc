// tsdist_eval: command-line driver for the evaluation pipeline.
//
// Runs any set of measures over the synthetic archive (or a real UCR
// dataset directory) and emits the per-dataset accuracy matrix as CSV,
// optionally with the statistical analysis. The scriptable entry point for
// users who want the paper's pipeline without writing C++.
//
// Observability (see docs/OBSERVABILITY.md):
//   --metrics-json <path>  dump the tsdist.metrics.v1 JSON after the run
//   --metrics-csv <path>   same aggregates as flat CSV
//   --trace-json <path>    record spans; dump Chrome trace-event JSON
//                          (open in chrome://tracing or ui.perfetto.dev)
//   --progress             live cells/sec + ETA status line on stderr
//
// Examples:
//   tsdist_eval --measures euclidean,lorentzian,nccc --csv
//   tsdist_eval --measures dtw,msm --supervised --progress
//   tsdist_eval --measures euclidean,dtw --metrics-json m.json
//               --trace-json t.json     (one line)
//   tsdist_eval --ucr ~/UCRArchive_2018 --dataset ECGFiveDays
//               --measures nccc,dtw     (one line)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/data/archive.h"
#include "src/data/ucr_loader.h"
#include "src/normalization/normalization.h"
#include "src/obs/obs.h"
#include "src/stats/ranking.h"

namespace {

struct Options {
  tsdist::ArchiveScale scale = tsdist::ArchiveScale::kSmall;
  std::vector<std::string> measures = {"euclidean", "lorentzian", "nccc"};
  std::string norm = "zscore";
  bool supervised = false;
  bool pruned = false;
  bool csv = false;
  std::string ucr_dir;
  std::string ucr_dataset;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string metrics_json_path;
  std::string metrics_csv_path;
  std::string trace_json_path;
  bool progress = false;
  bool help = false;
};

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

// Parses argv into `options`. On any malformed input — an unknown flag, a
// flag missing its value, or a bad enum value — prints a specific complaint
// to stderr and returns false (the caller exits non-zero with usage).
bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char** value) -> bool {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", arg.c_str());
        return false;
      }
      *value = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--scale") {
      if (!next(&v)) return false;
      if (std::strcmp(v, "tiny") == 0) {
        options->scale = tsdist::ArchiveScale::kTiny;
      } else if (std::strcmp(v, "medium") == 0) {
        options->scale = tsdist::ArchiveScale::kMedium;
      } else if (std::strcmp(v, "small") == 0) {
        options->scale = tsdist::ArchiveScale::kSmall;
      } else {
        std::fprintf(stderr, "--scale must be tiny, small, or medium (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--measures") {
      if (!next(&v)) return false;
      options->measures = SplitCommas(v);
      if (options->measures.empty()) {
        std::fprintf(stderr, "--measures needs a comma-separated list\n");
        return false;
      }
    } else if (arg == "--norm") {
      if (!next(&v)) return false;
      options->norm = v;
    } else if (arg == "--supervised") {
      options->supervised = true;
    } else if (arg == "--pruned") {
      options->pruned = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else if (arg == "--ucr") {
      if (!next(&v)) return false;
      options->ucr_dir = v;
    } else if (arg == "--dataset") {
      if (!next(&v)) return false;
      options->ucr_dataset = v;
    } else if (arg == "--threads") {
      if (!next(&v)) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--threads must be a non-negative integer (got '%s')\n", v);
        return false;
      }
      options->threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--metrics-json") {
      if (!next(&v)) return false;
      options->metrics_json_path = v;
    } else if (arg == "--metrics-csv") {
      if (!next(&v)) return false;
      options->metrics_csv_path = v;
    } else if (arg == "--trace-json") {
      if (!next(&v)) return false;
      options->trace_json_path = v;
    } else if (arg == "--progress") {
      options->progress = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage(std::FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s [--scale tiny|small|medium] [--measures m1,m2,...]\n"
      "          [--norm zscore|minmax|meannorm|mediannorm|unitlength|\n"
      "                  logistic|tanh|none] [--supervised] [--pruned]\n"
      "          [--csv] [--ucr <archive-dir> --dataset <Name>] [--threads N]\n"
      "          [--metrics-json <path>] [--metrics-csv <path>]\n"
      "          [--trace-json <path>] [--progress] [--help]\n"
      "\n"
      "  --pruned               classify through the lower-bound cascade\n"
      "                         (LB_Kim -> LB_Keogh -> early-abandoned DTW)\n"
      "                         instead of full dissimilarity matrices.\n"
      "                         Accuracies are identical; a prune-rate\n"
      "                         summary is printed to stderr after the run.\n"
      "\n"
      "observability:\n"
      "  --metrics-json <path>  write counters/gauges/histograms\n"
      "                         (tsdist.metrics.v1 schema) after the run\n"
      "  --metrics-csv <path>   the same aggregates as flat CSV\n"
      "  --trace-json <path>    record scoped spans and write Chrome\n"
      "                         trace-event JSON (chrome://tracing, Perfetto)\n"
      "  --progress             live cells/sec + ETA on stderr\n",
      prog);
}

bool WriteFileOrComplain(const std::string& path, const std::string& contents,
                         const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s file '%s' for writing\n", what,
                 path.c_str());
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsdist;
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  if (options.help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }

  // Validate measures up front.
  for (const auto& name : options.measures) {
    if (!Registry::Global().Contains(name)) {
      std::fprintf(stderr, "unknown measure '%s'; known measures:\n",
                   name.c_str());
      for (const auto& known : Registry::Global().Names()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
  }

  if (!options.trace_json_path.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }

  // Assemble the datasets.
  std::vector<Dataset> datasets;
  if (!options.ucr_dir.empty()) {
    if (options.ucr_dataset.empty()) {
      std::fprintf(stderr, "--ucr requires --dataset\n");
      return 2;
    }
    const LoadResult loaded =
        LoadUcrDataset(options.ucr_dir, options.ucr_dataset);
    if (!loaded.ok) {
      std::fprintf(stderr, "load failed: %s\n", loaded.error.c_str());
      return 1;
    }
    datasets.push_back(ZScoreNormalizer().Apply(loaded.dataset));
  } else {
    ArchiveOptions archive_options;
    archive_options.scale = options.scale;
    datasets = BuildArchive(archive_options);
  }
  // Optional re-normalization on top of the z-normalized base.
  if (options.norm != "zscore" && options.norm != "none") {
    const NormalizerPtr normalizer = MakeNormalizer(options.norm);
    if (normalizer == nullptr) {
      std::fprintf(stderr, "unknown normalization '%s'\n",
                   options.norm.c_str());
      return 2;
    }
    for (auto& d : datasets) d = normalizer->Apply(d);
  }

  // Total pairwise cells across the whole run, for the progress ETA. The
  // supervised path adds |grid| LOOCV passes per dataset/measure on top of
  // the test-vs-train pass. Per pass:
  //  * pruned: one progress tick per candidate examined, so train per test
  //    query and train-1 per LOOCV query;
  //  * full matrix: test*train cells, and for LOOCV an upper triangle when
  //    the measure is symmetric or the full n^2 matrix when it is not.
  std::uint64_t total_cells = 0;
  for (const auto& d : datasets) {
    const std::uint64_t train = d.train().size();
    const std::uint64_t test = d.test().size();
    for (const auto& m : options.measures) {
      total_cells += test * train;
      if (!options.supervised) continue;
      const std::uint64_t grid = ParamGridFor(m).size();
      if (options.pruned) {
        total_cells += grid * train * (train > 0 ? train - 1 : 0);
      } else {
        const MeasurePtr probe =
            Registry::Global().Create(m, UnsupervisedParamsFor(m));
        const bool symmetric = probe == nullptr || probe->symmetric();
        total_cells += grid * (symmetric ? (train * (train + 1)) / 2
                                         : train * train);
      }
    }
  }
  obs::ProgressReporter progress("tsdist_eval", total_cells);
  if (options.progress) {
    // Explicit --progress prints even when stderr is piped (the reporter
    // suppresses its `\r` frames on non-TTY stderr otherwise).
    progress.set_force(true);
    obs::SetActiveProgress(&progress);
  }

  const PairwiseEngine engine(options.threads);
  Matrix accuracies(datasets.size(), options.measures.size());
  if (options.csv) {
    std::printf("dataset");
    for (const auto& m : options.measures) std::printf(",%s", m.c_str());
    std::printf("\n");
  }
  {
    // Scoped so the root span closes (and lands in the trace file) before
    // the exports below run.
    const obs::TraceSpan run_span("tsdist_eval.run");
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      const obs::TraceSpan dataset_span(
          obs::TraceRecorder::Global().enabled()
              ? "eval.dataset/" + datasets[i].name()
              : std::string());
      if (options.csv) std::printf("%s", datasets[i].name().c_str());
      for (std::size_t j = 0; j < options.measures.size(); ++j) {
        const std::string& name = options.measures[j];
        const EvalOptions eval_options{.pruned = options.pruned};
        const EvalResult result =
            options.supervised
                ? EvaluateTuned(name, ParamGridFor(name), datasets[i], engine,
                                Registry::Global(), eval_options)
                : EvaluateFixed(name, UnsupervisedParamsFor(name), datasets[i],
                                engine, Registry::Global(), eval_options);
        accuracies(i, j) = result.test_accuracy;
        if (options.csv) {
          std::printf(",%.4f", result.test_accuracy);
        } else {
          std::printf("%-22s %-14s %.4f\n", datasets[i].name().c_str(),
                      name.c_str(), result.test_accuracy);
        }
      }
      if (options.csv) std::printf("\n");
    }
  }
  if (options.progress) {
    obs::SetActiveProgress(nullptr);
    progress.Finish();
  }

  if (options.pruned && obs::Enabled()) {
    // How much work the cascade actually avoided, from the same counters
    // that land in --metrics-json (see docs/PRUNING.md).
    auto& metrics = obs::MetricsRegistry::Global();
    const std::uint64_t candidates =
        metrics.GetCounter("tsdist.prune.candidates").Value();
    const std::uint64_t kim = metrics.GetCounter("tsdist.prune.lb_kim").Value();
    const std::uint64_t keogh =
        metrics.GetCounter("tsdist.prune.lb_keogh").Value();
    const std::uint64_t abandoned =
        metrics.GetCounter("tsdist.prune.abandoned").Value();
    const std::uint64_t full = metrics.GetCounter("tsdist.prune.full").Value();
    const double denom = candidates > 0 ? static_cast<double>(candidates) : 1.0;
    std::fprintf(stderr,
                 "pruning: %llu candidates | LB_Kim pruned %llu (%.1f%%) | "
                 "LB_Keogh pruned %llu (%.1f%%) | abandoned %llu (%.1f%%) | "
                 "full computations %llu (%.1f%%)\n",
                 static_cast<unsigned long long>(candidates),
                 static_cast<unsigned long long>(kim), 100.0 * kim / denom,
                 static_cast<unsigned long long>(keogh), 100.0 * keogh / denom,
                 static_cast<unsigned long long>(abandoned),
                 100.0 * abandoned / denom,
                 static_cast<unsigned long long>(full), 100.0 * full / denom);
  }

  if (!options.csv && datasets.size() >= 3 && options.measures.size() >= 2) {
    const CdAnalysis analysis =
        AnalyzeRanks(accuracies, options.measures, 0.10);
    std::printf("\n");
    std::cout << RenderCdDiagram(analysis);
  }

  if (!options.metrics_json_path.empty() &&
      !WriteFileOrComplain(options.metrics_json_path,
                           obs::MetricsRegistry::Global().ToJson(),
                           "metrics JSON")) {
    return 1;
  }
  if (!options.metrics_csv_path.empty() &&
      !WriteFileOrComplain(options.metrics_csv_path,
                           obs::MetricsRegistry::Global().ToCsv(),
                           "metrics CSV")) {
    return 1;
  }
  if (!options.trace_json_path.empty() &&
      !WriteFileOrComplain(options.trace_json_path,
                           obs::TraceRecorder::Global().ToChromeJson(),
                           "trace JSON")) {
    return 1;
  }
  return 0;
}
