#!/usr/bin/env python3
"""End-to-end smoke test of tsdist_eval's fault-tolerant runtime.

Drives the real binary as a child process through the failure modes the
in-process unit tests cannot exercise from outside:

 1. an injected hard kill (TSDIST_FAULT=ckpt.tile_write:N:exit) must exit
    with the distinct fault code 86, leaving a resumable checkpoint;
 2. rerunning the identical command must exit 0, actually resume finished
    cells (a rerun that silently recomputes everything is a vacuous pass),
    and produce per-cell results bit-identical to an uninterrupted baseline;
 3. a SIGINT (via the hidden --selftest-interrupt-after hook, which raises
    the real signal through the real handler) must exit 130 with flushed,
    schema-valid metrics and results files;
 4. resuming after the interrupt must report the pre-interrupt cells as
    resumed and match the baseline bit for bit;
 5. a tiny per-cell budget must record DNF cells while cheap cells still
    complete, with exit code 0 (partial failure is a report, not an error);
 6. the multi-process kill matrix: a coordinator killed mid-publish, a
    shard worker killed mid-shard (heartbeat fault exit), and a merge
    killed by its own fault site must each be recovered by a plain rerun,
    ending in a merged report that matches the baseline cell for cell.

Each phase records its completion; if any phase is skipped — an early
return, an unexpected exception, a conditional that falls through — the
harness fails instead of passing vacuously on the phases that did run.

Usage: resilience_smoke.py <tsdist_eval-binary> <scratch-dir>
Stdlib only; exits 0 on success, 1 with one message per failure.
"""

import glob
import json
import os
import shutil
import subprocess
import sys

import check_metrics_schema

COMMON = ["--scale", "tiny", "--measures", "euclidean,dtw", "--supervised"]
FAULT_EXIT = 86  # src/resilience/fault.h kFaultExitCode
FAILURES = []
PHASES = ["baseline", "hard-kill", "resume", "sigint", "resume-after-sigint",
          "budget-dnf", "kill-coordinator", "kill-worker", "kill-merge"]
COMPLETED = []


def fail(message):
    FAILURES.append(message)
    print(f"resilience_smoke: FAIL: {message}", file=sys.stderr)


def done(phase):
    COMPLETED.append(phase)


def run(binary, args, env_extra=None, timeout=600):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run([binary] + args, env=env, timeout=timeout,
                         stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                         text=True)
    return proc


def load_cells(path):
    """(dataset, measure) -> (params, train_accuracy, test_accuracy, status)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {
        (c["dataset"], c["measure"]):
            (c["params"], c["train_accuracy"], c["test_accuracy"], c["status"])
        for c in doc["cells"]
    }, doc


def check_schema(kind, path):
    errors = []
    doc = check_metrics_schema.load(errors, path)
    if doc is not None:
        if kind == "results":
            check_metrics_schema.check_results(errors, path, doc)
        else:
            check_metrics_schema.check_metrics(errors, path, doc)
    for message in errors:
        fail(f"{kind} schema: {message}")


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary, scratch = argv
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch)
    path = lambda name: os.path.join(scratch, name)

    # Uninterrupted baseline (no checkpointing): the reference results.
    proc = run(binary, COMMON + ["--results-json", path("baseline.json")])
    if proc.returncode != 0:
        fail(f"baseline run exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    baseline, _ = load_cells(path("baseline.json"))
    check_schema("results", path("baseline.json"))
    done("baseline")

    # 1. Injected hard kill mid-sweep: std::_Exit(86), no unwinding — the
    # in-process stand-in for SIGKILL. Durable tiles must survive it: an
    # empty checkpoint directory here would make the resume phase below a
    # vacuous from-scratch recomputation, so require on-disk state now.
    ckpt = path("ckpt_kill")
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt],
               env_extra={"TSDIST_FAULT": "ckpt.tile_write:40:exit"})
    if proc.returncode != FAULT_EXIT:
        fail(f"hard-kill run exited {proc.returncode}, expected {FAULT_EXIT}")
    if not glob.glob(os.path.join(ckpt, "**", "tiles.bin"), recursive=True):
        fail("hard kill left no durable tiles; the resume phase would pass "
             "vacuously")
    done("hard-kill")

    # 2. Identical rerun resumes and matches the baseline bit for bit. The
    # summary must confirm cells actually came back from the checkpoint.
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt,
                                 "--results-json", path("resumed.json")])
    if proc.returncode != 0:
        fail(f"resume run exited {proc.returncode}: {proc.stderr[-500:]}")
    else:
        resumed, doc = load_cells(path("resumed.json"))
        if resumed != baseline:
            diff = [k for k in baseline if resumed.get(k) != baseline[k]]
            fail(f"resumed cells differ from baseline at {diff[:5]}")
        if doc["summary"]["resumed"] < 1:
            fail("rerun after the hard kill resumed 0 cells — it recomputed "
                 "the sweep instead of resuming (vacuous pass)")
        check_schema("results", path("resumed.json"))
        done("resume")

    # 3. SIGINT through the real handler: exit 130 (128+SIGINT), flushed
    # metrics and results that still validate.
    ckpt2 = path("ckpt_int")
    proc = run(binary, COMMON + [
        "--checkpoint-dir", ckpt2, "--selftest-interrupt-after", "3",
        "--results-json", path("interrupted.json"),
        "--metrics-json", path("interrupted_metrics.json")])
    if proc.returncode != 130:
        fail(f"interrupted run exited {proc.returncode}, expected 130")
    check_schema("results", path("interrupted.json"))
    check_schema("metrics", path("interrupted_metrics.json"))
    _, doc = load_cells(path("interrupted.json"))
    if doc["summary"]["total"] != 3:
        fail(f"interrupted run recorded {doc['summary']['total']} cells, "
             f"expected 3")
    done("sigint")

    # 4. Resume after the interrupt: the 3 finished cells come back as
    # resumed, and the completed sweep matches the baseline.
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt2,
                                 "--results-json", path("resumed2.json")])
    if proc.returncode != 0:
        fail(f"post-interrupt resume exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
    else:
        resumed2, doc2 = load_cells(path("resumed2.json"))
        if resumed2 != baseline:
            diff = [k for k in baseline if resumed2.get(k) != baseline[k]]
            fail(f"post-interrupt cells differ from baseline at {diff[:5]}")
        if doc2["summary"]["resumed"] != 3:
            fail(f"post-interrupt run resumed {doc2['summary']['resumed']} "
                 f"cells, expected 3")
        done("resume-after-sigint")

    # 5. Budget DNF: dtw under a ~zero budget DNFs, euclidean (evaluated
    # first, before the budget token is consulted mid-matrix... it is also
    # budgeted, so use a budget tiny enough to kill dtw's LOOCV sweep but
    # generous for a single euclidean matrix). Exit code must stay 0.
    proc = run(binary, ["--scale", "tiny", "--measures", "euclidean,dtw",
                        "--supervised", "--budget-sec", "0.005",
                        "--results-json", path("budget.json")])
    if proc.returncode != 0:
        fail(f"budget run exited {proc.returncode}, expected 0")
    else:
        check_schema("results", path("budget.json"))
        _, doc3 = load_cells(path("budget.json"))
        statuses = {c["status"] for c in doc3["cells"]}
        if "dnf" not in statuses:
            fail(f"budget run produced no DNF cells (statuses: {statuses})")
        for cell in doc3["cells"]:
            if cell["status"] == "dnf" and not cell["reason"]:
                fail("a DNF cell carries no reason")
        done("budget-dnf")

    # 6. Multi-process kill matrix over the sharded runtime (see
    # shard_smoke.py for the full lifecycle; here each role is killed).
    shard = path("shard_matrix")
    coord = COMMON + ["--checkpoint-dir", shard, "--shard-coordinator", "3",
                      "--lease-ttl-sec", "0.5"]

    # 6a. Coordinator killed mid-publish: the manifest lands via atomic
    # rename, so whatever instant the kill hits, a rerun must converge on a
    # usable plan instead of tripping over torn state.
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    victim = subprocess.Popen([binary] + coord, env=env,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    victim.kill()
    victim.wait(timeout=60)
    proc = run(binary, coord)
    if proc.returncode != 0:
        fail(f"coordinator rerun after kill exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
    else:
        done("kill-coordinator")

    # 6b. Worker killed mid-shard: the heartbeat fault site fires in the
    # renewal thread only while a lease is held, so the std::_Exit(86)
    # always orphans a claimed shard. The slowed cells guarantee the sweep
    # is unfinished at the third heartbeat. A fresh worker must then watch
    # the lease go stale, reclaim at a higher fencing epoch, and drain the
    # remaining cells.
    proc = run(binary, COMMON + ["--checkpoint-dir", shard,
                                 "--shard-worker", "w0",
                                 "--selftest-cell-sleep-ms", "20"],
               env_extra={"TSDIST_FAULT": "shard.heartbeat:3:exit"})
    if proc.returncode != FAULT_EXIT:
        fail(f"killed worker exited {proc.returncode}, expected {FAULT_EXIT}")
    proc = run(binary, COMMON + ["--checkpoint-dir", shard,
                                 "--shard-worker", "w1"])
    if proc.returncode != 0:
        fail(f"rescue worker exited {proc.returncode}: {proc.stderr[-500:]}")
    elif not glob.glob(os.path.join(shard, "shards", "s*", "lease.e000002")):
        fail("no epoch-2 lease after the worker kill: nothing was actually "
             "reclaimed (vacuous recovery)")
    else:
        done("kill-worker")

    # 6c. Merge killed by its own fault site: nonzero exit, shard inputs
    # untouched (the merge is read-only over them), and a plain rerun
    # produces a report matching the baseline cell for cell.
    proc = run(binary, ["--checkpoint-dir", shard, "--shard-merge"],
               env_extra={"TSDIST_FAULT": "shard.merge:1:exit"})
    if proc.returncode != FAULT_EXIT:
        fail(f"killed merge exited {proc.returncode}, expected {FAULT_EXIT}")
    if os.path.exists(os.path.join(shard, "results.jsonl")):
        fail("killed merge left a results.jsonl behind")
    proc = run(binary, ["--checkpoint-dir", shard, "--shard-merge",
                        "--results-json", path("shard_matrix.json")])
    if proc.returncode != 0:
        fail(f"merge rerun exited {proc.returncode}: {proc.stderr[-500:]}")
    else:
        merged, _ = load_cells(path("shard_matrix.json"))
        if merged != baseline:
            diff = [k for k in baseline if merged.get(k) != baseline[k]]
            fail(f"merged cells differ from baseline at {diff[:5]}")
        check_schema("results", path("shard_matrix.json"))
        done("kill-merge")

    skipped = [p for p in PHASES if p not in COMPLETED]
    if skipped:
        fail(f"phases skipped: {skipped}")
    if FAILURES:
        print(f"resilience_smoke: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("resilience_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
