#!/usr/bin/env python3
"""End-to-end smoke test of tsdist_eval's fault-tolerant runtime.

Drives the real binary as a child process through the failure modes the
in-process unit tests cannot exercise from outside:

 1. an injected hard kill (TSDIST_FAULT=ckpt.tile_write:N:exit) must exit
    with the distinct fault code 86, leaving a resumable checkpoint;
 2. rerunning the identical command must exit 0 and produce per-cell
    results bit-identical to an uninterrupted baseline run;
 3. a SIGINT (via the hidden --selftest-interrupt-after hook, which raises
    the real signal through the real handler) must exit 130 with flushed,
    schema-valid metrics and results files;
 4. resuming after the interrupt must report the pre-interrupt cells as
    resumed and match the baseline bit for bit;
 5. a tiny per-cell budget must record DNF cells while cheap cells still
    complete, with exit code 0 (partial failure is a report, not an error).

Usage: resilience_smoke.py <tsdist_eval-binary> <scratch-dir>
Stdlib only; exits 0 on success, 1 with one message per failure.
"""

import json
import os
import shutil
import subprocess
import sys

import check_metrics_schema

COMMON = ["--scale", "tiny", "--measures", "euclidean,dtw", "--supervised"]
FAILURES = []


def fail(message):
    FAILURES.append(message)
    print(f"resilience_smoke: FAIL: {message}", file=sys.stderr)


def run(binary, args, env_extra=None, timeout=600):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run([binary] + args, env=env, timeout=timeout,
                         stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                         text=True)
    return proc


def load_cells(path):
    """(dataset, measure) -> (params, train_accuracy, test_accuracy, status)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {
        (c["dataset"], c["measure"]):
            (c["params"], c["train_accuracy"], c["test_accuracy"], c["status"])
        for c in doc["cells"]
    }, doc


def check_schema(kind, path):
    errors = []
    doc = check_metrics_schema.load(errors, path)
    if doc is not None:
        if kind == "results":
            check_metrics_schema.check_results(errors, path, doc)
        else:
            check_metrics_schema.check_metrics(errors, path, doc)
    for message in errors:
        fail(f"{kind} schema: {message}")


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary, scratch = argv
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch)
    path = lambda name: os.path.join(scratch, name)

    # Uninterrupted baseline (no checkpointing): the reference results.
    proc = run(binary, COMMON + ["--results-json", path("baseline.json")])
    if proc.returncode != 0:
        fail(f"baseline run exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    baseline, _ = load_cells(path("baseline.json"))
    check_schema("results", path("baseline.json"))

    # 1. Injected hard kill mid-sweep: std::_Exit(86), no unwinding — the
    # in-process stand-in for SIGKILL. Durable tiles must survive it.
    ckpt = path("ckpt_kill")
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt],
               env_extra={"TSDIST_FAULT": "ckpt.tile_write:40:exit"})
    if proc.returncode != 86:
        fail(f"hard-kill run exited {proc.returncode}, expected 86")

    # 2. Identical rerun resumes and matches the baseline bit for bit.
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt,
                                 "--results-json", path("resumed.json")])
    if proc.returncode != 0:
        fail(f"resume run exited {proc.returncode}: {proc.stderr[-500:]}")
    else:
        resumed, _ = load_cells(path("resumed.json"))
        if resumed != baseline:
            diff = [k for k in baseline if resumed.get(k) != baseline[k]]
            fail(f"resumed cells differ from baseline at {diff[:5]}")
        check_schema("results", path("resumed.json"))

    # 3. SIGINT through the real handler: exit 130 (128+SIGINT), flushed
    # metrics and results that still validate.
    ckpt2 = path("ckpt_int")
    proc = run(binary, COMMON + [
        "--checkpoint-dir", ckpt2, "--selftest-interrupt-after", "3",
        "--results-json", path("interrupted.json"),
        "--metrics-json", path("interrupted_metrics.json")])
    if proc.returncode != 130:
        fail(f"interrupted run exited {proc.returncode}, expected 130")
    check_schema("results", path("interrupted.json"))
    check_schema("metrics", path("interrupted_metrics.json"))
    _, doc = load_cells(path("interrupted.json"))
    if doc["summary"]["total"] != 3:
        fail(f"interrupted run recorded {doc['summary']['total']} cells, "
             f"expected 3")

    # 4. Resume after the interrupt: the 3 finished cells come back as
    # resumed, and the completed sweep matches the baseline.
    proc = run(binary, COMMON + ["--checkpoint-dir", ckpt2,
                                 "--results-json", path("resumed2.json")])
    if proc.returncode != 0:
        fail(f"post-interrupt resume exited {proc.returncode}: "
             f"{proc.stderr[-500:]}")
    else:
        resumed2, doc2 = load_cells(path("resumed2.json"))
        if resumed2 != baseline:
            diff = [k for k in baseline if resumed2.get(k) != baseline[k]]
            fail(f"post-interrupt cells differ from baseline at {diff[:5]}")
        if doc2["summary"]["resumed"] != 3:
            fail(f"post-interrupt run resumed {doc2['summary']['resumed']} "
                 f"cells, expected 3")

    # 5. Budget DNF: dtw under a ~zero budget DNFs, euclidean (evaluated
    # first, before the budget token is consulted mid-matrix... it is also
    # budgeted, so use a budget tiny enough to kill dtw's LOOCV sweep but
    # generous for a single euclidean matrix). Exit code must stay 0.
    proc = run(binary, ["--scale", "tiny", "--measures", "euclidean,dtw",
                        "--supervised", "--budget-sec", "0.005",
                        "--results-json", path("budget.json")])
    if proc.returncode != 0:
        fail(f"budget run exited {proc.returncode}, expected 0")
    else:
        check_schema("results", path("budget.json"))
        _, doc3 = load_cells(path("budget.json"))
        statuses = {c["status"] for c in doc3["cells"]}
        if "dnf" not in statuses:
            fail(f"budget run produced no DNF cells (statuses: {statuses})")
        for cell in doc3["cells"]:
            if cell["status"] == "dnf" and not cell["reason"]:
                fail("a DNF cell carries no reason")

    if FAILURES:
        print(f"resilience_smoke: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("resilience_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
