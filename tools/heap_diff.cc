// Heap-profile diff gate: compares two tsdist.heapprofile.v1 collapsed-stack
// profiles (tsdist_eval/tsdist_bench --heap-profile-out, or /heapz?dump) and
// reports per-stack live-share movement.
//
//   heap_diff new.folded baseline.folded [--top 20]
//             [--max-grow-pp 25] [--min-live-bytes 65536] [--warn-only]
//
// For every stack the tool computes its live share — the stack's live bytes
// as a fraction of all live bytes — in both profiles, plus the cumulative
// share for context. The report lists the --top movers ranked by |delta
// live share| in percentage points. The gate FAILS (exit 1) when any
// stack's live share grows by more than --max-grow-pp percentage points:
// one call site suddenly owning that much more of the retained heap is how
// leaks and cache blowups look. Sampling noise between identical runs moves
// shares by a few points at most, so the default 25 pp keeps same-binary
// comparisons green.
//
// With fewer than --min-live-bytes live bytes in either profile, shares are
// dominated by sampling noise (or the profiler was unavailable — sanitizer
// builds emit header-only profiles): the comparison is printed but always
// exits 0.
//
// Exit codes: 0 clean (or --warn-only / too little live data), 1 gate
// failure, 2 usage or file errors.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct HeapProfile {
  std::uint64_t samples = 0;  // from the header
  std::uint64_t dropped = 0;
  std::uint64_t interval_bytes = 0;
  std::uint64_t live_total = 0;  // sum of body live bytes (denominator)
  std::uint64_t cum_total = 0;   // sum of body cumulative bytes
  struct Counts {
    std::uint64_t live = 0;
    std::uint64_t cum = 0;
  };
  std::map<std::string, Counts> stacks;
};

struct Options {
  std::string new_path;
  std::string baseline_path;
  int top = 20;
  double max_grow_pp = 25.0;
  std::uint64_t min_live_bytes = 64 * 1024;
  bool warn_only = false;
};

bool LoadHeapProfile(const std::string& path, HeapProfile* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("tsdist.heapprofile.v1") != std::string::npos) {
        saw_header = true;
        std::istringstream header(line.substr(1));
        std::string token;
        while (header >> token) {
          const std::size_t eq = token.find('=');
          if (eq == std::string::npos) continue;
          const std::string key = token.substr(0, eq);
          const std::uint64_t value =
              std::strtoull(token.c_str() + eq + 1, nullptr, 10);
          if (key == "samples") out->samples = value;
          else if (key == "dropped") out->dropped = value;
          else if (key == "interval_bytes") out->interval_bytes = value;
        }
      }
      continue;
    }
    // "<stack> <live> <cum>": two numeric columns after the stack.
    const std::size_t sp2 = line.rfind(' ');
    if (sp2 == std::string::npos || sp2 + 1 >= line.size()) {
      *error = path + ": malformed line '" + line + "'";
      return false;
    }
    const std::size_t sp1 = line.rfind(' ', sp2 - 1);
    if (sp1 == std::string::npos || sp1 == 0) {
      *error = path + ": malformed line '" + line + "'";
      return false;
    }
    const std::uint64_t live =
        std::strtoull(line.c_str() + sp1 + 1, nullptr, 10);
    const std::uint64_t cum =
        std::strtoull(line.c_str() + sp2 + 1, nullptr, 10);
    if (cum == 0) continue;
    HeapProfile::Counts& c = out->stacks[line.substr(0, sp1)];
    c.live += live;
    c.cum += cum;
    out->live_total += live;
    out->cum_total += cum;
  }
  if (!saw_header) {
    *error = path + ": missing '# tsdist.heapprofile.v1 ...' header";
    return false;
  }
  return true;
}

double SharePct(std::uint64_t part, std::uint64_t denom) {
  if (denom == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(denom);
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "heap_diff: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--top") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->top = std::max(1, std::atoi(v));
    } else if (arg == "--max-grow-pp") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->max_grow_pp = std::atof(v);
    } else if (arg == "--min-live-bytes") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      opt->min_live_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--warn-only") {
      opt->warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "heap_diff: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "heap_diff: need <new.folded> <baseline.folded>\n";
    return false;
  }
  opt->new_path = positional[0];
  opt->baseline_path = positional[1];
  return true;
}

// Leaf-biased display label: the last up-to-3 frames tell a human which
// call site this is without printing a 15-frame stack.
std::string StackLabel(const std::string& stack) {
  std::size_t pos = stack.size();
  for (int i = 0; i < 3 && pos != std::string::npos && pos > 0; ++i) {
    pos = stack.rfind(';', pos - 1);
  }
  std::string label =
      pos == std::string::npos ? stack : "..." + stack.substr(pos + 1);
  if (label.size() > 56) label = label.substr(0, 53) + "...";
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    std::cerr << "usage: heap_diff <new.folded> <baseline.folded>\n"
                 "       [--top N] [--max-grow-pp P] [--min-live-bytes N]\n"
                 "       [--warn-only]\n";
    return 2;
  }

  HeapProfile fresh, base;
  std::string error;
  if (!LoadHeapProfile(opt.new_path, &fresh, &error) ||
      !LoadHeapProfile(opt.baseline_path, &base, &error)) {
    std::cerr << "heap_diff: " << error << "\n";
    return 2;
  }

  std::printf("heap_diff: %s (%llu live bytes) vs baseline %s (%llu live "
              "bytes)\n",
              opt.new_path.c_str(),
              static_cast<unsigned long long>(fresh.live_total),
              opt.baseline_path.c_str(),
              static_cast<unsigned long long>(base.live_total));

  std::set<std::string> stacks;
  for (const auto& [stack, counts] : fresh.stacks) stacks.insert(stack);
  for (const auto& [stack, counts] : base.stacks) stacks.insert(stack);

  struct Mover {
    std::string stack;
    double base_live_pct;
    double new_live_pct;
    double base_cum_pct;
    double new_cum_pct;
  };
  std::vector<Mover> movers;
  movers.reserve(stacks.size());
  for (const std::string& stack : stacks) {
    const auto fit = fresh.stacks.find(stack);
    const auto bit = base.stacks.find(stack);
    Mover m;
    m.stack = stack;
    m.new_live_pct = SharePct(
        fit == fresh.stacks.end() ? 0 : fit->second.live, fresh.live_total);
    m.base_live_pct = SharePct(
        bit == base.stacks.end() ? 0 : bit->second.live, base.live_total);
    m.new_cum_pct = SharePct(fit == fresh.stacks.end() ? 0 : fit->second.cum,
                             fresh.cum_total);
    m.base_cum_pct = SharePct(bit == base.stacks.end() ? 0 : bit->second.cum,
                              base.cum_total);
    movers.push_back(std::move(m));
  }
  std::sort(movers.begin(), movers.end(), [](const Mover& a, const Mover& b) {
    const double da = std::abs(a.new_live_pct - a.base_live_pct);
    const double db = std::abs(b.new_live_pct - b.base_live_pct);
    if (da != db) return da > db;
    return a.stack < b.stack;
  });

  std::printf("%-56s %9s %9s %9s %9s %9s\n", "stack (leaf-most frames)",
              "live0%", "live1%", "dlive", "cum0%", "cum1%");
  const std::size_t shown =
      std::min(movers.size(), static_cast<std::size_t>(opt.top));
  int growers = 0;
  double worst_growth = 0.0;
  std::string worst_stack;
  for (const Mover& m : movers) {
    const double delta = m.new_live_pct - m.base_live_pct;
    if (delta > worst_growth) {
      worst_growth = delta;
      worst_stack = m.stack;
    }
    if (delta > opt.max_grow_pp) ++growers;
  }
  for (std::size_t i = 0; i < shown; ++i) {
    const Mover& m = movers[i];
    std::printf("%-56s %8.2f%% %8.2f%% %+8.2f%% %8.2f%% %8.2f%%\n",
                StackLabel(m.stack).c_str(), m.base_live_pct, m.new_live_pct,
                m.new_live_pct - m.base_live_pct, m.base_cum_pct,
                m.new_cum_pct);
  }
  if (movers.size() > shown) {
    std::printf("  ... %zu more stack(s); rerun with --top %zu\n",
                movers.size() - shown, movers.size());
  }

  const std::uint64_t min_live =
      std::min(fresh.live_total, base.live_total);
  if (min_live < opt.min_live_bytes) {
    std::printf("heap_diff: only %llu live bytes (< %llu) — shares too "
                "noisy to gate, exiting 0\n",
                static_cast<unsigned long long>(min_live),
                static_cast<unsigned long long>(opt.min_live_bytes));
    return 0;
  }
  if (growers > 0) {
    std::printf("heap_diff: %d stack(s) grew live share by more than "
                "%.1f pp (worst: %s, +%.1f pp)%s\n",
                growers, opt.max_grow_pp, StackLabel(worst_stack).c_str(),
                worst_growth, opt.warn_only ? " (warn-only: exiting 0)" : "");
    return opt.warn_only ? 0 : 1;
  }
  std::printf("heap_diff: no stack grew live share beyond %.1f pp "
              "(worst: %s%.1f pp)\n",
              opt.max_grow_pp, worst_growth > 0.0 ? "+" : "", worst_growth);
  return 0;
}
