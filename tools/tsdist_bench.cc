// Continuous-benchmarking orchestrator: runs a named subset of the bench
// binaries at a chosen scale and aggregates their tsdist.bench.v2 reports
// into one suite JSON.
//
//   tsdist_bench --scale smoke --repeat 3 --out suite.json
//
// Each bench runs as a subprocess with TSDIST_SCALE / TSDIST_THREADS /
// TSDIST_BENCH_REPEAT / TSDIST_BENCH_WARMUP / TSDIST_BENCH_JSON set; its
// stdout lands in <artifacts>/<bench>.log and its v2 report in
// <artifacts>/BENCH_<bench>.json. The suite file embeds every per-bench
// report verbatim plus the orchestrator's own run manifest, so one artifact
// captures the whole run's provenance (git SHA, compiler, CPU, scale,
// repeat policy). bench_compare consumes two suite files; see
// docs/BENCHMARKING.md.
//
// Scales:
//   smoke  TSDIST_SCALE=tiny, fast subset — CI-friendly (seconds);
//   paper  TSDIST_SCALE=small, every table/figure reproduction (minutes).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

#include "src/core/thread_pool.h"
#include "src/data/archive.h"
#include "src/obs/expo_server.h"
#include "src/obs/health.h"
#include "src/obs/heap_profiler.h"
#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/obs/runinfo.h"
#include "src/obs/trace.h"
#include "src/obs/trace_spool.h"

namespace {

namespace fs = std::filesystem;

// All bench binaries that speak the bench_common / tsdist.bench.v2 protocol
// (bench_micro_distance uses google-benchmark and is orchestrated
// separately, if at all).
const std::vector<std::string>& AllBenches() {
  static const std::vector<std::string> kAll = {
      "bench_table1_inventory",    "bench_fig1_normalizations",
      "bench_table2_lockstep",     "bench_fig2_lockstep_ranks",
      "bench_fig3_norm_ranks",     "bench_table3_sliding",
      "bench_fig4_nccc_ranks",     "bench_table5_elastic",
      "bench_fig5_fig6_elastic_ranks", "bench_table6_kernel",
      "bench_fig7_fig8_kernel_ranks",  "bench_table7_embedding",
      "bench_fig9_acc_runtime",    "bench_fig10_convergence",
      "bench_ablation_lower_bounds", "bench_ablation_variants",
      "bench_ablation_clustering", "bench_ablation_indexing",
      "bench_ext_svm",             "bench_ext_multivariate",
      "bench_kernel_lockstep",
  };
  return kAll;
}

// Smoke subset: lock-step/sliding reproductions that finish in seconds at
// tiny scale, plus the inventory check. Elastic/kernel LOOCV benches are
// paper-scale only.
const std::vector<std::string>& SmokeBenches() {
  static const std::vector<std::string> kSmoke = {
      "bench_table1_inventory", "bench_fig1_normalizations",
      "bench_fig3_norm_ranks",  "bench_fig4_nccc_ranks",
      "bench_table3_sliding",   "bench_kernel_lockstep",
  };
  return kSmoke;
}

struct Options {
  std::string scale = "smoke";  // smoke | paper
  std::vector<std::string> benches;  // empty = scale default
  int repeat = 1;
  int warmup = 0;
  std::string out;
  std::string bindir;
  std::string artifacts;
  std::string profile_out;  // merged folded profile across all benches
  std::string heap_profile_out;  // merged heap profile across all benches
  int serve_port = -1;  // -1 = no telemetry server; 0 = ephemeral port
  bool trace_spool = false;  // spool orchestrator spans to <artifacts>/trace
  bool list = false;
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintUsage() {
  std::cout <<
      "usage: tsdist_bench [options]\n"
      "  --scale smoke|paper   bench subset + archive scale (default smoke)\n"
      "  --benches a,b,c       explicit bench list (overrides --scale set)\n"
      "  --repeat N            measured iterations per case (default 1)\n"
      "  --warmup N            warmup iterations per case (default 0)\n"
      "  --out FILE            aggregated suite JSON (default\n"
      "                        <artifacts>/suite.json)\n"
      "  --bindir DIR          bench binaries (default: <exe dir>/../bench)\n"
      "  --artifacts DIR       per-bench logs + reports (default\n"
      "                        ./tsdist_bench_artifacts)\n"
      "  --serve PORT          embedded telemetry HTTP server on\n"
      "                        127.0.0.1:PORT (0 = ephemeral): /metrics,\n"
      "                        /healthz, /runinfo, /logz\n"
      "  --profile-out FILE    sample every bench subprocess (via\n"
      "                        TSDIST_PROFILE_OUT) and merge the per-bench\n"
      "                        folded profiles into FILE; the per-bench\n"
      "                        captures stay in <artifacts>/PROFILE_*.folded\n"
      "  --heap-profile-out FILE  heap-sample every bench subprocess (via\n"
      "                        TSDIST_HEAP_PROFILE_OUT) and merge the\n"
      "                        per-bench tsdist.heapprofile.v1 captures into\n"
      "                        FILE; per-bench files stay in\n"
      "                        <artifacts>/HEAP_*.folded\n"
      "  --trace-spool         append the orchestrator's spans continuously\n"
      "                        to <artifacts>/trace/bench.trace.jsonl\n"
      "                        (tsdist.tracespool.v1; docs/TRACING.md)\n"
      "  --list                print the resolved bench list and exit\n";
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tsdist_bench: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      opt->scale = v;
      if (opt->scale != "smoke" && opt->scale != "paper") {
        std::cerr << "tsdist_bench: unknown scale '" << opt->scale << "'\n";
        return false;
      }
    } else if (arg == "--benches") {
      const char* v = next("--benches");
      if (v == nullptr) return false;
      opt->benches = SplitCommas(v);
    } else if (arg == "--repeat") {
      const char* v = next("--repeat");
      if (v == nullptr) return false;
      opt->repeat = std::max(1, std::atoi(v));
    } else if (arg == "--warmup") {
      const char* v = next("--warmup");
      if (v == nullptr) return false;
      opt->warmup = std::max(0, std::atoi(v));
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out = v;
    } else if (arg == "--bindir") {
      const char* v = next("--bindir");
      if (v == nullptr) return false;
      opt->bindir = v;
    } else if (arg == "--artifacts") {
      const char* v = next("--artifacts");
      if (v == nullptr) return false;
      opt->artifacts = v;
    } else if (arg == "--heap-profile-out") {
      const char* v = next("--heap-profile-out");
      if (v == nullptr) return false;
      opt->heap_profile_out = v;
    } else if (arg == "--profile-out") {
      const char* v = next("--profile-out");
      if (v == nullptr) return false;
      opt->profile_out = v;
    } else if (arg == "--serve") {
      const char* v = next("--serve");
      if (v == nullptr) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || parsed > 65535) {
        std::cerr << "tsdist_bench: --serve must be a port in [0, 65535] "
                     "(got '" << v << "')\n";
        return false;
      }
      opt->serve_port = static_cast<int>(parsed);
    } else if (arg == "--trace-spool") {
      opt->trace_spool = true;
    } else if (arg == "--list") {
      opt->list = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::cerr << "tsdist_bench: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

// Accumulator for merging the per-bench folded profiles into one suite-wide
// profile: identical stacks sum their counts; header tallies (samples,
// dropped, threads) add up, and the sampling interval is taken from the
// first capture (every subprocess uses the same default).
struct FoldedAccumulator {
  std::map<std::string, std::uint64_t> stacks;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t interval_us = 0;
  std::uint64_t threads = 0;
};

bool MergeFoldedFile(const std::string& path, FoldedAccumulator* acc) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string token;
      while (header >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = token.substr(0, eq);
        const std::uint64_t value =
            std::strtoull(token.c_str() + eq + 1, nullptr, 10);
        if (key == "samples") {
          acc->samples += value;
        } else if (key == "dropped") {
          acc->dropped += value;
        } else if (key == "threads") {
          acc->threads += value;
        } else if (key == "interval_us" && acc->interval_us == 0) {
          acc->interval_us = value;
        }
      }
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) continue;
    acc->stacks[line.substr(0, sp)] +=
        std::strtoull(line.c_str() + sp + 1, nullptr, 10);
  }
  return true;
}

// Heap variant of FoldedAccumulator: heap rows carry two counts (live
// bytes, then cumulative bytes) and the header byte totals are recomputed
// from the merged rows so they always match the column sums.
struct HeapFoldedAccumulator {
  struct Counts {
    std::uint64_t live = 0;
    std::uint64_t cum = 0;
  };
  std::map<std::string, Counts> stacks;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t interval_bytes = 0;
};

bool MergeHeapFoldedFile(const std::string& path,
                         HeapFoldedAccumulator* acc) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string token;
      while (header >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = token.substr(0, eq);
        const std::uint64_t value =
            std::strtoull(token.c_str() + eq + 1, nullptr, 10);
        if (key == "samples") {
          acc->samples += value;
        } else if (key == "dropped") {
          acc->dropped += value;
        } else if (key == "interval_bytes" && acc->interval_bytes == 0) {
          acc->interval_bytes = value;
        }
      }
      continue;
    }
    // "<stack> <live> <cum>": split off the last two fields.
    const std::size_t sp2 = line.rfind(' ');
    if (sp2 == std::string::npos || sp2 + 1 >= line.size()) continue;
    const std::size_t sp1 = line.rfind(' ', sp2 - 1);
    if (sp1 == std::string::npos || sp1 == 0) continue;
    HeapFoldedAccumulator::Counts& c = acc->stacks[line.substr(0, sp1)];
    c.live += std::strtoull(line.c_str() + sp1 + 1, nullptr, 10);
    c.cum += std::strtoull(line.c_str() + sp2 + 1, nullptr, 10);
  }
  return true;
}

bool WriteMergedHeapProfile(const std::string& path,
                            const HeapFoldedAccumulator& acc) {
  std::vector<std::pair<std::string, HeapFoldedAccumulator::Counts>> rows(
      acc.stacks.begin(), acc.stacks.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.live != b.second.live) return a.second.live > b.second.live;
    if (a.second.cum != b.second.cum) return a.second.cum > b.second.cum;
    return a.first < b.first;
  });
  std::uint64_t live = 0, cum = 0;
  for (const auto& [stack, counts] : rows) {
    live += counts.live;
    cum += counts.cum;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << "# " << tsdist::obs::kHeapProfileSchema << " samples=" << acc.samples
      << " dropped=" << acc.dropped << " live_bytes=" << live
      << " cumulative_bytes=" << cum
      << " interval_bytes=" << acc.interval_bytes << "\n";
  for (const auto& [stack, counts] : rows) {
    out << stack << " " << counts.live << " " << counts.cum << "\n";
  }
  return static_cast<bool>(out);
}

bool WriteMergedProfile(const std::string& path,
                        const FoldedAccumulator& acc) {
  std::vector<std::pair<std::string, std::uint64_t>> rows(acc.stacks.begin(),
                                                          acc.stacks.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::ofstream out(path);
  if (!out) return false;
  out << "# " << tsdist::obs::kProfileSchema << " samples=" << acc.samples
      << " dropped=" << acc.dropped << " interval_us=" << acc.interval_us
      << " threads=" << acc.threads << "\n";
  for (const auto& [stack, count] : rows) {
    out << stack << " " << count << "\n";
  }
  return static_cast<bool>(out);
}

// Re-indents a serialized JSON document by `pad` spaces so embedded reports
// stay readable inside the suite array. Purely cosmetic.
std::string Indent(const std::string& json, int pad) {
  const std::string prefix(static_cast<std::size_t>(pad), ' ');
  std::string out;
  out.reserve(json.size());
  std::istringstream is(json);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!first) out += "\n" + prefix;
    out += line;
    first = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage();
    return 2;
  }

  const std::vector<std::string>& benches =
      !opt.benches.empty() ? opt.benches
      : opt.scale == "paper" ? AllBenches()
                             : SmokeBenches();
  if (opt.list) {
    for (const auto& b : benches) std::cout << b << "\n";
    return 0;
  }

  if (opt.bindir.empty()) {
    // Default layout: tools/tsdist_bench and bench/bench_* share one build
    // tree.
    opt.bindir = (fs::path(argv[0]).parent_path() / ".." / "bench").string();
  }
  if (opt.artifacts.empty()) opt.artifacts = "tsdist_bench_artifacts";
  if (opt.out.empty()) opt.out = opt.artifacts + "/suite.json";

  std::error_code ec;
  fs::create_directories(opt.artifacts, ec);
  if (ec) {
    std::cerr << "tsdist_bench: cannot create " << opt.artifacts << ": "
              << ec.message() << "\n";
    return 2;
  }

  const std::string archive_scale = opt.scale == "paper" ? "small" : "tiny";

  // Telemetry: /healthz names the bench currently running; /runinfo carries
  // the orchestrator's manifest. The per-bench subprocesses have their own
  // metrics; the server exposes the orchestrator's view (peak RSS, health).
  tsdist::obs::ExpoServer server;
  if (opt.serve_port >= 0) {
    tsdist::obs::ExpoServer::Options server_options;
    server_options.port = opt.serve_port;
    server_options.sampler = tsdist::UpdatePoolLiveGauges;
    std::string error;
    if (!server.Start(server_options, &error)) {
      std::cerr << "tsdist_bench: cannot start telemetry server: " << error
                << "\n";
      return 2;
    }
    server.SetRunInfoJson(
        tsdist::obs::ManifestToJson(
            tsdist::obs::CollectRunManifest(
                /*threads=*/0, tsdist::ArchiveOptions{}.seed, archive_scale),
            0) +
        "\n");
  }
  tsdist::obs::HealthState::Global().SetPhase("bench");

  if (opt.trace_spool) {
    tsdist::obs::TraceContext context;
    context.role = "bench";
    context.run_id = tsdist::obs::TraceRunIdFromBytes(opt.artifacts);
    tsdist::obs::TraceRecorder::Global().SetContext(context);
    tsdist::obs::TraceSpoolOptions spool_options;
    spool_options.dir = opt.artifacts + "/trace";
    spool_options.proc = "bench";
    std::string error;
    if (!tsdist::obs::TraceSpool::Global().Start(spool_options, &error)) {
      std::cerr << "tsdist_bench: cannot start trace spool: " << error
                << "\n";
      return 2;
    }
  }

  setenv("TSDIST_SCALE", archive_scale.c_str(), 1);
  setenv("TSDIST_BENCH_JSON", opt.artifacts.c_str(), 1);
  setenv("TSDIST_BENCH_REPEAT", std::to_string(opt.repeat).c_str(), 1);
  setenv("TSDIST_BENCH_WARMUP", std::to_string(opt.warmup).c_str(), 1);
  // Each profiled bench writes its own capture; anything inherited from the
  // caller's environment must not leak into un-profiled runs.
  unsetenv("TSDIST_PROFILE_OUT");
  unsetenv("TSDIST_HEAP_PROFILE_OUT");

  std::cout << "tsdist_bench: " << benches.size() << " benches, scale "
            << opt.scale << " (archive " << archive_scale << "), repeat "
            << opt.repeat << ", warmup " << opt.warmup << "\n";

  struct BenchOutcome {
    std::string name;
    int exit_code = 0;
    double wall_ms = 0.0;
    std::string report_json;  // verbatim v2 report
  };
  std::vector<BenchOutcome> outcomes;
  bool any_failed = false;

  std::uint64_t benches_done = 0;
  for (const auto& bench : benches) {
    tsdist::obs::HealthState::Global().SetCurrentCell(bench);
    tsdist::obs::HealthState::Global().SetCells(benches_done, benches.size(),
                                                0);
    BenchOutcome outcome;
    outcome.name = bench;
    const fs::path bin = fs::path(opt.bindir) / bench;
    const std::string log = opt.artifacts + "/" + bench + ".log";
    if (!opt.profile_out.empty()) {
      const std::string folded =
          opt.artifacts + "/PROFILE_" + bench + ".folded";
      setenv("TSDIST_PROFILE_OUT", folded.c_str(), 1);
    }
    if (!opt.heap_profile_out.empty()) {
      const std::string folded =
          opt.artifacts + "/HEAP_" + bench + ".folded";
      setenv("TSDIST_HEAP_PROFILE_OUT", folded.c_str(), 1);
    }
    const std::string cmd = ShellQuote(bin.string()) + " > " +
                            ShellQuote(log) + " 2>&1";
    std::cout << "  " << bench << " ... " << std::flush;
    const std::uint64_t t0 = tsdist::obs::NowNs();
    int rc = 0;
    {
      tsdist::obs::TraceSpan bench_span("bench.run/" + bench, "bench");
      bench_span.Arg("bench", bench);
      rc = std::system(cmd.c_str());
      bench_span.Arg("exit_code",
                     static_cast<std::int64_t>(rc == -1 ? -1
                                                        : WEXITSTATUS(rc)));
    }
    outcome.wall_ms =
        static_cast<double>(tsdist::obs::NowNs() - t0) / 1e6;
    outcome.exit_code = rc == -1 ? -1 : WEXITSTATUS(rc);
    if (outcome.exit_code != 0) {
      any_failed = true;
      std::cout << "FAILED (exit " << outcome.exit_code << ", see " << log
                << ")\n";
    } else {
      const std::string report_path =
          opt.artifacts + "/BENCH_" + bench + ".json";
      std::ifstream in(report_path);
      if (!in) {
        any_failed = true;
        outcome.exit_code = -2;
        std::cout << "FAILED (no report at " << report_path << ")\n";
      } else {
        std::ostringstream ss;
        ss << in.rdbuf();
        outcome.report_json = ss.str();
        try {
          tsdist::obs::ParseJson(outcome.report_json);
        } catch (const std::exception& e) {
          any_failed = true;
          outcome.exit_code = -3;
          std::cout << "FAILED (unparseable report: " << e.what() << ")\n";
        }
        if (outcome.exit_code == 0) {
          std::printf("ok (%.0f ms)\n", outcome.wall_ms);
        }
      }
    }
    outcomes.push_back(std::move(outcome));
    ++benches_done;
  }
  tsdist::obs::HealthState::Global().SetCurrentCell("");
  tsdist::obs::HealthState::Global().SetCells(benches_done, benches.size(), 0);
  tsdist::obs::HealthState::Global().SetPhase("export");

  if (!opt.profile_out.empty()) {
    FoldedAccumulator acc;
    std::size_t merged = 0;
    for (const auto& outcome : outcomes) {
      const std::string folded =
          opt.artifacts + "/PROFILE_" + outcome.name + ".folded";
      if (MergeFoldedFile(folded, &acc)) ++merged;
    }
    if (!WriteMergedProfile(opt.profile_out, acc)) {
      std::cerr << "tsdist_bench: cannot write " << opt.profile_out << "\n";
      any_failed = true;
    } else {
      std::cout << "tsdist_bench: wrote " << opt.profile_out << " ("
                << acc.samples << " samples from " << merged
                << " benches)\n";
    }
  }

  if (!opt.heap_profile_out.empty()) {
    HeapFoldedAccumulator acc;
    std::size_t merged = 0;
    for (const auto& outcome : outcomes) {
      const std::string folded =
          opt.artifacts + "/HEAP_" + outcome.name + ".folded";
      if (MergeHeapFoldedFile(folded, &acc)) ++merged;
    }
    if (!WriteMergedHeapProfile(opt.heap_profile_out, acc)) {
      std::cerr << "tsdist_bench: cannot write " << opt.heap_profile_out
                << "\n";
      any_failed = true;
    } else {
      std::cout << "tsdist_bench: wrote " << opt.heap_profile_out << " ("
                << acc.samples << " heap samples from " << merged
                << " benches)\n";
    }
  }

  // The suite manifest records the orchestrator's own provenance; the
  // embedded reports carry their (identical) per-process manifests too.
  const tsdist::obs::RunManifest manifest = tsdist::obs::CollectRunManifest(
      /*threads=*/0, tsdist::ArchiveOptions{}.seed, archive_scale);

  std::ofstream out(opt.out);
  if (!out) {
    TSDIST_LOG(tsdist::obs::LogLevel::kError, "cannot write suite report",
               tsdist::obs::F("path", opt.out));
    tsdist::obs::TraceSpool::Global().Stop();
    tsdist::obs::Logger::Global().Flush();
    return 2;
  }
  out << "{\n  \"schema\": \"tsdist.bench.v2\",\n"
      << "  \"kind\": \"suite\",\n"
      << "  \"suite\": \"" << opt.scale << "\",\n"
      << "  \"scale\": \"" << archive_scale << "\",\n"
      << "  \"repeat\": " << opt.repeat << ",\n"
      << "  \"warmup\": " << opt.warmup << ",\n"
      << "  \"manifest\": " << tsdist::obs::ManifestToJson(manifest, 2)
      << ",\n"
      << "  \"benches\": [";
  bool first = true;
  for (const auto& outcome : outcomes) {
    if (outcome.report_json.empty() || outcome.exit_code != 0) continue;
    std::string body = outcome.report_json;
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
    out << (first ? "\n    " : ",\n    ") << Indent(body, 4);
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  out.close();

  std::cout << "tsdist_bench: wrote " << opt.out << " ("
            << outcomes.size() << " benches, "
            << (any_failed ? "with failures" : "all ok") << ")\n";
  tsdist::obs::HealthState::Global().SetPhase("done");
  tsdist::obs::TraceSpool::Global().Stop();
  server.Stop();
  tsdist::obs::Logger::Global().Flush();
  return any_failed ? 1 : 0;
}
