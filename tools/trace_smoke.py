#!/usr/bin/env python3
"""End-to-end smoke test of the fleet-wide distributed tracing pipeline.

Drives the real tsdist_eval binary through a traced sharded sweep —
coordinator, three spooling workers (one SIGKILLed mid-shard), merge — and
asserts the whole contract:

  1. the merged results.jsonl is byte-identical to an untraced
     single-process baseline — tracing must never change evaluation output;
  2. every process of the fleet leaves a crash-durable
     tsdist.tracespool.v1 spool under <checkpoint>/trace/, including the
     SIGKILLed victim, whose spans survive the kill (validated via
     check_metrics_schema.check_trace_spool: at most one torn line, at
     EOF);
  3. the live /tracez endpoint reports an active spool and /fleetz
     aggregates the spooling workers while the victim is alive;
  4. trace_merge stitches all spools onto one wall-clock timeline: the
     Chrome trace names one pid row per process and carries the victim's
     spans, and the tsdist.fleettrace.v1 analysis reports a critical path,
     per-worker busy/idle shares, and straggler cells;
  5. the --max-imbalance-pct gate holds on a synthetic two-worker fixture
     with a known 45% imbalance: exit 1 over the threshold, exit 0 under
     it or with --warn-only, torn tails tolerated throughout.

Each phase records its completion; a skipped phase fails the harness
rather than passing vacuously.

Stdlib only. Exits 0 on success, 1 with a message per failure otherwise.

Usage:
  trace_smoke.py --eval build/tools/tsdist_eval \
      --trace-merge build/tools/trace_merge \
      --schema-check tools/check_metrics_schema.py \
      --workdir build/tools/trace_smoke [--timeout 300]
"""

import argparse
import glob
import importlib.util
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import threading
import time
import urllib.request

COMMON = ["--scale", "tiny", "--measures", "euclidean,kullback_leibler",
          "--supervised"]
LISTEN_RE = re.compile(r"telemetry server listening.*\bport=(\d+)")

FAILURES = []
PHASES = ["baseline", "coordinator", "fleet", "merge-identical", "spools",
          "trace-merge", "gate"]
COMPLETED = []


def fail(message):
    FAILURES.append(message)
    print(f"trace_smoke: FAIL: {message}", file=sys.stderr)


def load_schema_module(path):
    spec = importlib.util.spec_from_file_location("check_metrics_schema",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run(binary, args, timeout=300):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    return subprocess.run([binary] + args, env=env, timeout=timeout,
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                          text=True)


def spawn_worker(binary, ckpt, worker, extra=None):
    env = dict(os.environ)
    env.pop("TSDIST_FAULT", None)
    return subprocess.Popen(
        [binary] + COMMON + ["--checkpoint-dir", ckpt,
                             "--shard-worker", worker, "--trace-spool"]
        + (extra or []),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def scrape(port, path, timeout=10):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=timeout) as response:
        return response.read().decode("utf-8")


def synthetic_spool(path, worker, pid, cell, dur_ns, torn_tail=""):
    """A hand-written tsdist.tracespool.v1 spool with one cell span."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            '{"schema": "tsdist.tracespool.v1", "run_id": "cafef00d12345678"'
            f', "role": "worker", "worker": "{worker}", "pid": {pid}, '
            '"epoch": 1, "anchor_wall_us": 1000000}\n')
        fh.write(
            f'{{"name": "shard.cell/{cell}", "cat": "shard", "ts_ns": 0, '
            f'"dur_ns": {dur_ns}, "tid": 1, "id": 1, "parent": -1, '
            f'"args": {{"dataset": "{cell.split("/")[0]}", '
            f'"measure": "{cell.split("/")[1]}"}}}}\n')
        if torn_tail:
            fh.write(torn_tail)  # no newline: the kill residue


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--eval", required=True, dest="eval_binary")
    parser.add_argument("--trace-merge", required=True, dest="trace_merge")
    parser.add_argument("--schema-check", required=True)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    schema = load_schema_module(args.schema_check)
    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    path = lambda name: os.path.join(args.workdir, name)

    # --- baseline: untraced single-process run; the bytes every traced
    # configuration must reproduce exactly.
    base = path("base")
    proc = run(args.eval_binary, COMMON + ["--checkpoint-dir", base],
               timeout=args.timeout)
    if proc.returncode != 0:
        fail(f"baseline run exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    baseline = read_bytes(os.path.join(base, "results.jsonl"))
    if not baseline.strip():
        fail("baseline results.jsonl is empty")
        return 1
    COMPLETED.append("baseline")

    # --- coordinator with --trace-spool: publishes the plan, then spools
    # its own shard.plan_publish span (the run id is the plan-bytes hash,
    # so the spool can only start after the plan exists).
    shared = path("shared")
    proc = run(args.eval_binary,
               COMMON + ["--checkpoint-dir", shared,
                         "--shard-coordinator", "4",
                         "--lease-ttl-sec", "0.5", "--trace-spool"],
               timeout=args.timeout)
    if proc.returncode != 0:
        fail(f"coordinator exited {proc.returncode}: {proc.stderr[-500:]}")
        return 1
    trace_dir = os.path.join(shared, "trace")
    coord_spool = os.path.join(trace_dir, "coordinator.trace.jsonl")
    if not os.path.exists(coord_spool):
        fail(f"coordinator left no spool at {coord_spool}")
    COMPLETED.append("coordinator")

    # --- fleet: a deliberately slow victim claims a shard with tracing on;
    # its live endpoints must report the active spool; then SIGKILL, and
    # two rescuers drain the plan.
    victim = spawn_worker(args.eval_binary, shared, "victim",
                          ["--selftest-cell-sleep-ms", "80", "--serve", "0"])
    port_box = {}
    stderr_tail = []

    def tail_stderr():
        for line in victim.stderr:
            stderr_tail.append(line)
            m = LISTEN_RE.search(line)
            if m and "port" not in port_box:
                port_box["port"] = int(m.group(1))

    tail = threading.Thread(target=tail_stderr, daemon=True)
    tail.start()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline and "port" not in port_box:
        time.sleep(0.02)
    if "port" in port_box:
        port = port_box["port"]
        # /tracez must report the recorder on and the spool active.
        status, status_error = "", "never scraped"
        status_deadline = time.monotonic() + 8
        while time.monotonic() < status_deadline:
            try:
                status = scrape(port, "/tracez?status")
            except OSError as exc:
                status_error = f"cannot scrape /tracez: {exc}"
                time.sleep(0.1)
                continue
            if "tracing on" in status and "spool=active" in status:
                break
            status_error = f"unexpected status {status!r}"
            time.sleep(0.1)
        else:
            fail(f"/tracez never reported an active spool: {status_error}")
        # /fleetz must aggregate the victim as a spooling worker once its
        # first flushed spans ride a heartbeat.
        fleet_doc, fleet_error = None, "never scraped"
        fleet_deadline = time.monotonic() + 10
        while time.monotonic() < fleet_deadline:
            try:
                doc = json.loads(scrape(port, "/fleetz"))
            except (OSError, ValueError) as exc:
                fleet_error = f"cannot scrape /fleetz: {exc}"
                time.sleep(0.1)
                continue
            trace_block = doc.get("trace", {})
            if trace_block.get("spooling_workers", 0) >= 1:
                fleet_doc = doc
                break
            fleet_error = f"trace block {trace_block!r}"
            time.sleep(0.1)
        if fleet_doc is None:
            fail(f"/fleetz never counted a spooling worker: {fleet_error}")
        else:
            errors = []
            schema.check_fleet_health(errors, "/fleetz", fleet_doc)
            for message in errors:
                fail(f"fleet-health schema: {message}")
    else:
        fail(f"victim never reported a listening port: "
             f"{''.join(stderr_tail)[-500:]}")
    # Let the victim sink real spans into its spool (80 ms per cell, the
    # flusher fsyncs every 200 ms), then kill it without ceremony.
    time.sleep(1.0)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=60)
    tail.join(timeout=10)
    victim_spool = os.path.join(trace_dir, "victim.trace.jsonl")
    if not os.path.exists(victim_spool):
        fail(f"SIGKILLed victim left no spool at {victim_spool}")

    rescuers = [spawn_worker(args.eval_binary, shared, f"w{i}")
                for i in (1, 2)]
    for i, rescuer in zip((1, 2), rescuers):
        _out, err = rescuer.communicate(timeout=args.timeout)
        if rescuer.returncode != 0:
            fail(f"rescuer w{i} exited {rescuer.returncode}: {err[-500:]}")
    for shard_dir in sorted(glob.glob(os.path.join(shared, "shards", "s*"))):
        if not glob.glob(os.path.join(shard_dir, "e*", "DONE")):
            fail(f"{shard_dir}: no DONE epoch after the rescuers drained")
    COMPLETED.append("fleet")

    # --- merge with --trace-spool: byte-identical to the untraced
    # baseline; the rerun proves spool rotation (the first merge's spool
    # must survive as merge.r001.trace.jsonl, never truncated).
    for attempt in ("merge", "merge rerun"):
        proc = run(args.eval_binary,
                   ["--checkpoint-dir", shared, "--shard-merge",
                    "--trace-spool"], timeout=args.timeout)
        if proc.returncode != 0:
            fail(f"{attempt} exited {proc.returncode}: {proc.stderr[-500:]}")
            break
        merged = read_bytes(os.path.join(shared, "results.jsonl"))
        if merged != baseline:
            fail(f"{attempt}: traced merge differs from the untraced "
                 f"baseline ({len(merged)} vs {len(baseline)} bytes)")
    if not os.path.exists(os.path.join(trace_dir,
                                       "merge.r001.trace.jsonl")):
        fail("merge rerun did not rotate the first merge spool to "
             "merge.r001.trace.jsonl")
    COMPLETED.append("merge-identical")

    # --- spools: every file under <checkpoint>/trace/ must validate, the
    # victim's flushed spans must have survived the SIGKILL, and all
    # fleet processes must share the coordinator's run id.
    spool_paths = sorted(glob.glob(os.path.join(trace_dir,
                                                "*.trace.jsonl")))
    expected = {"coordinator", "victim", "w1", "w2", "merge"}
    procs = {os.path.basename(p)[:-len(".trace.jsonl")].split(".r")[0]
             for p in spool_paths}
    if not expected <= procs:
        fail(f"missing spools for {sorted(expected - procs)} "
             f"(found {sorted(procs)})")
    run_ids, victim_events = set(), 0
    for spool_path in spool_paths:
        errors = []
        with open(spool_path, "r", encoding="utf-8", errors="replace") as fh:
            summary = schema.check_trace_spool(errors, spool_path,
                                               fh.read())
        for message in errors:
            fail(f"spool schema: {message}")
        if summary["run_id"]:
            run_ids.add(summary["run_id"])
        if summary["worker"] == "victim":
            victim_events += summary["events"]
    if victim_events < 1:
        fail("the victim's spool holds no events: its flushed spans did "
             "not survive the SIGKILL")
    if len(run_ids) != 1:
        fail(f"fleet spools disagree on the run id: {sorted(run_ids)}")
    COMPLETED.append("spools")

    # --- trace_merge: one Chrome timeline with a pid row per process
    # (victim included) and a schema-valid fleet analysis.
    chrome_out = path("fleet_trace.json")
    analysis_out = path("fleet_analysis.json")
    proc = run(args.trace_merge,
               [trace_dir, "--chrome-out", chrome_out,
                "--analysis-out", analysis_out, "--top", "5"],
               timeout=args.timeout)
    if proc.returncode != 0:
        fail(f"trace_merge exited {proc.returncode}: {proc.stderr[-500:]}")
    else:
        try:
            chrome = json.loads(read_bytes(chrome_out))
        except ValueError as exc:
            chrome = None
            fail(f"chrome trace is not valid JSON: {exc}")
        if chrome is not None:
            rows = [e for e in chrome if e.get("ph") == "M"
                    and e.get("name") == "process_name"]
            labels = " ".join(e["args"]["name"] for e in rows)
            if len(rows) < 5:
                fail(f"chrome trace has {len(rows)} process rows, expected "
                     f">= 5 (coordinator, victim, w1, w2, merge)")
            if "victim" not in labels:
                fail(f"no victim row in the merged trace: {labels!r}")
            phases_seen = {e.get("ph") for e in chrome}
            if "X" not in phases_seen or "i" not in phases_seen:
                fail(f"merged trace lacks complete spans or instants: "
                     f"{sorted(phases_seen)}")
        errors = []
        doc = schema.load(errors, analysis_out)
        if doc is not None:
            schema.check_fleet_trace(errors, analysis_out, doc)
        for message in errors:
            fail(f"fleet-trace schema: {message}")
        if doc is not None:
            victims = [w for w in doc.get("workers", [])
                       if w.get("worker") == "victim"]
            if not victims or victims[0].get("cells", 0) < 1:
                fail(f"analysis attributes no cells to the victim: "
                     f"{victims!r}")
            if not doc.get("critical_path", {}).get("segments"):
                fail("analysis reports an empty critical path over a "
                     "multi-shard sweep")
            if doc.get("run_id") not in run_ids:
                fail(f"analysis run id {doc.get('run_id')!r} does not "
                     f"match the fleet spools {sorted(run_ids)}")
    COMPLETED.append("trace-merge")

    # --- gate: a synthetic fixture with exactly known busy times. Worker a
    # computes 100 ms, worker b 10 ms (plus a torn tail): imbalance is
    # 100 * (1 - 55/100) = 45%.
    gate_dir = path("gate")
    os.makedirs(gate_dir)
    synthetic_spool(os.path.join(gate_dir, "a.trace.jsonl"), "a", 1,
                    "Coffee/euclidean", 100_000_000)
    synthetic_spool(os.path.join(gate_dir, "b.trace.jsonl"), "b", 2,
                    "Coffee/sbd", 10_000_000,
                    torn_tail='{"name": "shard.cell/Coff')
    gate_analysis = path("gate_analysis.json")
    checks = [(["--max-imbalance-pct", "40"], 1, "over threshold"),
              (["--max-imbalance-pct", "40", "--warn-only"], 0,
               "over threshold, warn-only"),
              (["--max-imbalance-pct", "50"], 0, "under threshold")]
    for extra, want, label in checks:
        proc = run(args.trace_merge,
                   [gate_dir, "--analysis-out", gate_analysis] + extra,
                   timeout=args.timeout)
        if proc.returncode != want:
            fail(f"gate {label}: exited {proc.returncode}, expected {want} "
                 f"(stdout: {proc.stdout[-300:]})")
    errors = []
    doc = schema.load(errors, gate_analysis)
    if doc is not None:
        schema.check_fleet_trace(errors, gate_analysis, doc)
    for message in errors:
        fail(f"gate analysis schema: {message}")
    if doc is not None:
        if abs(doc.get("imbalance_pct", -1) - 45.0) > 0.01:
            fail(f"synthetic imbalance is {doc.get('imbalance_pct')!r}, "
                 f"expected 45.0")
        if doc.get("torn", {}).get("lines") != 1:
            fail(f"synthetic torn tail not counted: {doc.get('torn')!r}")
    COMPLETED.append("gate")

    skipped = [p for p in PHASES if p not in COMPLETED]
    if skipped:
        fail(f"phases skipped: {skipped}")
    if FAILURES:
        print(f"trace_smoke: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("trace_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
