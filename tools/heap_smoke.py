#!/usr/bin/env python3
"""End-to-end smoke test for the heap profiler pipeline.

Runs the same tiny evaluation sweep three times with the real tsdist_eval
binary:

  1. a plain run (no heap profiling) — the reference results;
  2. a heap-profiled run (--heap-profile-out);
  3. a second heap-profiled run — the diff baseline.

Then asserts the whole contract end to end:

  * the results JSON and stdout of all three runs are bit-identical — the
    allocator wrappers must be pure observers;
  * both folded heap profiles carry the tsdist.heapprofile.v1 header and
    parse (validated via check_metrics_schema.check_heap_profile);
  * when heap profiling is actually available (the run sampled something),
    heap_diff over the two captures of the identical binary exits 0 —
    sampling noise alone must not trip the live-share gate;
  * /heapz round-trips a start / status / dump / stop cycle against a live
    --serve session, with a schema-valid dump.

On sanitizer builds the wrappers are compiled out: every profile is then a
valid header-only document with samples=0 and the diff/endpoint assertions
degrade to "still schema-valid, still orderly" — the test passes either
way, which is what lets the `sanitize` preset keep running it.

Stdlib only. Exits 0 on success, 1 with a message per failure otherwise.

Usage:
  heap_smoke.py --eval build/tools/tsdist_eval \
      --heap-diff build/tools/heap_diff \
      --schema-check tools/check_metrics_schema.py \
      --workdir build/tools/heap_smoke [--timeout 300]
"""

import argparse
import importlib.util
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

LISTEN_RE = re.compile(r"telemetry server listening.*\bport=(\d+)")


def fail(msg):
    print(f"heap_smoke: {msg}", file=sys.stderr)
    return 1


def load_schema_module(path):
    spec = importlib.util.spec_from_file_location("check_metrics_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_eval(binary, workdir, tag, timeout, heap=False):
    results = os.path.join(workdir, f"results_{tag}.json")
    cmd = [
        binary, "--scale", "tiny", "--measures", "euclidean,dtw",
        "--results-json", results,
    ]
    artifacts = {"results": results}
    if heap:
        artifacts["folded"] = os.path.join(workdir, f"heap_{tag}.folded")
        cmd += ["--heap-profile-out", artifacts["folded"]]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, timeout=timeout)
    return proc, artifacts


def fetch(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


def check_heapz(binary, timeout, schema):
    """Boot a --serve session and round-trip /heapz start/status/dump/stop."""
    cmd = [
        binary, "--scale", "tiny", "--measures", "euclidean",
        "--serve", "0", "--selftest-cell-sleep-ms", "400",
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)
    port_box = {}
    stderr_lines = []

    def drain():
        for line in proc.stderr:
            stderr_lines.append(line)
            m = LISTEN_RE.search(line)
            if m and "port" not in port_box:
                port_box["port"] = int(m.group(1))

    drainer = threading.Thread(target=drain, daemon=True)
    drainer.start()

    deadline = time.monotonic() + timeout
    try:
        while "port" not in port_box:
            if proc.poll() is not None:
                return ("tsdist_eval exited before the server came up "
                        f"(exit {proc.returncode}); stderr:\n"
                        + "".join(stderr_lines))
            if time.monotonic() > deadline:
                return "timed out waiting for the listening line"
            time.sleep(0.05)
        port = port_box["port"]

        status, body = fetch(port, "/heapz")
        if status != 200 or not body.startswith("heap profiler "):
            return f"/heapz unexpected: {body!r}"

        status, started = fetch(port, "/heapz?start")
        if status != 200:
            return f"/heapz?start returned HTTP {status}"
        # On sanitizer builds Start() refuses; the endpoint still answers.
        armed = "not started" not in started

        status, heap_status = fetch(port, "/heapz?status")
        if status != 200 or not heap_status.startswith("heap profiler "):
            return f"/heapz?status unexpected: {heap_status!r}"
        if armed and "running" not in heap_status.split("\n")[0]:
            return f"/heapz?status not running after start: {heap_status!r}"

        status, dump = fetch(port, "/heapz?dump")
        if status != 200:
            return f"/heapz?dump returned HTTP {status}"
        errors = []
        schema.check_heap_profile(errors, "/heapz?dump", dump)
        if errors:
            return "; ".join(errors)

        status, live = fetch(port, "/heapz?live")
        if status != 200 or "heap live report" not in live:
            return f"/heapz?live unexpected: {live[:120]!r}"

        status, stopped = fetch(port, "/heapz?stop")
        if status != 200:
            return f"/heapz?stop returned HTTP {status}"
        if armed and "stopped" not in stopped:
            return f"/heapz?stop unexpected after a start: {stopped!r}"
    except Exception as exc:  # noqa: BLE001 - report and fail cleanly
        proc.kill()
        proc.wait()
        return f"{type(exc).__name__}: {exc}"

    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=max(10.0, deadline - time.monotonic()))
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return "tsdist_eval did not exit after SIGTERM"
    drainer.join(timeout=5)
    if rc not in (0, 143):
        return (f"unexpected exit code {rc}; stderr:\n"
                + "".join(stderr_lines))
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--eval", required=True, dest="eval_binary",
                        help="path to the tsdist_eval binary")
    parser.add_argument("--heap-diff", required=True,
                        help="path to the heap_diff binary")
    parser.add_argument("--schema-check", required=True,
                        help="path to check_metrics_schema.py")
    parser.add_argument("--workdir", required=True,
                        help="scratch directory for artifacts")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-run deadline in seconds")
    args = parser.parse_args(argv)

    os.makedirs(args.workdir, exist_ok=True)
    schema = load_schema_module(args.schema_check)

    runs = {}
    stdouts = {}
    for tag, heap in (("plain", False), ("a", True), ("b", True)):
        proc, artifacts = run_eval(args.eval_binary, args.workdir, tag,
                                   args.timeout, heap=heap)
        if proc.returncode != 0:
            return fail(f"run '{tag}' exited {proc.returncode}; stderr:\n"
                        + proc.stderr)
        runs[tag] = artifacts
        stdouts[tag] = proc.stdout

    # 1. Bit-identity: the wrappers must be pure observers.
    with open(runs["plain"]["results"], "rb") as f:
        reference = f.read()
    for tag in ("a", "b"):
        with open(runs[tag]["results"], "rb") as f:
            if f.read() != reference:
                return fail(f"results JSON of heap-profiled run '{tag}' "
                            "differs from the unprofiled run")
        if stdouts[tag] != stdouts["plain"]:
            return fail(f"stdout of heap-profiled run '{tag}' differs from "
                        "the unprofiled run")

    # 2. Folded heap profiles: schema-valid; samples > 0 whenever the
    # profiler is available (samples == 0 means a sanitizer/NOOP build).
    samples = {}
    for tag in ("a", "b"):
        with open(runs[tag]["folded"], "r", encoding="utf-8") as f:
            folded = f.read()
        errors = []
        header = schema.check_heap_profile(errors, runs[tag]["folded"],
                                           folded)
        if errors:
            for e in errors:
                print(f"heap_smoke: {e}", file=sys.stderr)
            return 1
        samples[tag] = header["samples"]
    if (samples["a"] == 0) != (samples["b"] == 0):
        return fail("one heap-profiled run sampled and the other did not "
                    f"(a={samples['a']}, b={samples['b']})")

    # 3. Two captures of the same binary must pass the live-share gate.
    if samples["a"] > 0:
        diff = subprocess.run(
            [args.heap_diff, runs["a"]["folded"], runs["b"]["folded"]],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=args.timeout)
        if diff.returncode != 0:
            return fail(f"heap_diff exited {diff.returncode} on identical "
                        f"binaries:\n{diff.stdout}")
    else:
        print("heap_smoke: profiler unavailable (sanitizer build?); "
              "header-only profiles accepted, diff gate skipped")

    # 4. /heapz round trip against a live session.
    error = check_heapz(args.eval_binary, args.timeout, schema)
    if error is not None:
        return fail(error)

    print("heap_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
