// Unit and integration tests for the clustering substrate (k-Shape,
// k-means, k-medoids) and the external evaluation metrics.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/cluster/evaluation.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/kshape.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {
namespace {

TEST(RandIndexTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(RandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(RandIndexTest, RelabeledPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {7, 7, 3, 3};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(RandIndexTest, HandComputedValue) {
  // a: {0,0,1,1}, b: {0,1,1,1}. Pairs: (0,1) same/diff, (0,2) diff/diff,
  // (0,3) diff/diff, (1,2) diff/same, (1,3) diff/same, (2,3) same/same.
  // Agreements: 3 of 6.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 0.5);
}

TEST(AdjustedRandIndexTest, IndependentPartitionsScoreNearZero) {
  // Checkerboard labelings carry no information about each other.
  std::vector<int> a, b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(i % 2);
    b.push_back((i / 2) % 2);
  }
  EXPECT_LT(std::fabs(AdjustedRandIndex(a, b)), 0.2);
  // Unadjusted Rand stays near 0.5 here; ARI is the chance-corrected one.
}

TEST(PurityTest, MajorityVote) {
  const std::vector<int> clusters = {0, 0, 0, 1, 1};
  const std::vector<int> truth = {5, 5, 6, 7, 7};
  // Cluster 0 majority 5 (2 of 3), cluster 1 majority 7 (2 of 2): 4/5.
  EXPECT_DOUBLE_EQ(Purity(clusters, truth), 0.8);
}

TEST(AlignToReferenceTest, AlignedCopyMatchesReference) {
  std::vector<double> ref(32, 0.0);
  for (int i = 8; i < 16; ++i) ref[static_cast<std::size_t>(i)] = 1.0;
  const auto shifted = data_internal::CircularShift(ref, 5);
  const auto aligned = cluster_internal::AlignToReference(shifted, ref);
  // After alignment the series matches the reference (up to edge padding).
  double diff = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    diff += std::fabs(aligned[i] - ref[i]);
  }
  EXPECT_LT(diff, 1e-9);
}

TEST(ExtractShapeTest, RecoversCommonShapeFromNoisyMembers) {
  Rng rng(3);
  std::vector<double> proto(48);
  for (std::size_t i = 0; i < proto.size(); ++i) {
    proto[i] = std::sin(0.3 * static_cast<double>(i));
  }
  std::vector<std::vector<double>> members;
  for (int r = 0; r < 10; ++r) {
    std::vector<double> noisy = proto;
    for (auto& v : noisy) v += rng.Gaussian(0.0, 0.1);
    members.push_back(std::move(noisy));
  }
  const auto shape = cluster_internal::ExtractShape(members, proto);
  // The extracted shape correlates strongly with the prototype.
  const auto zproto = ZScoreNormalizer().Apply(std::span<const double>(proto));
  double corr = 0.0;
  for (std::size_t i = 0; i < shape.size(); ++i) corr += shape[i] * zproto[i];
  corr /= static_cast<double>(shape.size());
  EXPECT_GT(corr, 0.9);
}

GeneratorOptions ClusterOptions(std::uint64_t seed) {
  GeneratorOptions options;
  options.length = 64;
  options.train_per_class = 12;
  options.test_per_class = 1;
  options.noise = 0.15;
  options.seed = seed;
  return options;
}

TEST(KShapeTest, RecoversShiftedClasses) {
  // Shift-dominated data is k-Shape's home turf.
  GeneratorOptions options = ClusterOptions(5);
  options.max_shift = 16;
  const Dataset data = MakeShiftedEvents(options);
  KShapeOptions ks;
  ks.k = data.num_classes();
  ks.seed = 2;
  const ClusteringResult result = KShape(data.train(), ks);
  const double ari = AdjustedRandIndex(result.assignments, data.train_labels());
  EXPECT_GT(ari, 0.5) << "ARI " << ari;
}

TEST(KShapeTest, DeterministicGivenSeed) {
  const Dataset data = MakeCbf(ClusterOptions(6));
  KShapeOptions ks;
  ks.k = 3;
  ks.seed = 9;
  const ClusteringResult a = KShape(data.train(), ks);
  const ClusteringResult b = KShape(data.train(), ks);
  EXPECT_EQ(a.assignments, b.assignments);
}

TEST(KShapeTest, CentroidsAreZNormalized) {
  const Dataset data = MakeCbf(ClusterOptions(7));
  KShapeOptions ks;
  ks.k = 3;
  const ClusteringResult result = KShape(data.train(), ks);
  for (const auto& c : result.centroids) {
    EXPECT_NEAR(c.Mean(), 0.0, 1e-6);
  }
}

TEST(KMeansTest, SeparatesEasyClasses) {
  // Spectra with class-specific peak locations: textbook ED clusters.
  GeneratorOptions options = ClusterOptions(8);
  options.noise = 0.05;
  const Dataset data = ZScoreNormalizer().Apply(MakeSpectroMixtures(options));
  KMeansOptions km;
  km.k = data.num_classes();
  km.seed = 4;
  const ClusteringResult result = KMeans(data.train(), km);
  EXPECT_GT(AdjustedRandIndex(result.assignments, data.train_labels()), 0.5);
}

TEST(KMeansTest, AssignsEveryClusterIdInRange) {
  const Dataset data = MakeCbf(ClusterOptions(9));
  KMeansOptions km;
  km.k = 3;
  const ClusteringResult result = KMeans(data.train(), km);
  for (int a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
  EXPECT_EQ(result.centroids.size(), 3u);
}

TEST(KMedoidsTest, MedoidsAreActualSeries) {
  const Dataset data = MakeCbf(ClusterOptions(10));
  const NccCoefficientDistance sbd;
  KMeansOptions km;
  km.k = 3;
  const ClusteringResult result = KMedoids(data.train(), sbd, km);
  // Every centroid equals some input series exactly.
  for (const auto& c : result.centroids) {
    bool found = false;
    for (const auto& s : data.train()) {
      if (std::equal(c.values().begin(), c.values().end(),
                     s.values().begin())) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(KMedoidsTest, WorksWithElasticMeasureOnWarpedData) {
  GeneratorOptions options = ClusterOptions(11);
  options.warp = 0.15;
  options.train_per_class = 8;
  const Dataset data = ZScoreNormalizer().Apply(MakeWarpedPrototypes(options));
  const MeasurePtr dtw = Registry::Global().Create("dtw", {{"delta", 10.0}});
  KMeansOptions km;
  km.k = 3;
  km.seed = 5;
  const ClusteringResult result = KMedoids(data.train(), *dtw, km);
  EXPECT_GT(AdjustedRandIndex(result.assignments, data.train_labels()), 0.3);
}

TEST(KShapeVsKMeansTest, KShapeWinsOnShiftedData) {
  // The k-Shape paper's headline: SBD-based clustering dominates ED-based
  // k-means when classes differ by phase.
  GeneratorOptions options = ClusterOptions(12);
  options.max_shift = 20;
  options.train_per_class = 15;
  const Dataset data = ZScoreNormalizer().Apply(MakeShiftedEvents(options));
  KShapeOptions ks;
  ks.k = data.num_classes();
  ks.seed = 3;
  KMeansOptions km;
  km.k = data.num_classes();
  km.seed = 3;
  const double ari_kshape = AdjustedRandIndex(
      KShape(data.train(), ks).assignments, data.train_labels());
  const double ari_kmeans = AdjustedRandIndex(
      KMeans(data.train(), km).assignments, data.train_labels());
  EXPECT_GT(ari_kshape, ari_kmeans);
}

}  // namespace
}  // namespace tsdist
