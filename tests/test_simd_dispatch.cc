// Tests for the runtime SIMD dispatcher (src/simd/dispatch.h): CPUID
// detection invariants, the TSDIST_SIMD override, test pinning hooks, and
// the per-level kernel table accessors.

#include "src/simd/dispatch.h"

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

#include "gtest/gtest.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist::simd {
namespace {

// Saves/restores TSDIST_SIMD and drops the cached active level, so these
// tests neither observe nor leak dispatcher state.
class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("TSDIST_SIMD");
    if (env != nullptr) saved_ = env;
    ::unsetenv("TSDIST_SIMD");
    ResetActiveSimdLevelForTest();
  }

  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("TSDIST_SIMD", saved_->c_str(), 1);
    } else {
      ::unsetenv("TSDIST_SIMD");
    }
    ResetActiveSimdLevelForTest();
  }

 private:
  std::optional<std::string> saved_;
};

TEST_F(DispatchTest, ToStringNamesEveryLevel) {
  EXPECT_EQ(ToString(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(ToString(SimdLevel::kAvx2), "avx2");
  EXPECT_EQ(ToString(SimdLevel::kAvx512), "avx512");
}

TEST_F(DispatchTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
  EXPECT_GE(DetectBestSimdLevel(), SimdLevel::kScalar);
}

TEST_F(DispatchTest, SupportIsMonotoneInLevel) {
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    EXPECT_TRUE(SimdLevelSupported(SimdLevel::kAvx2));
  }
}

TEST_F(DispatchTest, ParseAcceptsTheFourSpellings) {
  SimdLevel level = SimdLevel::kAvx512;
  ASSERT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  ASSERT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  ASSERT_TRUE(ParseSimdLevel("avx512", &level));
  EXPECT_EQ(level, SimdLevel::kAvx512);
  ASSERT_TRUE(ParseSimdLevel("native", &level));
  EXPECT_EQ(level, DetectBestSimdLevel());
}

TEST_F(DispatchTest, ParseRejectsEverythingElse) {
  SimdLevel level;
  EXPECT_FALSE(ParseSimdLevel("", &level));
  EXPECT_FALSE(ParseSimdLevel("AVX2", &level));
  EXPECT_FALSE(ParseSimdLevel("sse", &level));
  EXPECT_FALSE(ParseSimdLevel("scalar ", &level));
}

TEST_F(DispatchTest, DefaultActiveLevelIsNative) {
  EXPECT_EQ(ActiveSimdLevel(), DetectBestSimdLevel());
}

TEST_F(DispatchTest, EnvOverridePinsScalar) {
  ::setenv("TSDIST_SIMD", "scalar", 1);
  ResetActiveSimdLevelForTest();
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST_F(DispatchTest, InvalidEnvValueFallsBackToNative) {
  ::setenv("TSDIST_SIMD", "turbo", 1);
  ResetActiveSimdLevelForTest();
  EXPECT_EQ(ActiveSimdLevel(), DetectBestSimdLevel());
}

TEST_F(DispatchTest, EnvRequestAboveCpuClampsToNative) {
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    GTEST_SKIP() << "CPU supports every level; nothing to clamp";
  }
  ::setenv("TSDIST_SIMD", "avx512", 1);
  ResetActiveSimdLevelForTest();
  EXPECT_EQ(ActiveSimdLevel(), DetectBestSimdLevel());
}

TEST_F(DispatchTest, ActiveLevelIsCachedUntilReset) {
  ::setenv("TSDIST_SIMD", "scalar", 1);
  ResetActiveSimdLevelForTest();
  ASSERT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // A later env change must not affect the cached level...
  ::unsetenv("TSDIST_SIMD");
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // ...until the cache is dropped.
  ResetActiveSimdLevelForTest();
  EXPECT_EQ(ActiveSimdLevel(), DetectBestSimdLevel());
}

TEST_F(DispatchTest, SetForTestPinsEverySupportedLevel) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!SimdLevelSupported(level)) continue;
    SetActiveSimdLevelForTest(level);
    EXPECT_EQ(ActiveSimdLevel(), level);
  }
}

TEST_F(DispatchTest, SetForTestRejectsUnsupportedLevel) {
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    GTEST_SKIP() << "CPU supports every level; nothing to reject";
  }
  EXPECT_THROW(SetActiveSimdLevelForTest(SimdLevel::kAvx512),
               std::invalid_argument);
}

TEST_F(DispatchTest, KernelsForLevelRejectsUnsupportedLevel) {
  if (SimdLevelSupported(SimdLevel::kAvx512)) {
    GTEST_SKIP() << "CPU supports every level; nothing to reject";
  }
  EXPECT_THROW(KernelsForLevel(SimdLevel::kAvx512), std::invalid_argument);
}

TEST_F(DispatchTest, KernelsFollowsTheActiveLevel) {
  SetActiveSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_EQ(&Kernels(), &KernelsForLevel(SimdLevel::kScalar));
  const SimdLevel best = DetectBestSimdLevel();
  SetActiveSimdLevelForTest(best);
  EXPECT_EQ(&Kernels(), &KernelsForLevel(best));
}

TEST_F(DispatchTest, EveryTableSlotIsPopulated) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!SimdLevelSupported(level)) continue;
    const KernelTable& table = KernelsForLevel(level);
    EXPECT_NE(table.sum_sq, nullptr);
    EXPECT_NE(table.sum_abs, nullptr);
    EXPECT_NE(table.max_abs, nullptr);
    EXPECT_NE(table.sum_pearson, nullptr);
    EXPECT_NE(table.sum_neyman, nullptr);
    EXPECT_NE(table.sum_sqchi, nullptr);
    EXPECT_NE(table.sum_divergence, nullptr);
    EXPECT_NE(table.sum_clark, nullptr);
    EXPECT_NE(table.sum_addsym, nullptr);
    EXPECT_NE(table.sum_sq_ea, nullptr);
    EXPECT_NE(table.sum_abs_ea, nullptr);
    EXPECT_NE(table.max_abs_ea, nullptr);
    EXPECT_NE(table.sum_divergence_ea, nullptr);
    EXPECT_NE(table.sum_clark_ea, nullptr);
  }
}

}  // namespace
}  // namespace tsdist::simd
