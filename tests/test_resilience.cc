// Tests for the fault-tolerant evaluation runtime (src/resilience):
// CRC32 / fingerprint primitives, cooperative cancellation, the
// fault-injection harness, and — the load-bearing contracts — that a matrix
// computation killed at tile K and resumed from its checkpoint reproduces
// the uninterrupted result bit for bit, and that a corrupted or mismatched
// shard is rejected and recomputed instead of poisoning results.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/core/thread_pool.h"
#include "src/data/ucr_loader.h"
#include "src/embedding/grail.h"
#include "src/linalg/eigen.h"
#include "src/linalg/rng.h"
#include "src/resilience/cancellation.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/crc32.h"
#include "src/resilience/fault.h"

namespace tsdist {
namespace {

namespace fs = std::filesystem;

// Tests that need a site to actually fire cannot run when the sites are
// compiled out (-DTSDIST_FAULT_NOOP=ON).
#if defined(TSDIST_FAULT_NOOP)
#define TSDIST_SKIP_IF_FAULT_NOOP() \
  GTEST_SKIP() << "fault-injection sites compiled out (TSDIST_FAULT_NOOP)"
#else
#define TSDIST_SKIP_IF_FAULT_NOOP()
#endif

std::vector<TimeSeries> MakeCollection(std::size_t n, std::size_t m,
                                       std::uint64_t seed,
                                       bool positive = false) {
  Rng rng(seed);
  std::vector<TimeSeries> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(m);
    for (auto& v : values) {
      v = positive ? 0.1 + std::abs(rng.Gaussian()) : rng.Gaussian();
    }
    out.emplace_back(std::move(values), static_cast<int>(i % 2));
  }
  return out;
}

// Bitwise equality — the resume contract is bit-identity, not tolerance.
void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.rows() * a.cols() * sizeof(double)),
            0);
}

// Fresh per-test scratch directory under gtest's temp dir.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("resilience_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Disarm();
    fs::remove_all(dir_);
  }
  std::string Dir(const std::string& sub) const { return (dir_ / sub).string(); }

  fs::path dir_;
};

// ---------------------------------------------------------------- primitives

TEST(Crc32Test, MatchesKnownAnswerAndChunks) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xCBF43926u);
  // Chunked computation with seeding matches the one-shot result.
  const std::uint32_t part = Crc32(check, 4);
  EXPECT_EQ(Crc32(check + 4, 5, part), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(FingerprintTest, SensitiveToValuesLabelsLengthAndOrder) {
  const auto base = MakeCollection(4, 16, 7);
  const std::uint64_t fp = FingerprintSeries(base);
  EXPECT_EQ(FingerprintSeries(base), fp);  // deterministic

  auto value_changed = base;
  value_changed[2].mutable_values()[5] += 1e-15;
  EXPECT_NE(FingerprintSeries(value_changed), fp);

  auto reordered = base;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(FingerprintSeries(reordered), fp);

  std::vector<TimeSeries> label_changed;
  for (const auto& s : base) {
    label_changed.emplace_back(
        std::vector<double>(s.values().begin(), s.values().end()),
        s.label() + 1);
  }
  EXPECT_NE(FingerprintSeries(label_changed), fp);

  auto truncated = base;
  truncated.pop_back();
  EXPECT_NE(FingerprintSeries(truncated), fp);
}

TEST(CancellationTokenTest, ManualBudgetAndParentChain) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  EXPECT_FALSE(child.cancel_requested());

  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(child.cancel_requested());  // manual flag propagates as such
  parent.Reset();
  EXPECT_FALSE(child.cancelled());

  // An already-expired budget cancels, but is NOT a manual cancel request —
  // that distinction is what maps to kDnf vs kInterrupted.
  child.SetBudget(0.0);
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(child.cancel_requested());
  child.Reset();
  child.SetBudget(3600.0);
  EXPECT_FALSE(child.cancelled());
}

TEST(ThreadPoolCancellationTest, ParallelForReportsCompletionExactly) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  CancellationToken token;
  EXPECT_TRUE(pool.ParallelFor(
      100, [&](std::size_t) { ran.fetch_add(1); }, &token));
  EXPECT_EQ(ran.load(), 100u);

  // A pre-cancelled token: no index may run, and the call must say so.
  ran.store(0);
  token.Cancel();
  EXPECT_FALSE(pool.ParallelFor(
      100, [&](std::size_t) { ran.fetch_add(1); }, &token));
  EXPECT_EQ(ran.load(), 0u);

  // Null token behaves exactly like the original ParallelFor.
  ran.store(0);
  EXPECT_TRUE(pool.ParallelFor(17, [&](std::size_t) { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 17u);
}

// ------------------------------------------------------------- fault harness

TEST(FaultTest, FiresExactlyAtNthHitAndCountsHits) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  fault::Arm("ckpt.tile_write:3");
  EXPECT_TRUE(fault::Armed());
  EXPECT_NO_THROW(fault::Hit(fault::sites::kTileWrite));
  EXPECT_NO_THROW(fault::Hit(fault::sites::kTileWrite));
  EXPECT_THROW(fault::Hit(fault::sites::kTileWrite), fault::FaultInjected);
  // Firing disarms the trigger but hit accounting continues.
  EXPECT_NO_THROW(fault::Hit(fault::sites::kTileWrite));
  EXPECT_EQ(fault::HitCount("ckpt.tile_write"), 4u);
  EXPECT_EQ(fault::FireCount(), 1u);
  // Other sites are counted but never fire.
  EXPECT_NO_THROW(fault::Hit(fault::sites::kShardLoad));
  EXPECT_EQ(fault::HitCount("ckpt.shard_load"), 1u);
  fault::Disarm();
  EXPECT_FALSE(fault::Armed());
  EXPECT_EQ(fault::HitCount("ckpt.tile_write"), 0u);
}

TEST(FaultTest, ArmRejectsMalformedSpecs) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  EXPECT_THROW(fault::Arm(""), std::invalid_argument);
  EXPECT_THROW(fault::Arm("ckpt.tile_write"), std::invalid_argument);
  EXPECT_THROW(fault::Arm("ckpt.tile_write:0"), std::invalid_argument);
  EXPECT_THROW(fault::Arm("ckpt.tile_write:x"), std::invalid_argument);
  EXPECT_THROW(fault::Arm("ckpt.tile_write:1:frobnicate"),
               std::invalid_argument);
  fault::Disarm();
}

// ------------------------------------------------------- checkpoint + resume

class CheckpointResumeTest : public ResilienceTest,
                             public ::testing::WithParamInterface<const char*> {
};

// Kill-at-tile-K resume bit-identity, the core contract: run to completion
// for a baseline, then arm the tile-write site so a fresh computation dies
// mid-flight, then resume from the surviving shard and compare bitwise.
// Parameterized over a symmetric measure (dtw: upper-triangle + mirror
// path) and an asymmetric one (kullback_leibler: full-matrix path).
TEST_P(CheckpointResumeTest, KillAtTileKResumesBitIdentically) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  const std::string name = GetParam();
  const MeasurePtr measure =
      Registry::Global().Create(name, UnsupervisedParamsFor(name));
  ASSERT_NE(measure, nullptr);
  const auto series = MakeCollection(24, 32, 42, /*positive=*/true);
  const PairwiseEngine engine(2);

  const Matrix baseline = engine.ComputeSelf(series, *measure);

  ComputeOptions options;
  options.checkpoint_dir = Dir(name);
  options.tile_rows = 4;
  fault::Arm("ckpt.tile_write:3");
  EXPECT_THROW(engine.ComputeSelf(series, *measure, options),
               fault::FaultInjected);
  fault::Disarm();

  const ComputeResult resumed = engine.ComputeSelf(series, *measure, options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.tiles_resumed, 0u);
  EXPECT_LT(resumed.tiles_resumed, resumed.tiles_total);
  ExpectBitIdentical(resumed.matrix, baseline);
}

INSTANTIATE_TEST_SUITE_P(SymmetricAndAsymmetric, CheckpointResumeTest,
                         ::testing::Values("dtw", "kullback_leibler"));

TEST_F(ResilienceTest, PairMatrixResumesBitIdentically) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  const MeasurePtr measure =
      Registry::Global().Create("dtw", UnsupervisedParamsFor("dtw"));
  const auto queries = MakeCollection(10, 32, 1);
  const auto references = MakeCollection(14, 32, 2);
  const PairwiseEngine engine(2);
  const Matrix baseline = engine.Compute(queries, references, *measure);

  ComputeOptions options;
  options.checkpoint_dir = Dir("pair");
  options.tile_rows = 2;
  fault::Arm("ckpt.tile_write:2");
  EXPECT_THROW(engine.Compute(queries, references, *measure, options),
               fault::FaultInjected);
  fault::Disarm();

  const ComputeResult resumed =
      engine.Compute(queries, references, *measure, options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.tiles_resumed, 0u);
  ExpectBitIdentical(resumed.matrix, baseline);
}

TEST_F(ResilienceTest, CorruptedShardIsRejectedAndRecomputed) {
  const MeasurePtr measure =
      Registry::Global().Create("dtw", UnsupervisedParamsFor("dtw"));
  const auto series = MakeCollection(16, 24, 9);
  const PairwiseEngine engine(2);

  ComputeOptions options;
  options.checkpoint_dir = Dir("corrupt");
  options.tile_rows = 4;
  const ComputeResult first = engine.ComputeSelf(series, *measure, options);
  ASSERT_TRUE(first.complete);

  // Flip one payload byte near the middle of the tile log: that record's CRC
  // no longer matches, so it — and the unscanned suffix behind it, per the
  // valid-prefix rule — must be discarded and recomputed.
  const std::string log_path = Dir("corrupt") + "/tiles.bin";
  const auto size = fs::file_size(log_path);
  ASSERT_GT(size, 64u);
  {
    std::fstream f(log_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }

  const ComputeResult second = engine.ComputeSelf(series, *measure, options);
  EXPECT_TRUE(second.complete);
  EXPECT_LT(second.tiles_resumed, second.tiles_total);
  ExpectBitIdentical(second.matrix, first.matrix);
}

TEST_F(ResilienceTest, ManifestMismatchDiscardsShard) {
  const auto series = MakeCollection(12, 24, 3);
  const PairwiseEngine engine(2);
  ComputeOptions options;
  options.checkpoint_dir = Dir("manifest");
  options.tile_rows = 4;

  const MeasurePtr d5 = Registry::Global().Create("dtw", {{"delta", 5.0}});
  const ComputeResult first = engine.ComputeSelf(series, *d5, options);
  ASSERT_TRUE(first.complete);

  // Same directory, different params: nothing may be resumed.
  const MeasurePtr d9 = Registry::Global().Create("dtw", {{"delta", 9.0}});
  const ComputeResult second = engine.ComputeSelf(series, *d9, options);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.tiles_resumed, 0u);
  ExpectBitIdentical(second.matrix, engine.ComputeSelf(series, *d9));

  // And different data under the original params: also a fresh start.
  const auto other = MakeCollection(12, 24, 4);
  const ComputeResult third = engine.ComputeSelf(other, *d5, options);
  EXPECT_TRUE(third.complete);
  EXPECT_EQ(third.tiles_resumed, 0u);
}

TEST_F(ResilienceTest, CheckpointedRunMatchesPlainComputeExactly) {
  // Checkpointing on a fresh directory must not change a single bit of the
  // result (tiling only reorders the schedule of pure per-cell work).
  const MeasurePtr measure =
      Registry::Global().Create("msm", UnsupervisedParamsFor("msm"));
  const auto series = MakeCollection(15, 20, 5);
  const PairwiseEngine engine(3);
  ComputeOptions options;
  options.checkpoint_dir = Dir("fresh");
  options.tile_rows = 7;  // deliberately not dividing 15
  const ComputeResult ckpt = engine.ComputeSelf(series, *measure, options);
  ASSERT_TRUE(ckpt.complete);
  EXPECT_EQ(ckpt.tiles_total, 3u);  // ceil(15 / 7)
  EXPECT_EQ(ckpt.tiles_computed, 3u);
  ExpectBitIdentical(ckpt.matrix, engine.ComputeSelf(series, *measure));
}

// --------------------------------------------------------- deadlines / DNF

TEST_F(ResilienceTest, ExpiredBudgetYieldsDeterministicDnf) {
  const auto series = MakeCollection(10, 16, 8);
  Dataset dataset("Toy", series, MakeCollection(6, 16, 9));
  const PairwiseEngine engine(2);

  CancellationToken budget;
  budget.SetBudget(0.0);  // already expired
  EvalOptions options;
  options.cancel = &budget;
  for (int i = 0; i < 2; ++i) {  // deterministic: same outcome every time
    const EvalResult result =
        EvaluateTuned("dtw", ParamGridFor("dtw"), dataset, engine,
                      Registry::Global(), options);
    EXPECT_EQ(result.status, EvalStatus::kDnf);
    EXPECT_NE(result.reason.find("dnf"), std::string::npos);
    EXPECT_EQ(result.test_accuracy, 0.0);  // never partial numbers
  }

  // A manual cancel on the same path is an interrupt, not a DNF.
  CancellationToken interrupt;
  interrupt.Cancel();
  options.cancel = &interrupt;
  const EvalResult result = EvaluateFixed("dtw", UnsupervisedParamsFor("dtw"),
                                          dataset, engine, Registry::Global(),
                                          options);
  EXPECT_EQ(result.status, EvalStatus::kInterrupted);
}

TEST_F(ResilienceTest, TuningResumesCandidatesFromLog) {
  const auto series = MakeCollection(12, 16, 21);
  Dataset dataset("Toy", series, MakeCollection(6, 16, 22));
  const PairwiseEngine engine(2);
  const auto grid = ParamGridFor("dtw");

  const EvalResult baseline =
      EvaluateTuned("dtw", grid, dataset, engine, Registry::Global(), {});

  EvalOptions options;
  options.checkpoint_dir = Dir("tuning");
  const EvalResult first = EvaluateTuned("dtw", grid, dataset, engine,
                                         Registry::Global(), options);
  ASSERT_EQ(first.status, EvalStatus::kOk);
  EXPECT_EQ(first.train_accuracy, baseline.train_accuracy);
  EXPECT_EQ(first.test_accuracy, baseline.test_accuracy);
  EXPECT_EQ(ToString(first.params), ToString(baseline.params));

  // The candidate cache now holds every grid point; a second run must reuse
  // it (bit-identical winner) rather than recompute.
  const auto lines = LoadJsonLog(Dir("tuning") + "/candidates.jsonl");
  EXPECT_EQ(lines.size(), grid.size());
  const EvalResult second = EvaluateTuned("dtw", grid, dataset, engine,
                                          Registry::Global(), options);
  EXPECT_EQ(second.status, EvalStatus::kOk);
  EXPECT_EQ(second.train_accuracy, baseline.train_accuracy);
  EXPECT_EQ(second.test_accuracy, baseline.test_accuracy);
  EXPECT_EQ(ToString(second.params), ToString(baseline.params));
}

// ------------------------------------------------------------ durable logs

TEST_F(ResilienceTest, JsonLogRecoversValidPrefixFromTornTail) {
  const std::string path = Dir("log.jsonl");
  ASSERT_TRUE(AppendJsonLogLine(path, "{\"a\": 1}"));
  ASSERT_TRUE(AppendJsonLogLine(path, "{\"a\": 2}"));
  {
    // Simulate a torn append: bytes of a record that never got its newline.
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "{\"a\": 3";
  }
  const auto lines = LoadJsonLog(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\": 1}");
  // The torn tail was truncated away, so appends resume cleanly.
  ASSERT_TRUE(AppendJsonLogLine(path, "{\"a\": 4}"));
  EXPECT_EQ(LoadJsonLog(path).size(), 3u);
}

TEST_F(ResilienceTest, AtomicWriteFileReplacesWholeContents) {
  const std::string path = Dir("atomic.txt");
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "first", &error)) << error;
  ASSERT_TRUE(AtomicWriteFile(path, "second contents", &error)) << error;
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "second contents");
  EXPECT_FALSE(
      AtomicWriteFile(Dir("no/such/dir/x.txt"), "data", &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------- degradation satellites

TEST(EigenValidationTest, RejectsBadInputsAndReportsNonConvergence) {
  Matrix rect(2, 3);
  EXPECT_THROW(SymmetricEigen(rect), std::invalid_argument);

  Matrix bad(2, 2);
  bad(0, 0) = 1.0;
  bad(0, 1) = bad(1, 0) = std::numeric_limits<double>::quiet_NaN();
  bad(1, 1) = 1.0;
  EXPECT_THROW(SymmetricEigen(bad), std::invalid_argument);

  Matrix ok(2, 2);
  ok(0, 0) = 2.0;
  ok(0, 1) = ok(1, 0) = 1.0;
  ok(1, 1) = 2.0;
  EXPECT_THROW(SymmetricEigen(ok, 1e-12, 0), std::invalid_argument);
  const EigenDecomposition e = SymmetricEigen(ok);
  EXPECT_NEAR(e.values[0], 3.0, 1e-9);
  EXPECT_NEAR(e.values[1], 1.0, 1e-9);
}

TEST(EigenValidationTest, InjectedEigensolveFaultDegradesGrailFit) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  // GRAIL must catch the solver failure and rethrow with fit context, so a
  // sweep records a per-dataset failure instead of dying.
  const auto series = MakeCollection(12, 24, 17);
  GrailRepresentation grail(1.0, 4, 7);
  fault::Arm("linalg.eigensolve:1");
  try {
    grail.Fit(series);
    fault::Disarm();
    FAIL() << "expected the injected eigensolve fault to surface";
  } catch (const std::runtime_error& e) {
    fault::Disarm();
    EXPECT_NE(std::string(e.what()).find("GrailRepresentation::Fit"),
              std::string::npos)
        << e.what();
  }
}

TEST(LoaderPolicyTest, RejectPolicyNamesFileAndLine) {
  const std::vector<std::string> lines = {"1\t0.5\t0.25", "2\t0.5\tNaN"};
  LoadOptions reject;
  reject.missing_values = MissingValuePolicy::kReject;
  const LoadResult r = ParseUcrLines(lines, "toy.tsv", reject);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("toy.tsv"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;

  // Default policy keeps the NaN for downstream interpolation.
  const LoadResult keep = ParseUcrLines(lines, "toy.tsv");
  ASSERT_TRUE(keep.ok) << keep.error;

  // Non-finite (inf) values are a parse error under every policy.
  const LoadResult inf_result =
      ParseUcrLines({"1\t0.5\tinf"}, "toy.tsv");
  EXPECT_FALSE(inf_result.ok);
  EXPECT_NE(inf_result.error.find("line 1"), std::string::npos)
      << inf_result.error;
}

TEST(LoaderPolicyTest, InjectedParseFaultFiresOnExactLine) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  fault::Arm("data.parse_line:2");
  EXPECT_THROW(ParseUcrLines({"1\t0.5", "2\t0.5", "1\t0.25"}, "toy.tsv"),
               fault::FaultInjected);
  EXPECT_EQ(fault::HitCount("data.parse_line"), 2u);
  fault::Disarm();
}

}  // namespace
}  // namespace tsdist
