// Tests for the in-process sampling profiler and PerfRegion kernel
// attribution (src/obs/profiler.h).
//
// The sampling tests drive the real SIGPROF machinery: per-thread POSIX
// interval timers, the async-signal-safe handler, ring retention across
// thread churn, and the folded/Chrome-trace renderers. They spin actual CPU
// time (the timers tick thread CPU clocks, so sleeping produces no samples)
// and keep assertions coarse — sample counts depend on scheduler weather,
// but "a busy thread sampled at 1 ms produces samples" does not.

#include "src/obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/perf_counters.h"

namespace tsdist::obs {
namespace {

// ---------------------------------------------------------------------------
// ParseKernelMetricName

TEST(ParseKernelMetricName, AcceptsEveryField) {
  const char* fields[] = {
      "calls",        "wall_ns",         "cycles",
      "instructions", "cache_references", "cache_misses",
      "branches",     "branch_misses",   "time_enabled_ns",
      "time_running_ns",
  };
  for (const char* f : fields) {
    const std::string name = std::string("tsdist.kernel.") + f + ".dtw";
    std::string field, label;
    EXPECT_TRUE(ParseKernelMetricName(name, &field, &label)) << name;
    EXPECT_EQ(field, f);
    EXPECT_EQ(label, "dtw");
  }
}

TEST(ParseKernelMetricName, LabelMayContainDotsAndSlashes) {
  std::string field, label;
  ASSERT_TRUE(ParseKernelMetricName("tsdist.kernel.wall_ns.tuning/dtw.w5",
                                    &field, &label));
  EXPECT_EQ(field, "wall_ns");
  EXPECT_EQ(label, "tuning/dtw.w5");
}

TEST(ParseKernelMetricName, RejectsOutsiders) {
  std::string field, label;
  EXPECT_FALSE(ParseKernelMetricName("tsdist.pairwise.cells.dtw", &field,
                                     &label));
  EXPECT_FALSE(ParseKernelMetricName("tsdist.kernel.bogus.dtw", &field,
                                     &label));
  // Missing label.
  EXPECT_FALSE(ParseKernelMetricName("tsdist.kernel.calls", &field, &label));
  EXPECT_FALSE(ParseKernelMetricName("tsdist.kernel.calls.", &field, &label));
  EXPECT_FALSE(ParseKernelMetricName("", &field, &label));
}

TEST(ParseKernelMetricName, NullOutputsAllowed) {
  EXPECT_TRUE(
      ParseKernelMetricName("tsdist.kernel.calls.dtw", nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// KernelStatsBetween

TEST(KernelStatsBetween, GroupsDeltasPerLabel) {
  std::map<std::string, std::uint64_t> before{
      {"tsdist.kernel.calls.dtw", 10},
      {"tsdist.kernel.wall_ns.dtw", 1000},
      {"tsdist.kernel.calls.msm", 1},
  };
  std::map<std::string, std::uint64_t> after{
      {"tsdist.kernel.calls.dtw", 13},
      {"tsdist.kernel.wall_ns.dtw", 4000},
      {"tsdist.kernel.calls.msm", 1},            // no movement: dropped
      {"tsdist.kernel.calls.erp", 2},            // absent before: full value
      {"tsdist.kernel.wall_ns.erp", 500},
      {"tsdist.pairwise.cells.dtw", 99},         // not in the family
  };
  const auto stats = KernelStatsBetween(before, after);
  ASSERT_EQ(stats.size(), 2u);
  ASSERT_TRUE(stats.count("dtw"));
  EXPECT_EQ(stats.at("dtw").calls, 3u);
  EXPECT_EQ(stats.at("dtw").wall_ns, 3000u);
  EXPECT_FALSE(stats.at("dtw").perf.valid);
  ASSERT_TRUE(stats.count("erp"));
  EXPECT_EQ(stats.at("erp").calls, 2u);
  EXPECT_EQ(stats.at("erp").wall_ns, 500u);
  EXPECT_FALSE(stats.count("msm"));
}

TEST(KernelStatsBetween, PerfValidityFollowsPmuFields) {
  std::map<std::string, std::uint64_t> before;
  std::map<std::string, std::uint64_t> after{
      {"tsdist.kernel.calls.dtw", 1},
      {"tsdist.kernel.wall_ns.dtw", 100},
      {"tsdist.kernel.cycles.dtw", 5000},
      {"tsdist.kernel.instructions.dtw", 9000},
      {"tsdist.kernel.calls.msm", 1},
      {"tsdist.kernel.wall_ns.msm", 100},
  };
  const auto stats = KernelStatsBetween(before, after);
  ASSERT_TRUE(stats.count("dtw"));
  EXPECT_TRUE(stats.at("dtw").perf.valid);
  EXPECT_EQ(stats.at("dtw").perf.cycles, 5000u);
  EXPECT_EQ(stats.at("dtw").perf.instructions, 9000u);
  ASSERT_TRUE(stats.count("msm"));
  EXPECT_FALSE(stats.at("msm").perf.valid);
}

TEST(KernelStatsBetween, DecreasingCounterClampsToZero) {
  std::map<std::string, std::uint64_t> before{
      {"tsdist.kernel.calls.dtw", 10}};
  std::map<std::string, std::uint64_t> after{
      {"tsdist.kernel.calls.dtw", 4}};
  EXPECT_TRUE(KernelStatsBetween(before, after).empty());
}

// ---------------------------------------------------------------------------
// PerfRegion

std::map<std::string, std::uint64_t> CounterSnapshot() {
  return MetricsRegistry::Global().Snapshot().counters;
}

// Spins real CPU for roughly `ms` of wall time (profiler timers tick thread
// CPU clocks, so a sleep would be invisible to them).
void SpinFor(std::uint64_t ms) {
  const std::uint64_t until = NowNs() + ms * 1'000'000ull;
  volatile double sink = 0.0;
  while (NowNs() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
}

TEST(PerfRegion, PublishesCallsAndSelfWall) {
  const auto before = CounterSnapshot();
  {
    const PerfRegion region("profiler_test_single");
    SpinFor(2);
  }
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  ASSERT_TRUE(stats.count("profiler_test_single"));
  EXPECT_EQ(stats.at("profiler_test_single").calls, 1u);
  EXPECT_GT(stats.at("profiler_test_single").wall_ns, 1'000'000u);
}

TEST(PerfRegion, NestedChildCostIsNotDoubleCounted) {
  const auto before = CounterSnapshot();
  const std::uint64_t t0 = NowNs();
  {
    const PerfRegion outer("profiler_test_outer");
    SpinFor(2);
    {
      const PerfRegion inner("profiler_test_inner");
      SpinFor(4);
    }
    SpinFor(2);
  }
  const std::uint64_t elapsed = NowNs() - t0;
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  ASSERT_TRUE(stats.count("profiler_test_outer"));
  ASSERT_TRUE(stats.count("profiler_test_inner"));
  const KernelStats& outer = stats.at("profiler_test_outer");
  const KernelStats& inner = stats.at("profiler_test_inner");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_GT(inner.wall_ns, 3'000'000u);
  // Self accounting: the outer region excludes the inner's inclusive time,
  // and the two self times cannot exceed the elapsed wall clock.
  EXPECT_LT(outer.wall_ns, elapsed - inner.wall_ns + 1'000'000u);
  EXPECT_LE(outer.wall_ns + inner.wall_ns, elapsed);
}

TEST(PerfRegion, SameLabelAccumulatesAcrossInstances) {
  const auto before = CounterSnapshot();
  for (int i = 0; i < 5; ++i) {
    const PerfRegion region("profiler_test_repeat");
  }
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  ASSERT_TRUE(stats.count("profiler_test_repeat"));
  EXPECT_EQ(stats.at("profiler_test_repeat").calls, 5u);
}

TEST(PerfRegion, LabelIsSanitizedForMetricNames) {
  const auto before = CounterSnapshot();
  {
    const PerfRegion region("bad label\"here");
  }
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  EXPECT_TRUE(stats.count("bad_label_here"));
}

TEST(PerfRegion, RuntimeDisabledPublishesNothing) {
  SetEnabled(false);
  const auto before = CounterSnapshot();
  {
    const PerfRegion region("profiler_test_disabled");
    SpinFor(1);
  }
  const auto after = CounterSnapshot();
  SetEnabled(true);
  EXPECT_TRUE(KernelStatsBetween(before, after).empty());
}

void NestRegions(int remaining) {
  const PerfRegion region("profiler_test_overflow");
  if (remaining > 1) NestRegions(remaining - 1);
}

TEST(PerfRegion, DepthOverflowFoldsIntoAncestors) {
  const auto before = CounterSnapshot();
  NestRegions(24);  // kMaxRegionDepth is 16; the rest must deactivate
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  ASSERT_TRUE(stats.count("profiler_test_overflow"));
  EXPECT_EQ(stats.at("profiler_test_overflow").calls, 16u);
}

TEST(PerfRegion, DegradedPerfCountersStillPublishWall) {
  // Force the no-PMU path on a thread whose group latch is still fresh:
  // ThreadPerfGroup probes once per thread, so a brand-new thread started
  // while counters are force-disabled can never open a group.
  SetPerfCountersEnabled(false);
  auto before = CounterSnapshot();
  std::thread worker([] {
    const PerfRegion region("profiler_test_nopmu");
    SpinFor(1);
  });
  worker.join();
  const auto stats = KernelStatsBetween(before, CounterSnapshot());
  SetPerfCountersEnabled(true);
  ASSERT_TRUE(stats.count("profiler_test_nopmu"));
  EXPECT_EQ(stats.at("profiler_test_nopmu").calls, 1u);
  EXPECT_GT(stats.at("profiler_test_nopmu").wall_ns, 0u);
  EXPECT_FALSE(stats.at("profiler_test_nopmu").perf.valid);
}

// ---------------------------------------------------------------------------
// Sampling profiler lifecycle

struct FoldedHeader {
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t interval_us = 0;
  std::uint64_t threads = 0;
};

// Asserts the folded text is well-formed and returns the parsed header.
FoldedHeader CheckFolded(const std::string& folded) {
  FoldedHeader header;
  std::istringstream in(folded);
  std::string line;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_EQ(line.rfind("# tsdist.profile.v1 ", 0), 0u) << line;
  std::istringstream hs(line.substr(1));
  std::string token;
  while (hs >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::uint64_t value =
        std::strtoull(token.c_str() + eq + 1, nullptr, 10);
    const std::string key = token.substr(0, eq);
    if (key == "samples") header.samples = value;
    if (key == "dropped") header.dropped = value;
    if (key == "interval_us") header.interval_us = value;
    if (key == "threads") header.threads = value;
  }
  std::uint64_t body = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    EXPECT_TRUE(sp != std::string::npos && sp + 1 < line.size()) << line;
    if (sp == std::string::npos || sp + 1 >= line.size()) continue;
    for (std::size_t i = sp + 1; i < line.size(); ++i) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
    }
    body += std::strtoull(line.c_str() + sp + 1, nullptr, 10);
  }
  EXPECT_EQ(body, header.samples);
  return header;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(Profiler::Global().running())
        << "a previous test leaked a running profiler";
    Profiler::Global().Clear();
  }
  void TearDown() override {
    Profiler::Global().Stop();
    Profiler::Global().Clear();
    SetEnabled(true);
  }
};

TEST_F(ProfilerTest, StartStopLifecycle) {
  EXPECT_FALSE(Profiler::Global().Stop());  // not running yet
  ASSERT_TRUE(Profiler::Global().Start());
  EXPECT_TRUE(Profiler::Global().running());
  EXPECT_FALSE(Profiler::Global().Start());  // second start refused
  const ProfilerStatus status = Profiler::Global().Status();
  EXPECT_TRUE(status.running);
  EXPECT_EQ(status.interval_us, 1000u);
  EXPECT_TRUE(Profiler::Global().Stop());
  EXPECT_FALSE(Profiler::Global().running());
  EXPECT_FALSE(Profiler::Global().Stop());
}

TEST_F(ProfilerTest, StartRefusedWhenObservabilityDisabled) {
  SetEnabled(false);
  EXPECT_FALSE(Profiler::Global().Start());
  SetEnabled(true);
}

TEST_F(ProfilerTest, OptionsAreClampedToSaneFloors) {
  ProfilerOptions options;
  options.interval_us = 1;    // clamped to 100
  options.ring_capacity = 2;  // clamped to 64
  ASSERT_TRUE(Profiler::Global().Start(options));
  EXPECT_EQ(Profiler::Global().Status().interval_us, 100u);
  EXPECT_TRUE(Profiler::Global().Stop());
}

TEST_F(ProfilerTest, BusyThreadProducesSamples) {
  ASSERT_TRUE(Profiler::Global().Start());
  SpinFor(300);
  ASSERT_TRUE(Profiler::Global().Stop());
  const ProfilerStatus status = Profiler::Global().Status();
  // 300 ms of CPU at a 1 ms period; demand only a loose lower bound.
  EXPECT_GT(status.samples, 10u);
  EXPECT_GE(status.threads, 1u);

  const std::string folded = Profiler::Global().RenderFolded();
  const FoldedHeader header = CheckFolded(folded);
  EXPECT_EQ(header.samples, status.samples);
  EXPECT_EQ(header.interval_us, 1000u);
  EXPECT_GE(header.threads, 1u);
}

TEST_F(ProfilerTest, RenderFoldedIsSafeWhileRunning) {
  ASSERT_TRUE(Profiler::Global().Start());
  SpinFor(50);
  const std::string folded = Profiler::Global().RenderFolded();
  CheckFolded(folded);
  EXPECT_TRUE(Profiler::Global().running());  // sampling resumed
  SpinFor(50);
  EXPECT_TRUE(Profiler::Global().Stop());
}

TEST_F(ProfilerTest, SurvivesThreadChurn) {
  ASSERT_TRUE(Profiler::Global().Start());
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> workers;
    for (int i = 0; i < 8; ++i) {
      workers.emplace_back([] {
        RegisterProfilerThread();
        SpinFor(30);
        UnregisterProfilerThread();
      });
    }
    for (auto& w : workers) w.join();
  }
  SpinFor(30);
  ASSERT_TRUE(Profiler::Global().Stop());
  // Retired worker rings survive until Clear(): the dump still sees the
  // short-lived threads that actually captured samples.
  const ProfilerStatus status = Profiler::Global().Status();
  EXPECT_GT(status.samples, 0u);
  CheckFolded(Profiler::Global().RenderFolded());

  Profiler::Global().Clear();
  EXPECT_EQ(Profiler::Global().Status().samples, 0u);
}

TEST_F(ProfilerTest, ClearIsRefusedWhileRunning) {
  ASSERT_TRUE(Profiler::Global().Start());
  SpinFor(60);
  ASSERT_TRUE(Profiler::Global().running());
  const std::uint64_t before = Profiler::Global().Status().samples;
  Profiler::Global().Clear();
  EXPECT_GE(Profiler::Global().Status().samples, before);
  EXPECT_TRUE(Profiler::Global().Stop());
}

TEST_F(ProfilerTest, RingWrapCountsDrops) {
  ProfilerOptions options;
  options.interval_us = 100;  // fastest allowed
  options.ring_capacity = 64;  // smallest allowed: wraps in ~6.4 ms busy
  ASSERT_TRUE(Profiler::Global().Start(options));
  SpinFor(300);
  ASSERT_TRUE(Profiler::Global().Stop());
  const ProfilerStatus status = Profiler::Global().Status();
  EXPECT_LE(status.samples, 64u);
  EXPECT_GT(status.dropped, 0u);
  const FoldedHeader header = CheckFolded(Profiler::Global().RenderFolded());
  EXPECT_EQ(header.dropped, status.dropped);
}

TEST_F(ProfilerTest, ChromeTraceIsValidJson) {
  ASSERT_TRUE(Profiler::Global().Start());
  SpinFor(150);
  ASSERT_TRUE(Profiler::Global().Stop());
  const std::string trace = Profiler::Global().RenderChromeTrace();
  const JsonValue doc = ParseJson(trace);
  ASSERT_NE(doc.Find("traceEvents"), nullptr);
  ASSERT_NE(doc.Find("stackFrames"), nullptr);
  const JsonValue* samples = doc.Find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_FALSE(samples->AsArray().empty());
}

TEST_F(ProfilerTest, WriteProfileFoldedRoundTrips) {
  ASSERT_TRUE(Profiler::Global().Start());
  SpinFor(100);
  ASSERT_TRUE(Profiler::Global().Stop());
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsdist_test_profile.folded")
          .string();
  ASSERT_TRUE(WriteProfileFolded(path));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::ostringstream content;
  content << in.rdbuf();
  CheckFolded(content.str());
  std::filesystem::remove(path);

  EXPECT_FALSE(WriteProfileFolded("/nonexistent-dir/profile.folded"));
}

TEST_F(ProfilerTest, RegisterUnregisterAreIdempotent) {
  RegisterProfilerThread();
  RegisterProfilerThread();  // second call is a no-op
  UnregisterProfilerThread();
  UnregisterProfilerThread();  // already unregistered: no-op
  // The main thread re-registers on the next Start().
  ASSERT_TRUE(Profiler::Global().Start());
  EXPECT_TRUE(Profiler::Global().Stop());
}

}  // namespace
}  // namespace tsdist::obs
