// Unit and property tests for the 8 normalization methods.

#include "src/normalization/normalization.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian(3.0, 2.0);
  return out;
}

double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  const double mu = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

TEST(ZScoreTest, ProducesZeroMeanUnitVariance) {
  const auto x = RandomSeries(200, 1);
  const auto z = ZScoreNormalizer().Apply(std::span<const double>(x));
  EXPECT_NEAR(Mean(z), 0.0, 1e-10);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-10);
}

TEST(ZScoreTest, InvariantToLinearTransform) {
  // z-score(a*x + b) == z-score(x) for a > 0 — the scale/translation
  // invariance that motivated normalization in the first place (Section 4).
  const auto x = RandomSeries(100, 2);
  std::vector<double> scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) scaled[i] = 2.5 * x[i] - 7.0;
  const ZScoreNormalizer z;
  const auto zx = z.Apply(std::span<const double>(x));
  const auto zs = z.Apply(std::span<const double>(scaled));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(zx[i], zs[i], 1e-9);
  }
}

TEST(ZScoreTest, ConstantSeriesMapsToZeros) {
  const std::vector<double> x(10, 3.0);
  const auto z = ZScoreNormalizer().Apply(std::span<const double>(x));
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MinMaxTest, RangeIsUnitInterval) {
  const auto x = RandomSeries(100, 3);
  const auto y = MinMaxNormalizer().Apply(std::span<const double>(x));
  EXPECT_NEAR(*std::min_element(y.begin(), y.end()), 0.0, 1e-12);
  EXPECT_NEAR(*std::max_element(y.begin(), y.end()), 1.0, 1e-12);
}

TEST(MinMaxTest, CustomRange) {
  const auto x = RandomSeries(100, 4);
  const auto y = MinMaxNormalizer(1.0, 2.0).Apply(std::span<const double>(x));
  EXPECT_NEAR(*std::min_element(y.begin(), y.end()), 1.0, 1e-12);
  EXPECT_NEAR(*std::max_element(y.begin(), y.end()), 2.0, 1e-12);
}

TEST(MinMaxTest, ConstantSeriesMapsToLowerBound) {
  const std::vector<double> x(5, 9.0);
  const auto y = MinMaxNormalizer(0.5, 1.5).Apply(std::span<const double>(x));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(MeanNormTest, ZeroMeanAndBoundedByOne) {
  const auto x = RandomSeries(100, 5);
  const auto y = MeanNormalizer().Apply(std::span<const double>(x));
  EXPECT_NEAR(Mean(y), 0.0, 1e-10);
  const double lo = *std::min_element(y.begin(), y.end());
  const double hi = *std::max_element(y.begin(), y.end());
  EXPECT_NEAR(hi - lo, 1.0, 1e-12);  // range is exactly 1 by construction
}

TEST(MedianNormTest, MedianBecomesOne) {
  const std::vector<double> x = {2.0, 4.0, 8.0};
  const auto y = MedianNormalizer().Apply(std::span<const double>(x));
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(MedianNormTest, NearZeroMedianIsClamped) {
  const std::vector<double> x = {-1.0, 0.0, 1.0};
  const auto y = MedianNormalizer().Apply(std::span<const double>(x));
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(UnitLengthTest, ResultHasUnitNorm) {
  const auto x = RandomSeries(64, 6);
  const auto y = UnitLengthNormalizer().Apply(std::span<const double>(x));
  double norm = 0.0;
  for (double v : y) norm += v * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-12);
}

TEST(LogisticTest, MapsIntoOpenUnitInterval) {
  const auto x = RandomSeries(100, 7);
  const auto y = LogisticNormalizer().Apply(std::span<const double>(x));
  for (double v : y) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  // Logistic(0) = 0.5.
  const std::vector<double> zero = {0.0};
  EXPECT_DOUBLE_EQ(
      LogisticNormalizer().Apply(std::span<const double>(zero))[0], 0.5);
}

TEST(TanhTest, MapsIntoMinusOneOne) {
  const auto x = RandomSeries(100, 8);
  const auto y = TanhNormalizer().Apply(std::span<const double>(x));
  for (double v : y) {
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(TanhTest, MatchesPaperFormula) {
  // (e^{2x} - 1) / (e^{2x} + 1) == tanh(x).
  for (double x : {-2.0, -0.5, 0.0, 0.7, 3.0}) {
    const double expected = (std::exp(2 * x) - 1.0) / (std::exp(2 * x) + 1.0);
    const std::vector<double> in = {x};
    EXPECT_NEAR(TanhNormalizer().Apply(std::span<const double>(in))[0],
                expected, 1e-12);
  }
}

TEST(IdentityTest, IsNoOp) {
  const auto x = RandomSeries(10, 9);
  const auto y = IdentityNormalizer().Apply(std::span<const double>(x));
  EXPECT_EQ(x, y);
}

TEST(NormalizerTest, DatasetApplicationKeepsLabelsAndShape) {
  std::vector<TimeSeries> train = {TimeSeries({1.0, 2.0, 3.0}, 0),
                                   TimeSeries({4.0, 5.0, 6.0}, 1)};
  std::vector<TimeSeries> test = {TimeSeries({7.0, 8.0, 9.0}, 1)};
  const Dataset d("toy", std::move(train), std::move(test));
  const Dataset out = ZScoreNormalizer().Apply(d);
  EXPECT_EQ(out.name(), "toy");
  EXPECT_EQ(out.train_size(), 2u);
  EXPECT_EQ(out.test_size(), 1u);
  EXPECT_EQ(out.train_labels(), d.train_labels());
  EXPECT_EQ(out.series_length(), 3u);
}

TEST(MakeNormalizerTest, AllNamesResolve) {
  for (const auto& name : PerSeriesNormalizerNames()) {
    const NormalizerPtr n = MakeNormalizer(name);
    ASSERT_NE(n, nullptr) << name;
    EXPECT_EQ(n->name(), name);
  }
  EXPECT_NE(MakeNormalizer("none"), nullptr);
  EXPECT_EQ(MakeNormalizer("bogus"), nullptr);
}

TEST(AdaptiveScalingTest, ZeroDistanceForScaledPair) {
  // With the optimal alpha, a and 2a align exactly under ED.
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  AdaptiveScalingMeasure measure(std::make_unique<EuclideanDistance>());
  EXPECT_NEAR(measure.Distance(a, b), 0.0, 1e-12);
}

TEST(AdaptiveScalingTest, DelegatesCategoryAndName) {
  AdaptiveScalingMeasure measure(std::make_unique<EuclideanDistance>());
  EXPECT_EQ(measure.name(), "adaptive+euclidean");
  EXPECT_EQ(measure.category(), MeasureCategory::kLockStep);
}

}  // namespace
}  // namespace tsdist
