// Unit and property tests for the FFT and FFT-based cross-correlation.

#include "src/linalg/fft.h"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"

namespace tsdist {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> RandomComplex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> out(n);
  for (auto& c : out) c = Complex(rng.Gaussian(), rng.Gaussian());
  return out;
}

void ExpectClose(const std::vector<Complex>& a, const std::vector<Complex>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "index " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "index " << i;
  }
}

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(FftTest, MatchesNaiveDftOnPowerOfTwo) {
  const auto input = RandomComplex(64, 1);
  std::vector<Complex> fast = input;
  Fft(fast, /*inverse=*/false);
  const auto slow = NaiveDft(input, /*inverse=*/false);
  ExpectClose(fast, slow, 1e-9);
}

TEST(FftTest, RoundTripRecoversInput) {
  const auto input = RandomComplex(128, 2);
  std::vector<Complex> buffer = input;
  Fft(buffer, /*inverse=*/false);
  Fft(buffer, /*inverse=*/true);
  ExpectClose(buffer, input, 1e-9);
}

TEST(FftTest, DeltaFunctionHasFlatSpectrum) {
  std::vector<Complex> input(8, {0.0, 0.0});
  input[0] = {1.0, 0.0};
  Fft(input, /*inverse=*/false);
  for (const auto& c : input) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftAnySizeTest, MatchesNaiveDftOnNonPowerOfTwo) {
  for (std::size_t n : {3u, 5u, 7u, 12u, 30u, 100u}) {
    const auto input = RandomComplex(n, 100 + n);
    const auto fast = FftAnySize(input, /*inverse=*/false);
    const auto slow = NaiveDft(input, /*inverse=*/false);
    ExpectClose(fast, slow, 1e-8);
  }
}

TEST(FftAnySizeTest, InverseRoundTrip) {
  const auto input = RandomComplex(45, 3);
  const auto forward = FftAnySize(input, /*inverse=*/false);
  const auto back = FftAnySize(forward, /*inverse=*/true);
  ExpectClose(back, input, 1e-8);
}

TEST(FftAnySizeTest, EmptyInput) {
  EXPECT_TRUE(FftAnySize({}, false).empty());
}

TEST(CrossCorrelationTest, ZeroLagIsInnerProduct) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 5.0, 6.0};
  const auto cc = CrossCorrelationNaive(x, y);
  ASSERT_EQ(cc.size(), 5u);
  EXPECT_DOUBLE_EQ(cc[2], 32.0);  // lag 0 at index m-1
}

TEST(CrossCorrelationTest, HandComputedLags) {
  // x = [1, 2], y = [3, 4]:
  //   lag -1: x[0]*y[1]        = 4
  //   lag  0: 1*3 + 2*4        = 11
  //   lag +1: x[1]*y[0]        = 6
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {3.0, 4.0};
  const auto cc = CrossCorrelationNaive(x, y);
  ASSERT_EQ(cc.size(), 3u);
  EXPECT_DOUBLE_EQ(cc[0], 4.0);
  EXPECT_DOUBLE_EQ(cc[1], 11.0);
  EXPECT_DOUBLE_EQ(cc[2], 6.0);
}

// Property sweep: FFT-based and naive cross-correlation agree for many
// lengths, including ones that are not powers of two.
class CrossCorrelationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CrossCorrelationEquivalence, FftMatchesNaive) {
  const std::size_t m = static_cast<std::size_t>(GetParam());
  Rng rng(9000 + m);
  std::vector<double> x(m), y(m);
  for (std::size_t i = 0; i < m; ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  const auto fast = CrossCorrelationFft(x, y);
  const auto slow = CrossCorrelationNaive(x, y);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-8) << "lag index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrossCorrelationEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31, 64, 100,
                                           127, 128, 200));

TEST(CrossCorrelationTest, SelfCorrelationPeaksAtZeroLag) {
  Rng rng(4);
  std::vector<double> x(50);
  for (auto& v : x) v = rng.Gaussian();
  const auto cc = CrossCorrelationFft(x, x);
  const std::size_t zero_lag = x.size() - 1;
  for (std::size_t i = 0; i < cc.size(); ++i) {
    EXPECT_LE(cc[i], cc[zero_lag] + 1e-9);
  }
}

}  // namespace
}  // namespace tsdist
