// Unit and property tests for the truncated-DFT feature space.

#include "src/index/dft.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(DftFeaturesTest, DcCoefficientIsScaledSum) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto features = DftFeatures(v, 1);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_NEAR(features[0].real(), 10.0 / 2.0, 1e-9);  // sum / sqrt(4)
  EXPECT_NEAR(features[0].imag(), 0.0, 1e-9);
}

TEST(DftFeaturesTest, ParsevalEnergyEquality) {
  // With orthonormal scaling, total spectral energy equals time energy.
  const auto v = RandomSeries(32, 1);
  const auto features = DftFeatures(v, 32);
  double spectral = 0.0;
  for (const auto& c : features) spectral += std::norm(c);
  double time = 0.0;
  for (double x : v) time += x * x;
  EXPECT_NEAR(spectral, time, 1e-8);
}

// Property sweep: the truncated-DFT distance never exceeds ED, for any
// number of kept coefficients, including non-power-of-two lengths.
class DftLowerBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(DftLowerBoundProperty, LowerBoundsEuclidean) {
  const std::size_t n = 48;  // not a power of two: exercises Bluestein
  const auto a = RandomSeries(n, 100 + GetParam());
  const auto b = RandomSeries(n, 200 + GetParam());
  const double ed = EuclideanDistance().Distance(a, b);
  for (std::size_t c : {1u, 2u, 5u, 10u, 24u}) {
    const double lb =
        DftLowerBound(DftFeatures(a, c), DftFeatures(b, c), n);
    EXPECT_LE(lb, ed + 1e-8) << "coefficients " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DftLowerBoundProperty, ::testing::Range(0, 15));

TEST(DftLowerBoundTest, FullFoldedSpectrumIsExact) {
  // Even n: coefficients 0..n/2 with DC and Nyquist counted once cover the
  // whole spectrum, making the bound exact.
  const std::size_t n = 32;
  const auto a = RandomSeries(n, 7);
  const auto b = RandomSeries(n, 8);
  const double lb =
      DftLowerBound(DftFeatures(a, n / 2 + 1), DftFeatures(b, n / 2 + 1), n);
  EXPECT_NEAR(lb, EuclideanDistance().Distance(a, b), 1e-8);
}

TEST(DftLowerBoundTest, MoreCoefficientsTightenTheBound) {
  const std::size_t n = 64;
  const auto a = RandomSeries(n, 9);
  const auto b = RandomSeries(n, 10);
  double prev = 0.0;
  for (std::size_t c : {1u, 2u, 4u, 8u, 16u, 33u}) {
    const double lb = DftLowerBound(DftFeatures(a, c), DftFeatures(b, c), n);
    EXPECT_GE(lb, prev - 1e-9) << "coefficients " << c;
    prev = lb;
  }
}

TEST(DftLowerBoundTest, SmoothSeriesBoundIsTightWithFewCoefficients) {
  // Low-frequency series concentrate energy in the leading coefficients, so
  // a handful of them nearly recover ED — the F-index's raison d'etre.
  const std::size_t n = 64;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    a[i] = std::sin(2.0 * std::numbers::pi * t);
    b[i] = std::sin(2.0 * std::numbers::pi * (t + 0.1));
  }
  const double ed = EuclideanDistance().Distance(a, b);
  const double lb = DftLowerBound(DftFeatures(a, 4), DftFeatures(b, 4), n);
  EXPECT_GT(lb, 0.95 * ed);
}

}  // namespace
}  // namespace tsdist
