// Unit and property tests for the DTW lower bounds and pruned 1-NN search.

#include "src/elastic/lower_bounds.h"

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/elastic/dtw.h"
#include "src/linalg/rng.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(EnvelopeTest, ZeroWindowIsTheSeriesItself) {
  const std::vector<double> v = {1.0, 3.0, 2.0};
  const Envelope env = BuildEnvelope(v, 0.0);
  EXPECT_EQ(env.lower, v);
  EXPECT_EQ(env.upper, v);
}

TEST(EnvelopeTest, FullWindowIsGlobalMinMax) {
  const std::vector<double> v = {1.0, 3.0, 2.0};
  const Envelope env = BuildEnvelope(v, 100.0);
  for (double lo : env.lower) EXPECT_DOUBLE_EQ(lo, 1.0);
  for (double hi : env.upper) EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(EnvelopeTest, EnvelopeContainsTheSeries) {
  const auto v = RandomSeries(64, 1);
  const Envelope env = BuildEnvelope(v, 10.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(env.lower[i], v[i]);
    EXPECT_GE(env.upper[i], v[i]);
  }
}

TEST(LbKeoghTest, ZeroForSeriesInsideEnvelope) {
  const auto v = RandomSeries(32, 2);
  const Envelope env = BuildEnvelope(v, 10.0);
  EXPECT_DOUBLE_EQ(LbKeogh(v, env), 0.0);
}

TEST(LbKimTest, ZeroForIdenticalSeries) {
  const auto v = RandomSeries(32, 3);
  EXPECT_DOUBLE_EQ(LbKim(v, v), 0.0);
}

// Property sweep: both bounds never exceed the true banded DTW distance,
// for every warping-window width the evaluation pipeline uses (0 = diagonal,
// 100 = unconstrained).
class LowerBoundValidity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LowerBoundValidity, BoundsNeverExceedDtw) {
  const auto [seed, window_pct] = GetParam();
  const auto a = RandomSeries(48, 100 + static_cast<std::uint64_t>(seed));
  const auto b = RandomSeries(48, 200 + static_cast<std::uint64_t>(seed));
  const double dtw = DtwDistance(window_pct).Distance(a, b);
  EXPECT_LE(LbKim(a, b), dtw + 1e-9);
  const Envelope env_b = BuildEnvelope(b, window_pct);
  EXPECT_LE(LbKeogh(a, env_b), dtw + 1e-9);
}

TEST_P(LowerBoundValidity, BoundsHoldUnderTheOtherOperandOrderToo) {
  // LB_Keogh is asymmetric (the envelope belongs to the candidate); both
  // orientations must still lower-bound DTW, which is symmetric.
  const auto [seed, window_pct] = GetParam();
  const auto a = RandomSeries(32, 300 + static_cast<std::uint64_t>(seed));
  const auto b = RandomSeries(32, 400 + static_cast<std::uint64_t>(seed));
  const double dtw = DtwDistance(window_pct).Distance(a, b);
  EXPECT_LE(LbKim(b, a), dtw + 1e-9);
  const Envelope env_a = BuildEnvelope(a, window_pct);
  EXPECT_LE(LbKeogh(b, env_a), dtw + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWindow, LowerBoundValidity,
    ::testing::Combine(::testing::Range(0, 25),
                       ::testing::Values(0.0, 5.0, 10.0, 100.0)));

TEST(PrunedOneNnTest, AgreesWithExhaustiveSearch) {
  const double window_pct = 10.0;
  std::vector<std::vector<double>> candidates;
  std::vector<Envelope> envelopes;
  for (std::uint64_t s = 0; s < 20; ++s) {
    candidates.push_back(RandomSeries(48, 500 + s));
    envelopes.push_back(BuildEnvelope(candidates.back(), window_pct));
  }
  const DtwDistance dtw(window_pct);
  for (std::uint64_t q = 0; q < 5; ++q) {
    const auto query = RandomSeries(48, 900 + q);
    const PrunedSearchResult pruned =
        PrunedOneNn(query, candidates, envelopes, window_pct);
    // Exhaustive reference.
    std::size_t best = 0;
    double best_d = dtw.Distance(query, candidates[0]);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const double d = dtw.Distance(query, candidates[i]);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    EXPECT_EQ(pruned.best_index, best);
    EXPECT_DOUBLE_EQ(pruned.best_distance, best_d);
  }
}

TEST(PrunedOneNnTest, PruningActuallyHappensOnStructuredData) {
  // Candidates: one near-copy of the query and many distant series. The
  // cascade must prune most of the distant ones.
  const double window_pct = 5.0;
  Rng rng(42);
  std::vector<double> base(64);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = std::sin(0.2 * static_cast<double>(i));
  }
  std::vector<std::vector<double>> candidates;
  std::vector<double> near = base;
  for (auto& v : near) v += rng.Gaussian(0.0, 0.01);
  candidates.push_back(near);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> far(64);
    for (auto& v : far) v = rng.Gaussian(5.0, 1.0);  // offset far away
    candidates.push_back(std::move(far));
  }
  std::vector<Envelope> envelopes;
  for (const auto& c : candidates) {
    envelopes.push_back(BuildEnvelope(c, window_pct));
  }
  const PrunedSearchResult result =
      PrunedOneNn(base, candidates, envelopes, window_pct);
  EXPECT_EQ(result.best_index, 0u);
  EXPECT_GT(result.lb_kim_pruned + result.lb_keogh_pruned, 25u);
  EXPECT_LT(result.full_computations, 26u);
}

TEST(PrunedOneNnTest, CountsAreConsistent) {
  std::vector<std::vector<double>> candidates;
  std::vector<Envelope> envelopes;
  for (std::uint64_t s = 0; s < 10; ++s) {
    candidates.push_back(RandomSeries(32, 600 + s));
    envelopes.push_back(BuildEnvelope(candidates.back(), 10.0));
  }
  const auto query = RandomSeries(32, 999);
  const PrunedSearchResult r = PrunedOneNn(query, candidates, envelopes, 10.0);
  EXPECT_EQ(r.full_computations + r.lb_kim_pruned + r.lb_keogh_pruned,
            candidates.size());
  // Abandoned runs are a subset of the started full computations.
  EXPECT_LE(r.early_abandoned, r.full_computations);
}

TEST(PrunedOneNnTest, ThrowsOnEmptyCandidates) {
  const auto query = RandomSeries(16, 1);
  const std::vector<std::vector<double>> no_candidates;
  const std::vector<Envelope> no_envelopes;
  EXPECT_THROW(PrunedOneNn(query, no_candidates, no_envelopes, 10.0),
               std::invalid_argument);
}

TEST(PrunedOneNnTest, ThrowsOnEnvelopeCountMismatch) {
  const auto query = RandomSeries(16, 2);
  const std::vector<std::vector<double>> candidates = {RandomSeries(16, 3),
                                                       RandomSeries(16, 4)};
  const std::vector<Envelope> envelopes = {BuildEnvelope(candidates[0], 10.0)};
  EXPECT_THROW(PrunedOneNn(query, candidates, envelopes, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsdist
