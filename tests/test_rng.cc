// Unit tests for the deterministic RNG.

#include "src/linalg/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tsdist {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysBelowBound) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(14);
  const auto p = rng.Permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(15);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace tsdist
