// Unit and integration tests for the matrix profile.

#include "src/search/matrix_profile.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"
#include "src/search/mass.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(MatrixProfileTest, ShapeAndFiniteness) {
  const auto series = RandomSeries(200, 1);
  const MatrixProfile mp = ComputeMatrixProfile(series, 20);
  EXPECT_EQ(mp.profile.size(), 181u);
  EXPECT_EQ(mp.index.size(), 181u);
  EXPECT_EQ(mp.window, 20u);
  for (double v : mp.profile) EXPECT_TRUE(std::isfinite(v));
}

TEST(MatrixProfileTest, NeighborsRespectExclusionZone) {
  const auto series = RandomSeries(150, 2);
  const std::size_t m = 16;
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  for (std::size_t i = 0; i < mp.profile.size(); ++i) {
    const std::size_t gap =
        mp.index[i] > i ? mp.index[i] - i : i - mp.index[i];
    EXPECT_GE(gap, m / 2) << "window " << i;
  }
}

TEST(MatrixProfileTest, ProfileValuesMatchPerWindowMass) {
  // Cross-check a few entries against a direct MASS computation.
  const auto series = RandomSeries(120, 3);
  const std::size_t m = 12;
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  for (std::size_t i : {0u, 30u, 80u}) {
    const std::span<const double> query(series.data() + i, m);
    const auto distances = MassDistanceProfile(query, series);
    EXPECT_NEAR(mp.profile[i], distances[mp.index[i]], 1e-9) << i;
  }
}

TEST(MatrixProfileTest, PlantedMotifIsTheMinimum) {
  auto series = RandomSeries(400, 4);
  // Plant two near-identical patterns far apart.
  const std::size_t m = 32;
  for (std::size_t t = 0; t < m; ++t) {
    const double v = std::sin(0.5 * static_cast<double>(t));
    series[60 + t] = v;
    series[300 + t] = v + 0.01;
  }
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  const MotifPair motif = TopMotif(mp);
  // Allow a small positional slop (neighbouring windows overlap the motif).
  EXPECT_NEAR(static_cast<double>(motif.first), 60.0, 2.0);
  EXPECT_NEAR(static_cast<double>(motif.second), 300.0, 2.0);
  EXPECT_LT(motif.distance, 0.5);
}

TEST(MatrixProfileTest, PlantedAnomalyIsTheTopDiscord) {
  // A periodic series with one corrupted cycle: the discord.
  const std::size_t n = 512;
  const std::size_t m = 32;
  std::vector<double> series(n);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 32.0) +
                rng.Gaussian(0.0, 0.05);
  }
  for (std::size_t t = 0; t < m; ++t) {
    series[256 + t] += (t % 2 == 0) ? 1.5 : -1.5;  // corrupted cycle
  }
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  const auto discords = TopDiscords(mp, 1);
  ASSERT_EQ(discords.size(), 1u);
  // The discord window overlaps the corruption.
  EXPECT_GE(discords[0] + m, 256u);
  EXPECT_LE(discords[0], 256u + m);
}

TEST(MatrixProfileTest, TopDiscordsAreSeparated) {
  const auto series = RandomSeries(300, 6);
  const std::size_t m = 24;
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  const auto discords = TopDiscords(mp, 4);
  for (std::size_t i = 0; i < discords.size(); ++i) {
    for (std::size_t j = i + 1; j < discords.size(); ++j) {
      const std::size_t gap = discords[i] > discords[j]
                                  ? discords[i] - discords[j]
                                  : discords[j] - discords[i];
      EXPECT_GE(gap, m / 2);
    }
  }
}

TEST(MatrixProfileTest, PeriodicSeriesHasUniformlyLowProfile) {
  // Perfectly repeating structure: every window has a near-exact twin.
  const std::size_t n = 256;
  const std::size_t m = 16;
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  }
  const MatrixProfile mp = ComputeMatrixProfile(series, m);
  for (double v : mp.profile) EXPECT_LT(v, 1e-4);
}

}  // namespace
}  // namespace tsdist
