// Property-style TEST_P sweeps over the elastic measures.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/classify/param_grids.h"
#include "src/core/registry.h"
#include "src/elastic/elastic_all.h"
#include "src/linalg/rng.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

class ElasticPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  MeasurePtr Create() const {
    // Use the paper's unsupervised parameters — the defaults a practitioner
    // would run with.
    return Registry::Global().Create(GetParam(),
                                     UnsupervisedParamsFor(GetParam()));
  }
};

TEST_P(ElasticPropertyTest, SelfDistanceIsMinimal) {
  const MeasurePtr m = Create();
  const auto x = RandomSeries(20, 1);
  const double self = m->Distance(x, x);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto y = RandomSeries(20, 100 + seed);
    EXPECT_LE(self, m->Distance(x, y) + 1e-9) << m->name();
  }
}

TEST_P(ElasticPropertyTest, Symmetric) {
  const MeasurePtr m = Create();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto a = RandomSeries(18, 200 + seed);
    const auto b = RandomSeries(18, 300 + seed);
    EXPECT_NEAR(m->Distance(a, b), m->Distance(b, a), 1e-9) << m->name();
  }
}

TEST_P(ElasticPropertyTest, FiniteOnRandomData) {
  const MeasurePtr m = Create();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = RandomSeries(25, 400 + seed);
    const auto b = RandomSeries(25, 500 + seed);
    EXPECT_TRUE(std::isfinite(m->Distance(a, b))) << m->name();
  }
}

TEST_P(ElasticPropertyTest, MetricMeasuresSatisfyTriangleInequality) {
  const MeasurePtr m = Create();
  if (!m->is_metric()) GTEST_SKIP() << "not a metric";
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto a = RandomSeries(14, 600 + seed);
    const auto b = RandomSeries(14, 700 + seed);
    const auto c = RandomSeries(14, 800 + seed);
    EXPECT_LE(m->Distance(a, c),
              m->Distance(a, b) + m->Distance(b, c) + 1e-9)
        << m->name();
  }
}

TEST_P(ElasticPropertyTest, DeterministicAcrossCalls) {
  const MeasurePtr m = Create();
  const auto a = RandomSeries(16, 2);
  const auto b = RandomSeries(16, 3);
  EXPECT_EQ(m->Distance(a, b), m->Distance(a, b));
}

TEST_P(ElasticPropertyTest, InvariantUnderCommonTranslationForValueBased) {
  // DTW / ERP(g translated too) are value-difference based; verify the
  // weaker universal property: adding the same constant to both series does
  // not change difference-based measures (threshold measures included, since
  // |(a+k) - (b+k)| = |a-b|).
  const MeasurePtr m = Create();
  if (m->name() == "erp" || m->name() == "twe") {
    GTEST_SKIP() << "compares against a fixed reference (erp: g, twe: the "
                    "implicit zero-valued point at time 0)";
  }
  const auto a = RandomSeries(16, 4);
  const auto b = RandomSeries(16, 5);
  std::vector<double> a_shift = a;
  std::vector<double> b_shift = b;
  for (auto& v : a_shift) v += 3.0;
  for (auto& v : b_shift) v += 3.0;
  EXPECT_NEAR(m->Distance(a, b), m->Distance(a_shift, b_shift), 1e-9)
      << m->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllElastic, ElasticPropertyTest, ::testing::ValuesIn(ElasticMeasureNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Table 4 grids must be non-empty and honoured by the factories.
class ElasticGridTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ElasticGridTest, GridCandidatesConstructible) {
  const auto grid = ParamGridFor(GetParam());
  EXPECT_FALSE(grid.empty());
  for (const auto& params : grid) {
    const MeasurePtr m = Registry::Global().Create(GetParam(), params);
    ASSERT_NE(m, nullptr);
    for (const auto& [key, value] : params) {
      const auto got = m->params();
      ASSERT_TRUE(got.count(key)) << GetParam() << " missing " << key;
      EXPECT_DOUBLE_EQ(got.at(key), value) << GetParam() << " " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllElastic, ElasticGridTest, ::testing::ValuesIn(ElasticMeasureNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(ParamGridTest, Table4Cardinalities) {
  EXPECT_EQ(ParamGridFor("msm").size(), 10u);
  EXPECT_EQ(ParamGridFor("dtw").size(), 22u);
  EXPECT_EQ(ParamGridFor("edr").size(), 20u);
  EXPECT_EQ(ParamGridFor("lcss").size(), 40u);  // 2 deltas x 20 epsilons
  EXPECT_EQ(ParamGridFor("twe").size(), 30u);   // 5 lambdas x 6 nus
  EXPECT_EQ(ParamGridFor("swale").size(), 15u);
  EXPECT_EQ(ParamGridFor("minkowski").size(), 20u);
  EXPECT_EQ(ParamGridFor("kdtw").size(), 16u);
  EXPECT_EQ(ParamGridFor("gak").size(), 26u);
  EXPECT_EQ(ParamGridFor("sink").size(), 20u);
  EXPECT_EQ(ParamGridFor("rbf").size(), 16u);
}

TEST(ParamGridTest, UnknownMeasureGetsSingleEmptyGrid) {
  const auto grid = ParamGridFor("erp");
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].empty());
}

TEST(ParamGridTest, UnsupervisedDefaultsMatchPaper) {
  EXPECT_DOUBLE_EQ(UnsupervisedParamsFor("msm").at("c"), 0.5);
  EXPECT_DOUBLE_EQ(UnsupervisedParamsFor("dtw").at("delta"), 10.0);
  EXPECT_DOUBLE_EQ(UnsupervisedParamsFor("twe").at("lambda"), 1.0);
  EXPECT_DOUBLE_EQ(UnsupervisedParamsFor("twe").at("nu"), 0.0001);
  EXPECT_DOUBLE_EQ(UnsupervisedParamsFor("kdtw").at("gamma"), 0.125);
  EXPECT_TRUE(UnsupervisedParamsFor("erp").empty());
}

}  // namespace
}  // namespace tsdist
