// Known-value unit tests for the lock-step distance measures.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/lockstep/lockstep_all.h"

namespace tsdist {
namespace {

const std::vector<double> kA = {1.0, 2.0, 3.0};
const std::vector<double> kB = {2.0, 4.0, 6.0};

TEST(MinkowskiFamilyTest, EuclideanKnownValue) {
  EXPECT_NEAR(EuclideanDistance().Distance(kA, kB),
              std::sqrt(1.0 + 4.0 + 9.0), 1e-12);
}

TEST(MinkowskiFamilyTest, ManhattanKnownValue) {
  EXPECT_DOUBLE_EQ(ManhattanDistance().Distance(kA, kB), 6.0);
}

TEST(MinkowskiFamilyTest, ChebyshevKnownValue) {
  EXPECT_DOUBLE_EQ(ChebyshevDistance().Distance(kA, kB), 3.0);
}

TEST(MinkowskiFamilyTest, MinkowskiReducesToSpecialCases) {
  EXPECT_NEAR(MinkowskiDistance(2.0).Distance(kA, kB),
              EuclideanDistance().Distance(kA, kB), 1e-12);
  EXPECT_NEAR(MinkowskiDistance(1.0).Distance(kA, kB),
              ManhattanDistance().Distance(kA, kB), 1e-12);
  // Large p approaches Chebyshev.
  EXPECT_NEAR(MinkowskiDistance(64.0).Distance(kA, kB),
              ChebyshevDistance().Distance(kA, kB), 0.1);
}

TEST(L1FamilyTest, SorensenKnownValue) {
  // sum|a-b| = 6, sum(a+b) = 18.
  EXPECT_NEAR(SorensenDistance().Distance(kA, kB), 6.0 / 18.0, 1e-12);
}

TEST(L1FamilyTest, GowerIsMeanAbsoluteDifference) {
  EXPECT_DOUBLE_EQ(GowerDistance().Distance(kA, kB), 2.0);
}

TEST(L1FamilyTest, SoergelKnownValue) {
  // sum max = 2+4+6 = 12.
  EXPECT_NEAR(SoergelDistance().Distance(kA, kB), 6.0 / 12.0, 1e-12);
}

TEST(L1FamilyTest, KulczynskiDKnownValue) {
  // sum min = 1+2+3 = 6.
  EXPECT_NEAR(KulczynskiDDistance().Distance(kA, kB), 6.0 / 6.0, 1e-12);
}

TEST(L1FamilyTest, CanberraKnownValue) {
  // per-point |a-b|/(a+b) = 1/3 each.
  EXPECT_NEAR(CanberraDistance().Distance(kA, kB), 1.0, 1e-12);
}

TEST(L1FamilyTest, LorentzianKnownValue) {
  const double expected = std::log(2.0) + std::log(3.0) + std::log(4.0);
  EXPECT_NEAR(LorentzianDistance().Distance(kA, kB), expected, 1e-12);
}

TEST(IntersectionFamilyTest, IntersectionIsHalfL1) {
  EXPECT_DOUBLE_EQ(IntersectionDistance().Distance(kA, kB), 3.0);
}

TEST(IntersectionFamilyTest, WaveHedgesKnownValue) {
  // per-point |a-b|/max = 1/2 each.
  EXPECT_NEAR(WaveHedgesDistance().Distance(kA, kB), 1.5, 1e-12);
}

TEST(IntersectionFamilyTest, CzekanowskiEqualsSorensenOnPositiveData) {
  EXPECT_NEAR(CzekanowskiDistance().Distance(kA, kB),
              SorensenDistance().Distance(kA, kB), 1e-12);
}

TEST(IntersectionFamilyTest, MotykaKnownValue) {
  EXPECT_NEAR(MotykaDistance().Distance(kA, kB), 12.0 / 18.0, 1e-12);
}

TEST(IntersectionFamilyTest, MotykaIsAtLeastHalfOnPositiveData) {
  EXPECT_GE(MotykaDistance().Distance(kA, kB), 0.5);
  EXPECT_NEAR(MotykaDistance().Distance(kA, kA), 0.5, 1e-12);
}

TEST(IntersectionFamilyTest, RuzickaEqualsSoergelOnPositiveData) {
  EXPECT_NEAR(RuzickaDistance().Distance(kA, kB),
              SoergelDistance().Distance(kA, kB), 1e-12);
}

TEST(IntersectionFamilyTest, TanimotoKnownValue) {
  // (6 + 12 - 2*6) / (6 + 12 - 6) = 6/12.
  EXPECT_NEAR(TanimotoDistance().Distance(kA, kB), 0.5, 1e-12);
}

TEST(InnerProductFamilyTest, InnerProductIsNegatedDot) {
  EXPECT_DOUBLE_EQ(InnerProductDistance().Distance(kA, kB), -28.0);
}

TEST(InnerProductFamilyTest, CosineOfParallelVectorsIsZero) {
  // kB = 2 * kA, so cosine similarity is exactly 1.
  EXPECT_NEAR(CosineDistance().Distance(kA, kB), 0.0, 1e-12);
}

TEST(InnerProductFamilyTest, CosineOfOrthogonalVectorsIsOne) {
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_NEAR(CosineDistance().Distance(x, y), 1.0, 1e-12);
}

TEST(InnerProductFamilyTest, JaccardKnownValue) {
  // sum(a-b)^2 = 14; a.a = 14, b.b = 56, a.b = 28 -> denom = 42.
  EXPECT_NEAR(JaccardDistance().Distance(kA, kB), 14.0 / 42.0, 1e-12);
}

TEST(InnerProductFamilyTest, DiceKnownValue) {
  EXPECT_NEAR(DiceDistance().Distance(kA, kB), 14.0 / 70.0, 1e-12);
}

TEST(InnerProductFamilyTest, KumarHassebrookOfIdenticalIsZero) {
  EXPECT_NEAR(KumarHassebrookDistance().Distance(kA, kA), 0.0, 1e-12);
}

TEST(FidelityFamilyTest, FidelityOfProbabilityVectorIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(FidelityDistance().Distance(p, p), 0.0, 1e-12);
}

TEST(FidelityFamilyTest, HellingerMatusitaSquaredChordRelations) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const std::vector<double> q = {0.4, 0.4, 0.2};
  const double sc = SquaredChordDistance().Distance(p, q);
  EXPECT_NEAR(MatusitaDistance().Distance(p, q), std::sqrt(sc), 1e-12);
  EXPECT_NEAR(HellingerDistance().Distance(p, q), std::sqrt(2.0 * sc), 1e-12);
}

TEST(FidelityFamilyTest, BhattacharyyaOfIdenticalDistributionIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(BhattacharyyaDistance().Distance(p, p), 0.0, 1e-10);
}

TEST(SquaredL2FamilyTest, SquaredEuclideanKnownValue) {
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance().Distance(kA, kB), 14.0);
}

TEST(SquaredL2FamilyTest, PearsonAndNeymanAreAsymmetricTwins) {
  const double pearson = PearsonChiSqDistance().Distance(kA, kB);
  const double neyman = NeymanChiSqDistance().Distance(kB, kA);
  EXPECT_NEAR(pearson, neyman, 1e-12);
}

TEST(SquaredL2FamilyTest, ProbSymmetricIsTwiceSquaredChiSq) {
  EXPECT_NEAR(ProbSymmetricChiSqDistance().Distance(kA, kB),
              2.0 * SquaredChiSqDistance().Distance(kA, kB), 1e-12);
}

TEST(SquaredL2FamilyTest, ClarkKnownValue) {
  // per-point (|a-b|/(a+b))^2 = 1/9 -> sqrt(3/9).
  EXPECT_NEAR(ClarkDistance().Distance(kA, kB), std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(SquaredL2FamilyTest, AdditiveSymmetricKnownValue) {
  // sum (a-b)^2 (a+b) / (a b): 1*3/2 + 4*6/8 + 9*9/18 = 9.
  EXPECT_NEAR(AdditiveSymmetricChiSqDistance().Distance(kA, kB), 9.0, 1e-12);
}

TEST(EntropyFamilyTest, KlOfIdenticalDistributionIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KullbackLeiblerDistance().Distance(p, p), 0.0, 1e-12);
}

TEST(EntropyFamilyTest, KlIsAsymmetric) {
  const std::vector<double> p = {0.1, 0.9};
  const std::vector<double> q = {0.5, 0.5};
  const double pq = KullbackLeiblerDistance().Distance(p, q);
  const double qp = KullbackLeiblerDistance().Distance(q, p);
  EXPECT_GT(std::fabs(pq - qp), 1e-3);
}

TEST(EntropyFamilyTest, JeffreysIsSymmetrizedKl) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const std::vector<double> q = {0.5, 0.3, 0.2};
  const double expected = KullbackLeiblerDistance().Distance(p, q) +
                          KullbackLeiblerDistance().Distance(q, p);
  EXPECT_NEAR(JeffreysDistance().Distance(p, q), expected, 1e-12);
}

TEST(EntropyFamilyTest, JensenShannonIsHalfTopsoe) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const std::vector<double> q = {0.5, 0.3, 0.2};
  EXPECT_NEAR(JensenShannonDistance().Distance(p, q),
              0.5 * TopsoeDistance().Distance(p, q), 1e-12);
}

TEST(EntropyFamilyTest, JensenShannonEqualsJensenDifferenceOnDistributions) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const std::vector<double> q = {0.5, 0.3, 0.2};
  EXPECT_NEAR(JensenDifferenceDistance().Distance(p, q),
              JensenShannonDistance().Distance(p, q), 1e-10);
}

TEST(EntropyFamilyTest, JensenShannonBoundedByLn2) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_LE(JensenShannonDistance().Distance(p, q), std::log(2.0) + 1e-9);
}

TEST(CombinationFamilyTest, AvgL1LinfKnownValue) {
  EXPECT_DOUBLE_EQ(AvgL1LinfDistance().Distance(kA, kB), 0.5 * (6.0 + 3.0));
}

TEST(CombinationFamilyTest, TanejaOfIdenticalIsZero) {
  EXPECT_NEAR(TanejaDistance().Distance(kA, kA), 0.0, 1e-10);
}

TEST(CombinationFamilyTest, KumarJohnsonOfIdenticalIsZero) {
  EXPECT_NEAR(KumarJohnsonDistance().Distance(kA, kA), 0.0, 1e-10);
}

TEST(EmanonFamilyTest, Emanon4KnownValue) {
  // sum (a-b)^2 / max: 1/2 + 4/4 + 9/6 = 3.
  EXPECT_NEAR(Emanon4Distance().Distance(kA, kB), 3.0, 1e-12);
}

TEST(EmanonFamilyTest, Emanon3VersusEmanon4Ordering) {
  // min-denominator variant must dominate the max-denominator variant on
  // positive data.
  EXPECT_GE(Emanon3Distance().Distance(kA, kB),
            Emanon4Distance().Distance(kA, kB));
}

TEST(EmanonFamilyTest, MaxSymmetricChiSqIsMaxOfPearsonNeyman) {
  const double expected = std::max(NeymanChiSqDistance().Distance(kA, kB),
                                   PearsonChiSqDistance().Distance(kA, kB));
  EXPECT_NEAR(MaxSymmetricChiSqDistance().Distance(kA, kB), expected, 1e-12);
}

TEST(ExtraMeasuresTest, DissimOfIdenticalIsZero) {
  EXPECT_DOUBLE_EQ(DissimDistance().Distance(kA, kA), 0.0);
}

TEST(ExtraMeasuresTest, DissimTrapezoidKnownValue) {
  // Per-point |a-b| = {1, 2, 3}; trapezoid: (1+2)/2 + (2+3)/2 = 4.
  EXPECT_NEAR(DissimDistance().Distance(kA, kB), 4.0, 1e-12);
}

TEST(ExtraMeasuresTest, DissimSingletonFallsBackToAbsoluteDifference) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {4.0};
  EXPECT_DOUBLE_EQ(DissimDistance().Distance(x, y), 3.0);
}

TEST(ExtraMeasuresTest, AsdIsScaleInvariantInSecondArgument) {
  // ASD aligns b to a under the optimal scale, so scaled copies match.
  EXPECT_NEAR(AdaptiveScalingDistance().Distance(kA, kB), 0.0, 1e-12);
}

TEST(ExtraMeasuresTest, AsdDetectsShapeDifference) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 1.0, 2.0};
  EXPECT_GT(AdaptiveScalingDistance().Distance(x, y), 0.1);
}

}  // namespace
}  // namespace tsdist
