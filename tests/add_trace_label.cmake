# Appends the `obs` and `trace` labels to every test discovered from the
# distributed-tracing binary (test_trace_spool), so CI can run the
# fleet-tracing suite alone (ctest -L trace / the `trace` test preset) or as
# part of the observability selection (ctest -L obs). Same
# TEST_INCLUDE_FILES technique as add_shard_label.cmake (which see): the
# full label list is substituted at configure time (@TSDIST_TEST_LABELS@),
# and this script's glob is disjoint from the other label scripts' globs, so
# relative ordering among them does not matter.
file(GLOB _tsdist_trace_files
     "${CMAKE_CURRENT_LIST_DIR}/test_trace*_tests.cmake")
foreach(_file IN LISTS _tsdist_trace_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;obs;trace")
    endif()
  endforeach()
endforeach()
unset(_tsdist_trace_files)
unset(_add_test_lines)
