// Property-style TEST_P sweeps over all 52 lock-step measures.
//
// Checks that every measure is a well-behaved dissimilarity on its valid
// domain: finite output, (near-)minimal self-distance, symmetry for the
// symmetric measures, and metric axioms for the measures claiming to be
// metrics. Inputs are positive (MinMax-[1,2]-style), matching the domain the
// survey defines the formulas on.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/linalg/rng.h"
#include "src/lockstep/lockstep_all.h"

namespace tsdist {
namespace {

// Measures that are genuinely asymmetric by definition.
bool IsAsymmetric(const std::string& name) {
  return name == "pearson_chisq" || name == "neyman_chisq" ||
         name == "kullback_leibler" || name == "k_divergence" ||
         name == "asd";
}

std::vector<double> PositiveSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Uniform(1.0, 2.0);
  return out;
}

class LockStepPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  MeasurePtr Create() const {
    MeasurePtr m = Registry::Global().Create(GetParam());
    EXPECT_NE(m, nullptr) << GetParam();
    return m;
  }
};

TEST_P(LockStepPropertyTest, RegisteredWithCorrectMetadata) {
  const MeasurePtr m = Create();
  EXPECT_EQ(m->name(), GetParam());
  EXPECT_EQ(m->category(), MeasureCategory::kLockStep);
  EXPECT_EQ(m->cost_class(), CostClass::kLinear);
}

TEST_P(LockStepPropertyTest, FiniteOnRandomPositiveData) {
  const MeasurePtr m = Create();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto a = PositiveSeries(32, 100 + seed);
    const auto b = PositiveSeries(32, 200 + seed);
    EXPECT_TRUE(std::isfinite(m->Distance(a, b))) << m->name();
  }
}

TEST_P(LockStepPropertyTest, FiniteOnDataWithZerosAndNegatives) {
  // The domain guards must keep every measure total on raw (z-normalized
  // style) data containing zeros and negative values.
  const MeasurePtr m = Create();
  const std::vector<double> a = {0.0, -1.0, 2.0, 0.0, -0.5};
  const std::vector<double> b = {1.0, 0.0, -2.0, 0.0, 0.5};
  EXPECT_TRUE(std::isfinite(m->Distance(a, b))) << m->name();
  EXPECT_TRUE(std::isfinite(m->Distance(a, a))) << m->name();
}

// Measures for which d(x, x) <= d(x, y) is NOT guaranteed on arbitrary
// positive data: unbounded similarity negations (a longer vector can
// out-correlate x with itself) and the non-symmetrized entropy divergences
// (which can be negative off the probability simplex).
bool SelfMinimalityNotGuaranteed(const std::string& name) {
  return name == "innerproduct" || name == "harmonicmean" ||
         name == "fidelity" || name == "bhattacharyya" ||
         name == "kullback_leibler" || name == "k_divergence";
}

TEST_P(LockStepPropertyTest, SelfDistanceIsMinimal) {
  // d(x, x) <= d(x, y) for all y: self-comparison can never look worse than
  // comparison to a different series (similarity-derived measures may have
  // negative or non-zero self values, but they must still be minimal).
  const MeasurePtr m = Create();
  if (SelfMinimalityNotGuaranteed(m->name())) {
    GTEST_SKIP() << "self-minimality holds only on normalized domains";
  }
  const auto x = PositiveSeries(24, 7);
  const double self = m->Distance(x, x);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto y = PositiveSeries(24, 300 + seed);
    EXPECT_LE(self, m->Distance(x, y) + 1e-9)
        << m->name() << " seed " << seed;
  }
}

TEST_P(LockStepPropertyTest, SymmetricUnlessDocumented) {
  const MeasurePtr m = Create();
  if (IsAsymmetric(m->name())) GTEST_SKIP() << "asymmetric by definition";
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto a = PositiveSeries(20, 400 + seed);
    const auto b = PositiveSeries(20, 500 + seed);
    EXPECT_NEAR(m->Distance(a, b), m->Distance(b, a), 1e-9) << m->name();
  }
}

TEST_P(LockStepPropertyTest, MetricMeasuresSatisfyTriangleInequality) {
  const MeasurePtr m = Create();
  if (!m->is_metric()) GTEST_SKIP() << "not a metric";
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = PositiveSeries(16, 600 + seed);
    const auto b = PositiveSeries(16, 700 + seed);
    const auto c = PositiveSeries(16, 800 + seed);
    EXPECT_LE(m->Distance(a, c),
              m->Distance(a, b) + m->Distance(b, c) + 1e-9)
        << m->name();
  }
}

TEST_P(LockStepPropertyTest, DeterministicAcrossCalls) {
  const MeasurePtr m = Create();
  const auto a = PositiveSeries(30, 1);
  const auto b = PositiveSeries(30, 2);
  EXPECT_EQ(m->Distance(a, b), m->Distance(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    AllLockStep, LockStepPropertyTest,
    ::testing::ValuesIn(LockStepMeasureNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(LockStepInventoryTest, ExactlyFiftyTwoMeasures) {
  EXPECT_EQ(LockStepMeasureNames().size(), 52u);
}

TEST(LockStepInventoryTest, AllNamesRegisteredAndUnique) {
  const auto& names = LockStepMeasureNames();
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate lock-step measure name";
  for (const auto& name : names) {
    EXPECT_TRUE(Registry::Global().Contains(name)) << name;
  }
}

TEST(LockStepEquivalenceTest, EdAndInnerProductAgreeUnderZNormalization) {
  // Under z-normalization ED^2 = 2m - 2<a, b>, so the 1-NN orderings of ED
  // and (negated) inner product coincide — the equivalence the paper uses to
  // criticize the earlier lock-step study.
  Rng rng(99);
  auto znorm = [](std::vector<double> v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    const double stddev = std::sqrt(var / static_cast<double>(v.size()));
    for (double& x : v) x = (x - mean) / stddev;
    return v;
  };
  std::vector<std::vector<double>> pool;
  for (int i = 0; i < 6; ++i) {
    std::vector<double> v(32);
    for (auto& x : v) x = rng.Gaussian();
    pool.push_back(znorm(v));
  }
  const EuclideanDistance ed;
  const InnerProductDistance ip;
  // Orderings relative to pool[0] must match.
  std::vector<std::size_t> by_ed = {1, 2, 3, 4, 5};
  std::vector<std::size_t> by_ip = by_ed;
  auto cmp = [&pool](const auto& d) {
    return [&pool, &d](std::size_t x, std::size_t y) {
      return d.Distance(pool[0], pool[x]) < d.Distance(pool[0], pool[y]);
    };
  };
  std::sort(by_ed.begin(), by_ed.end(), cmp(ed));
  std::sort(by_ip.begin(), by_ip.end(), cmp(ip));
  EXPECT_EQ(by_ed, by_ip);
}

}  // namespace
}  // namespace tsdist
