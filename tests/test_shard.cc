// Tests for the sharded sweep runtime (src/shard): the tsdist.lease.v1 wire
// format (torn-tail recovery, O_EXCL double-claim arbitration), the shard
// plan manifest, fleet-health aggregation, and — the load-bearing contracts
// — that a sharded sweep merged back together is byte-identical to a
// single-process run (for symmetric and asymmetric measures), that a dead
// worker's shard is reclaimed with its durable cells salvaged while the
// fenced zombie stays harmless, that a poison shard is quarantined after
// retry_max epochs, and that a fault in the merge step leaves every shard
// input untouched.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/linalg/rng.h"
#include "src/obs/json.h"
#include "src/resilience/cancellation.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault.h"
#include "src/shard/cell_log.h"
#include "src/shard/fleet.h"
#include "src/shard/lease.h"
#include "src/shard/manifest.h"
#include "src/shard/merge.h"
#include "src/shard/worker.h"

namespace tsdist {
namespace {

namespace fs = std::filesystem;
using namespace tsdist::shard;  // NOLINT: exercising one subsystem

#if defined(TSDIST_FAULT_NOOP)
#define TSDIST_SKIP_IF_FAULT_NOOP() \
  GTEST_SKIP() << "fault-injection sites compiled out (TSDIST_FAULT_NOOP)"
#else
#define TSDIST_SKIP_IF_FAULT_NOOP()
#endif

std::vector<TimeSeries> MakeCollection(std::size_t n, std::size_t m,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimeSeries> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(m);
    // Strictly positive values so the asymmetric entropy-family measures
    // (kullback_leibler) are well-defined on every cell.
    for (auto& v : values) v = 0.1 + std::abs(rng.Gaussian());
    out.emplace_back(std::move(values), static_cast<int>(i % 2));
  }
  return out;
}

std::vector<Dataset> MakeDatasets() {
  std::vector<Dataset> out;
  out.emplace_back("SynthA", MakeCollection(6, 16, 11),
                   MakeCollection(4, 16, 12));
  out.emplace_back("SynthB", MakeCollection(5, 16, 21),
                   MakeCollection(3, 16, 22));
  return out;
}

ShardPlan MakePlan(const std::vector<Dataset>& datasets,
                   std::vector<std::string> measures, std::size_t num_shards,
                   double ttl_sec = 10.0) {
  ShardPlan plan;
  plan.supervised = false;
  plan.pruned = false;
  plan.norm = "none";
  plan.scale = "selftest";
  plan.budget_sec = 0.0;
  plan.tile_rows = 32;
  plan.lease_ttl_sec = ttl_sec;
  plan.retry_max = 5;
  plan.measures = std::move(measures);
  plan.datasets = FingerprintDatasets(datasets);
  PartitionCells(&plan, num_shards);
  return plan;
}

// The single-process reference: evaluates one cell exactly the way the
// worker's ComputeCell and the tsdist_eval driver do, so the expected
// results.jsonl can be rendered in-process.
CellOutcome ReferenceCell(const ShardPlan& plan,
                          const std::vector<Dataset>& datasets,
                          const PairwiseEngine& engine, std::size_t di,
                          std::size_t mi, const std::string& ckpt_dir) {
  const Dataset& dataset = datasets[di];
  const std::string& name = plan.measures[mi];
  CellOutcome out;
  out.dataset = dataset.name();
  out.measure = name;
  CancellationToken budget;
  if (plan.budget_sec > 0.0) budget.SetBudget(plan.budget_sec);
  EvalOptions eval_options;
  eval_options.pruned = plan.pruned;
  eval_options.cancel = &budget;
  eval_options.tile_rows = plan.tile_rows;
  eval_options.checkpoint_dir = ckpt_dir + "/" + out.dataset + "/" + name;
  try {
    const EvalResult result =
        plan.supervised
            ? EvaluateTuned(name, ParamGridFor(name), dataset, engine,
                            Registry::Global(), eval_options)
            : EvaluateFixed(name, UnsupervisedParamsFor(name), dataset,
                            engine, Registry::Global(), eval_options);
    out.params = ToString(result.params);
    out.status = result.status;
    out.reason = result.reason;
    out.train_accuracy = result.train_accuracy;
    out.test_accuracy = result.test_accuracy;
  } catch (const std::exception& e) {
    out.status = EvalStatus::kFailed;
    out.reason = e.what();
  }
  return out;
}

// What an uninterrupted single-process sweep's results.jsonl holds: every
// ok/failed cell's tsdist.cell.v1 line in canonical order.
std::string ReferenceLog(const ShardPlan& plan,
                         const std::vector<Dataset>& datasets,
                         const PairwiseEngine& engine,
                         const std::string& ckpt_dir) {
  std::string log;
  for (std::size_t di = 0; di < datasets.size(); ++di) {
    for (std::size_t mi = 0; mi < plan.measures.size(); ++mi) {
      const CellOutcome out =
          ReferenceCell(plan, datasets, engine, di, mi, ckpt_dir);
      EXPECT_TRUE(out.status == EvalStatus::kOk ||
                  out.status == EvalStatus::kFailed)
          << out.dataset << "/" << out.measure << ": " << out.reason;
      log += CellLogLine(out) + "\n";
    }
  }
  return log;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("shard_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Disarm();
    fs::remove_all(dir_);
  }
  std::string Dir(const std::string& sub = "") const {
    return sub.empty() ? dir_.string() : (dir_ / sub).string();
  }
  // Publishes `plan` into a fresh checkpoint directory rooted at `sub`.
  std::string Publish(const ShardPlan& plan, const std::string& sub) {
    const std::string ckpt = Dir(sub);
    std::error_code ec;
    fs::create_directories(ckpt, ec);
    std::string error;
    EXPECT_TRUE(WriteShardPlan(ckpt, plan, &error)) << error;
    return ckpt;
  }

  fs::path dir_;
};

// ----------------------------------------------------------------- cell log

TEST_F(ShardTest, CellLogLineRoundTripsAwkwardDoubles) {
  CellOutcome cell;
  cell.dataset = "CBF";
  cell.measure = "dtw";
  cell.params = "delta=9";
  cell.status = EvalStatus::kOk;
  cell.train_accuracy = 1.0 / 3.0;
  cell.test_accuracy = 0.1 + 0.2;  // classic non-representable sum
  const std::string line = CellLogLine(cell);
  CellOutcome parsed;
  ASSERT_TRUE(ParseCellLogLine(line, &parsed));
  EXPECT_EQ(parsed.dataset, cell.dataset);
  EXPECT_EQ(parsed.measure, cell.measure);
  EXPECT_EQ(parsed.params, cell.params);
  // Bitwise equality after the %.17g round trip — the merge bit-identity
  // contract rests on this.
  EXPECT_EQ(std::memcmp(&parsed.train_accuracy, &cell.train_accuracy,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&parsed.test_accuracy, &cell.test_accuracy,
                        sizeof(double)),
            0);
  // Re-rendering the parsed cell reproduces the original bytes.
  EXPECT_EQ(CellLogLine(parsed), line);
}

TEST_F(ShardTest, ReadFinishedCellsToleratesTornTailWithoutTruncating) {
  const std::string log = Dir("results.jsonl");
  CellOutcome cell;
  cell.dataset = "A";
  cell.measure = "euclidean";
  cell.status = EvalStatus::kOk;
  cell.test_accuracy = 0.75;
  ASSERT_TRUE(AppendJsonLogLine(log, CellLogLine(cell)));
  cell.measure = "dtw";
  ASSERT_TRUE(AppendJsonLogLine(log, CellLogLine(cell)));
  // A kill mid-append leaves a partial third line with no newline.
  AppendBytes(log, "{\"schema\": \"tsdist.cell.v1\", \"dataset\": \"A");
  const auto before = fs::file_size(log);

  const auto cells = ReadFinishedCells(log);
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_TRUE(cells.count(CellKey("A", "euclidean")));
  EXPECT_TRUE(cells.count(CellKey("A", "dtw")));
  for (const auto& entry : cells) EXPECT_TRUE(entry.second.resumed);
  // Read-only: the torn tail is still there (the file may belong to a
  // paused zombie that will resume appending).
  EXPECT_EQ(fs::file_size(log), before);
}

// ------------------------------------------------------------------- leases

TEST_F(ShardTest, LeaseLifecycleAndReadBack) {
  LeaseHandle lease;
  std::string error;
  ASSERT_EQ(TryAcquireLease(Dir(), 1, "w0", &lease, &error),
            LeaseAcquire::kAcquired)
      << error;
  ASSERT_TRUE(lease.held());
  EXPECT_TRUE(lease.AppendHeartbeat(&error)) << error;
  EXPECT_TRUE(lease.AppendHeartbeat(&error)) << error;
  EXPECT_TRUE(lease.AppendRelease(&error)) << error;
  EXPECT_FALSE(lease.held());

  LeaseInfo info;
  ASSERT_TRUE(ReadLease(Dir() + "/" + LeaseFileName(1), &info));
  EXPECT_TRUE(info.exists);
  EXPECT_EQ(info.epoch, 1u);
  EXPECT_EQ(info.worker, "w0");
  EXPECT_EQ(info.valid_records, 4u);  // claim + 2 heartbeats + release
  EXPECT_EQ(info.torn_bytes, 0u);
  EXPECT_TRUE(info.released);
  EXPECT_GE(info.last_wall_ms, info.claim_wall_ms);
}

TEST_F(ShardTest, LeaseTornTailRecoversValidPrefix) {
  LeaseHandle lease;
  std::string error;
  ASSERT_EQ(TryAcquireLease(Dir(), 3, "w1", &lease, &error),
            LeaseAcquire::kAcquired)
      << error;
  ASSERT_TRUE(lease.AppendHeartbeat(&error)) << error;
  lease.Close();  // crash: no release record

  const std::string path = Dir() + "/" + LeaseFileName(3);
  LeaseInfo clean;
  ASSERT_TRUE(ReadLease(path, &clean));
  ASSERT_EQ(clean.valid_records, 2u);
  const std::uint64_t clean_last = clean.last_wall_ms;

  // A torn append: the first 13 bytes of what would have been the next
  // record (valid magic, then silence).
  AppendBytes(path, std::string("1LST", 4) + std::string(9, '\x02'));
  const auto size_with_tail = fs::file_size(path);

  LeaseInfo info;
  ASSERT_TRUE(ReadLease(path, &info));
  EXPECT_EQ(info.valid_records, 2u);
  EXPECT_EQ(info.torn_bytes, 13u);
  EXPECT_EQ(info.last_wall_ms, clean_last);
  EXPECT_FALSE(info.released);
  EXPECT_EQ(info.worker, "w1");
  // Readers never truncate.
  EXPECT_EQ(fs::file_size(path), size_with_tail);

  // A full-size but bit-flipped record (CRC mismatch) is also a torn tail.
  std::string garbage(56, '\0');
  std::memcpy(garbage.data(), "1LST", 4);  // valid magic, bogus payload+crc
  AppendBytes(path, garbage);
  ASSERT_TRUE(ReadLease(path, &info));
  EXPECT_EQ(info.valid_records, 2u);
  EXPECT_EQ(info.torn_bytes, 13u + 56u);
}

TEST_F(ShardTest, DoubleClaimRaceAdmitsExactlyOneWinner) {
  // Two threads race the O_EXCL create for the same epoch, many rounds.
  for (std::uint32_t epoch = 1; epoch <= 16; ++epoch) {
    std::atomic<int> ready{0};
    std::atomic<int> acquired{0};
    std::atomic<int> conflicted{0};
    auto contender = [&](const char* worker) {
      LeaseHandle lease;
      std::string error;
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }  // start line
      const LeaseAcquire result =
          TryAcquireLease(Dir(), epoch, worker, &lease, &error);
      if (result == LeaseAcquire::kAcquired) {
        acquired.fetch_add(1);
        lease.AppendRelease(&error);
      } else if (result == LeaseAcquire::kConflict) {
        conflicted.fetch_add(1);
      }
    };
    std::thread a(contender, "wa");
    std::thread b(contender, "wb");
    a.join();
    b.join();
    EXPECT_EQ(acquired.load(), 1) << "epoch " << epoch;
    EXPECT_EQ(conflicted.load(), 1) << "epoch " << epoch;
  }
}

TEST_F(ShardTest, LeaseWorkerNameIsCappedNotOverflowed) {
  const std::string longname(64, 'x');
  LeaseHandle lease;
  std::string error;
  ASSERT_EQ(TryAcquireLease(Dir(), 1, longname, &lease, &error),
            LeaseAcquire::kAcquired)
      << error;
  lease.Close();
  LeaseInfo info;
  ASSERT_TRUE(ReadLease(Dir() + "/" + LeaseFileName(1), &info));
  EXPECT_EQ(info.worker, std::string(27, 'x'));  // 27 bytes kept + NUL
}

// ----------------------------------------------------------------- manifest

TEST_F(ShardTest, PlanJsonRoundTripAndIdempotentPublish) {
  const std::vector<Dataset> datasets = MakeDatasets();
  const ShardPlan plan = MakePlan(datasets, {"euclidean", "dtw"}, 3);

  ShardPlan parsed;
  std::string error;
  ASSERT_TRUE(PlanFromJson(PlanToJson(plan), &parsed, &error)) << error;
  EXPECT_EQ(parsed.measures, plan.measures);
  EXPECT_EQ(parsed.datasets.size(), plan.datasets.size());
  EXPECT_EQ(parsed.datasets[0].train_fp, plan.datasets[0].train_fp);
  EXPECT_EQ(parsed.shards.size(), plan.shards.size());
  EXPECT_EQ(PlanToJson(parsed), PlanToJson(plan));  // render is stable
  EXPECT_TRUE(ValidatePlanDatasets(parsed, datasets, &error)) << error;

  const std::string ckpt = Publish(plan, "ckpt");
  // Re-publishing the identical plan is the idempotent coordinator restart.
  EXPECT_TRUE(WriteShardPlan(ckpt, plan, &error)) << error;
  // A different grid in the same directory is refused.
  ShardPlan other = plan;
  other.measures.push_back("msm");
  PartitionCells(&other, 3);
  EXPECT_FALSE(WriteShardPlan(ckpt, other, &error));
  EXPECT_NE(error.find("incompatible"), std::string::npos) << error;
  // The original manifest survived the refusal.
  ShardPlan reloaded;
  ASSERT_TRUE(LoadShardPlan(ckpt, &reloaded, &error)) << error;
  EXPECT_EQ(PlanToJson(reloaded), PlanToJson(plan));
}

TEST_F(ShardTest, PartitionIsRoundRobinAndClampsToCellCount) {
  const std::vector<Dataset> datasets = MakeDatasets();
  ShardPlan plan = MakePlan(datasets, {"euclidean", "dtw"}, 3);
  ASSERT_EQ(plan.shards.size(), 3u);
  // 2 datasets x 2 measures = 4 cells round-robin over 3 shards.
  EXPECT_EQ(plan.shards[0].size(), 2u);
  EXPECT_EQ(plan.shards[1].size(), 1u);
  EXPECT_EQ(plan.shards[2].size(), 1u);
  EXPECT_EQ(CellIndex(plan, plan.shards[0][0]), 0u);
  EXPECT_EQ(CellIndex(plan, plan.shards[0][1]), 3u);
  EXPECT_EQ(CellIndex(plan, plan.shards[1][0]), 1u);
  // More shards than cells clamps: every shard keeps at least one cell.
  ShardPlan wide = MakePlan(datasets, {"euclidean"}, 64);
  EXPECT_EQ(wide.shards.size(), 2u);
}

// ------------------------------------------------------------- fleet health

TEST_F(ShardTest, FleetHealthAggregatesLiveAndStaleWorkers) {
  WorkerHealth fresh;
  fresh.worker = "w0";
  fresh.pid = 123;
  fresh.phase = "eval";
  fresh.shard = 2;
  fresh.epoch = 1;
  fresh.cells_done = 3;
  fresh.cells_total = 8;
  fresh.wall_ms = WallMs();
  ASSERT_TRUE(WriteWorkerHealth(Dir(), fresh));
  WorkerHealth stale = fresh;
  stale.worker = "w1";
  stale.wall_ms = WallMs() - 60'000;  // a minute silent
  ASSERT_TRUE(WriteWorkerHealth(Dir(), stale));

  const std::string doc = AggregateFleetHealth(Dir(), WallMs(), 10.0);
  const obs::JsonValue v = obs::ParseJson(doc);
  EXPECT_EQ(v.GetString("schema", ""), "tsdist.fleethealth.v1");
  const obs::JsonValue* summary = v.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->GetDouble("workers", -1), 2);
  EXPECT_EQ(summary->GetDouble("live", -1), 1);
  EXPECT_EQ(summary->GetDouble("stale", -1), 1);
  const obs::JsonValue* workers = v.Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->AsArray().size(), 2u);
  EXPECT_FALSE(workers->AsArray()[0].GetBool("stale", true));
  EXPECT_TRUE(workers->AsArray()[1].GetBool("stale", false));

  // A torn or foreign health file is skipped, not fatal.
  AppendBytes(Dir() + "/health/w2.json", "{\"schema\": \"tsd");
  const obs::JsonValue again = obs::ParseJson(
      AggregateFleetHealth(Dir(), WallMs(), 10.0));
  EXPECT_EQ(again.Find("summary")->GetDouble("workers", -1), 2);
}

// ----------------------------------------------- sharded-vs-single identity

TEST_F(ShardTest, MergedResultsBitIdenticalToSingleProcess) {
  const std::vector<Dataset> datasets = MakeDatasets();
  const PairwiseEngine engine(2);
  // One symmetric and one asymmetric measure: kullback_leibler's d(x,y) !=
  // d(y,x) makes any train/test orientation slip in the sharded path show
  // up as a byte difference here.
  const ShardPlan plan =
      MakePlan(datasets, {"euclidean", "kullback_leibler"}, 3);
  const std::string ckpt = Publish(plan, "ckpt");

  WorkerOptions options;
  options.checkpoint_dir = ckpt;
  options.worker_id = "w0";
  WorkerStats stats;
  std::string error;
  ASSERT_TRUE(RunShardWorker(plan, datasets, engine, options, &stats, &error))
      << error;
  EXPECT_EQ(stats.shards_done, 3u);
  EXPECT_EQ(stats.cells_computed, 4u);
  EXPECT_FALSE(stats.interrupted);

  MergeReport report;
  ASSERT_TRUE(MergeShards(ckpt, plan, &report, &error)) << error;
  EXPECT_EQ(report.shards, 3u);
  EXPECT_EQ(report.lines, 4u);
  EXPECT_EQ(report.cells.size(), 4u);

  const std::string merged = ReadFile(ckpt + "/results.jsonl");
  const std::string expected =
      ReferenceLog(plan, datasets, engine, Dir("single"));
  ASSERT_EQ(merged.size(), expected.size());
  EXPECT_EQ(std::memcmp(merged.data(), expected.data(), merged.size()), 0)
      << "merged:\n"
      << merged << "expected:\n"
      << expected;
  // Canonical order: report cells follow dataset-major sweep order.
  EXPECT_EQ(report.cells[0].dataset, "SynthA");
  EXPECT_EQ(report.cells[0].measure, "euclidean");
  EXPECT_EQ(report.cells[1].measure, "kullback_leibler");
  EXPECT_EQ(report.cells[2].dataset, "SynthB");
}

// -------------------------------------------- expiry, reclaim, and fencing

TEST_F(ShardTest, StaleLeaseReclaimSalvagesCellsAndFencesZombie) {
  const std::vector<Dataset> datasets = MakeDatasets();
  const PairwiseEngine engine(2);
  // One shard holding all 2 cells; 50 ms TTL so the dead lease expires fast.
  const ShardPlan plan = MakePlan(datasets, {"euclidean"}, 1, 0.05);
  const std::string ckpt = Publish(plan, "ckpt");
  const std::string shard_dir = ShardDirPath(ckpt, 0);

  // The "victim": claims epoch 1, durably logs its first cell, then dies
  // without releasing (handle kept open — it may be a paused zombie, not a
  // dead process).
  LeaseHandle zombie;
  std::string error;
  ASSERT_EQ(TryAcquireLease(shard_dir, 1, "victim", &zombie, &error),
            LeaseAcquire::kAcquired)
      << error;
  const std::string e1 = shard_dir + "/" + EpochDirName(1);
  fs::create_directories(e1);
  const CellOutcome first =
      ReferenceCell(plan, datasets, engine, 0, 0, Dir("victim_ckpt"));
  ASSERT_EQ(first.status, EvalStatus::kOk) << first.reason;
  ASSERT_TRUE(AppendJsonLogLine(e1 + "/results.jsonl", CellLogLine(first)));

  // Let the lease go stale (TTL 50 ms, no heartbeats).
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // The rescuer reclaims at epoch 2, salvages the victim's durable cell,
  // and computes only the remaining one.
  WorkerOptions options;
  options.checkpoint_dir = ckpt;
  options.worker_id = "rescuer";
  WorkerStats stats;
  ASSERT_TRUE(RunShardWorker(plan, datasets, engine, options, &stats, &error))
      << error;
  EXPECT_EQ(stats.shards_reclaimed, 1u);
  EXPECT_EQ(stats.cells_salvaged, 1u);
  EXPECT_EQ(stats.cells_computed, 1u);
  EXPECT_EQ(stats.shards_done, 1u);

  std::uint32_t done_epoch = 0;
  ASSERT_TRUE(ShardDone(shard_dir, &done_epoch));
  EXPECT_EQ(done_epoch, 2u);

  // The zombie wakes up: it can still append to its own epoch's lease and
  // log (fenced by construction — nothing it owns is shared with epoch 2).
  EXPECT_TRUE(zombie.AppendHeartbeat(&error)) << error;
  AppendBytes(e1 + "/results.jsonl", "{\"schema\": \"tsdist.cell.v1\", ");
  zombie.Close();

  // The shard is still done and the merge reads only the DONE epoch, so the
  // zombie's late writes change nothing.
  EXPECT_TRUE(ShardDone(shard_dir, &done_epoch));
  MergeReport report;
  ASSERT_TRUE(MergeShards(ckpt, plan, &report, &error)) << error;
  const std::string merged = ReadFile(ckpt + "/results.jsonl");
  const std::string expected =
      ReferenceLog(plan, datasets, engine, Dir("single"));
  ASSERT_EQ(merged, expected);
  // The salvaged first cell kept the victim's exact bytes.
  EXPECT_EQ(merged.compare(0, CellLogLine(first).size(), CellLogLine(first)),
            0);
}

// ----------------------------------------------------------------- poison

TEST_F(ShardTest, PoisonShardIsQuarantinedAfterRetryMax) {
  const std::vector<Dataset> datasets = MakeDatasets();
  const PairwiseEngine engine(2);
  ShardPlan plan = MakePlan(datasets, {"euclidean"}, 1, 0.05);
  plan.retry_max = 1;  // epoch 1 only; the reclaim at epoch 2 is over budget
  const std::string ckpt = Publish(plan, "ckpt");
  const std::string shard_dir = ShardDirPath(ckpt, 0);

  // Epoch 1 claimed and abandoned — as if the shard killed its worker.
  LeaseHandle dead;
  std::string error;
  ASSERT_EQ(TryAcquireLease(shard_dir, 1, "victim", &dead, &error),
            LeaseAcquire::kAcquired)
      << error;
  dead.Close();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  WorkerOptions options;
  options.checkpoint_dir = ckpt;
  options.worker_id = "w0";
  WorkerStats stats;
  ASSERT_TRUE(RunShardWorker(plan, datasets, engine, options, &stats, &error))
      << error;
  EXPECT_EQ(stats.shards_quarantined, 1u);
  EXPECT_EQ(stats.shards_done, 0u);
  EXPECT_TRUE(fs::exists(QuarantinePath(shard_dir)));

  // The quarantine marker names the shard and survives re-scanning.
  const obs::JsonValue marker =
      obs::ParseJson(ReadFile(QuarantinePath(shard_dir)));
  EXPECT_EQ(marker.GetString("schema", ""), kQuarantineSchema);
  EXPECT_EQ(marker.GetDouble("shard", -1), 0);

  // Merge refuses a quarantined shard instead of dropping its cells.
  MergeReport report;
  EXPECT_FALSE(MergeShards(ckpt, plan, &report, &error));
  EXPECT_NE(error.find("quarantine"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(ckpt + "/results.jsonl"));
}

// ------------------------------------------------------------- merge fault

TEST_F(ShardTest, MergeFaultLeavesShardInputsIntact) {
  TSDIST_SKIP_IF_FAULT_NOOP();
  const std::vector<Dataset> datasets = MakeDatasets();
  const PairwiseEngine engine(2);
  const ShardPlan plan = MakePlan(datasets, {"euclidean"}, 2);
  const std::string ckpt = Publish(plan, "ckpt");

  WorkerOptions options;
  options.checkpoint_dir = ckpt;
  options.worker_id = "w0";
  WorkerStats stats;
  std::string error;
  ASSERT_TRUE(RunShardWorker(plan, datasets, engine, options, &stats, &error))
      << error;

  // Snapshot every shard input the merge reads.
  std::vector<std::pair<std::string, std::string>> snapshot;
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const std::string e1 = ShardDirPath(ckpt, s) + "/" + EpochDirName(1);
    snapshot.emplace_back(e1 + "/DONE", ReadFile(e1 + "/DONE"));
    snapshot.emplace_back(e1 + "/results.jsonl",
                          ReadFile(e1 + "/results.jsonl"));
  }

  fault::Arm(std::string(fault::sites::kShardMerge) + ":1");
  MergeReport report;
  EXPECT_THROW(MergeShards(ckpt, plan, &report, &error),
               fault::FaultInjected);
  fault::Disarm();

  // The fault fired after reading and before writing: no merged file, and
  // every input byte is exactly as it was.
  EXPECT_FALSE(fs::exists(ckpt + "/results.jsonl"));
  for (const auto& entry : snapshot) {
    EXPECT_EQ(ReadFile(entry.first), entry.second) << entry.first;
  }

  // A clean rerun completes from the same inputs.
  ASSERT_TRUE(MergeShards(ckpt, plan, &report, &error)) << error;
  EXPECT_EQ(report.lines, 2u);
  const std::string merged = ReadFile(ckpt + "/results.jsonl");
  EXPECT_EQ(merged, ReferenceLog(plan, datasets, engine, Dir("single")));
}

}  // namespace
}  // namespace tsdist
