// Unit tests for the observability layer: metric correctness under
// concurrent writers, span-tree nesting, trace-JSON schema round-trip,
// progress reporting, and the determinism guarantee (PairwiseEngine output
// is bit-identical with instrumentation on or off).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/obs/obs.h"

namespace tsdist {
namespace {

// Restores the obs global state (master switch, tracing, metrics) that a
// test mutates, so test order never matters.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    obs::SetEnabled(true);
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
    obs::SetActiveProgress(nullptr);
  }
};

TEST_F(ObsTest, CounterSumsConcurrentWriters) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge gauge;
  gauge.Set(2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.0);
}

TEST_F(ObsTest, HistogramAggregatesUnderConcurrentWriters) {
  obs::Histogram histogram;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t) * 1000 + 7);
      }
    });
  }
  for (auto& th : pool) th.join();
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  EXPECT_EQ(snapshot.min, 7u);
  EXPECT_EQ(snapshot.max, 7007u);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (static_cast<std::uint64_t>(t) * 1000 + 7) * kPerThread;
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snapshot.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snapshot.count);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  obs::Histogram histogram;
  histogram.Record(1);     // first bucket (<= 64)
  histogram.Record(64);    // still first bucket (inclusive bound)
  histogram.Record(65);    // second bucket
  histogram.Record(128);   // second bucket
  histogram.Record(129);   // third bucket
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.bucket_counts[0], 2u);
  EXPECT_EQ(snapshot.bucket_counts[1], 2u);
  EXPECT_EQ(snapshot.bucket_counts[2], 1u);
  // A value past every finite bound lands in the overflow bucket.
  obs::Histogram overflow;
  overflow.Record(~std::uint64_t{0} / 2);
  EXPECT_EQ(overflow.Snapshot().bucket_counts.back(), 1u);
  // Quantiles stay within observed range.
  EXPECT_GE(snapshot.Quantile(0.5), static_cast<double>(snapshot.min));
  EXPECT_LE(snapshot.Quantile(0.99), static_cast<double>(snapshot.max));
}

TEST_F(ObsTest, RegistryReturnsStableHandlesAndSnapshot) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("tsdist.test.registry_counter");
  const std::uint64_t before = counter.Value();
  EXPECT_EQ(&counter, &registry.GetCounter("tsdist.test.registry_counter"));
  counter.Add(3);
  registry.GetGauge("tsdist.test.registry_gauge").Set(1.25);
  registry.GetHistogram("tsdist.test.registry_hist").Record(100);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("tsdist.test.registry_counter"), before + 3);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("tsdist.test.registry_gauge"), 1.25);
  EXPECT_GE(snapshot.histograms.at("tsdist.test.registry_hist").count, 1u);
}

TEST_F(ObsTest, MetricsJsonCarriesSchemaAndEntries) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("tsdist.test.json_counter").Add(41);
  registry.GetHistogram("tsdist.test.json_hist").Record(5000);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"schema\": \"tsdist.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tsdist.test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"tsdist.test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("counter,tsdist.test.json_counter"), std::string::npos);
  EXPECT_NE(csv.find("histogram,tsdist.test.json_hist"), std::string::npos);
}

TEST_F(ObsTest, ScopedTimerRecordsIntoHistogramAndCounter) {
  obs::Histogram histogram;
  obs::Counter counter;
  const std::uint64_t count_before = histogram.Snapshot().count;
  {
    obs::ScopedTimer timer(&histogram, &counter, 4);
    EXPECT_GE(timer.ElapsedNs() + 1, 1u);  // monotone, non-negative
  }
#if defined(TSDIST_OBS_NOOP)
  EXPECT_EQ(histogram.Snapshot().count, count_before);
  EXPECT_EQ(counter.Value(), 0u);
#else
  EXPECT_EQ(histogram.Snapshot().count, count_before + 1);
  EXPECT_EQ(counter.Value(), 4u);
  {
    obs::ScopedTimer cancelled(&histogram, &counter, 4);
    cancelled.Cancel();
  }
  EXPECT_EQ(histogram.Snapshot().count, count_before + 1);
  // The master switch suppresses recording.
  obs::SetEnabled(false);
  { obs::ScopedTimer off(&histogram, &counter, 4); }
  obs::SetEnabled(true);
  EXPECT_EQ(histogram.Snapshot().count, count_before + 1);
#endif
}

TEST_F(ObsTest, SpanTreeNesting) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "tracing compiled out in TSDIST_OBS_NOOP builds";
#else
  auto& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  {
    obs::TraceSpan root("root");
    {
      obs::TraceSpan child_a("child_a");
      { obs::TraceSpan grandchild("grandchild"); }
    }
    { obs::TraceSpan child_b("child_b"); }
  }
  { obs::TraceSpan second_root("second_root"); }
  recorder.SetEnabled(false);

  const auto forest = recorder.SpanForest();
  ASSERT_EQ(forest.size(), 2u);
  EXPECT_EQ(forest[0].event.name, "root");
  ASSERT_EQ(forest[0].children.size(), 2u);
  EXPECT_EQ(forest[0].children[0].event.name, "child_a");
  EXPECT_EQ(forest[0].children[1].event.name, "child_b");
  ASSERT_EQ(forest[0].children[0].children.size(), 1u);
  EXPECT_EQ(forest[0].children[0].children[0].event.name, "grandchild");
  EXPECT_EQ(forest[1].event.name, "second_root");
  // Parent spans contain their children in time.
  const auto& root_event = forest[0].event;
  const auto& grandchild_event = forest[0].children[0].children[0].event;
  EXPECT_LE(root_event.ts_ns, grandchild_event.ts_ns);
  EXPECT_GE(root_event.ts_ns + root_event.dur_ns,
            grandchild_event.ts_ns + grandchild_event.dur_ns);
#endif
}

TEST_F(ObsTest, TraceChromeJsonSchemaRoundTrip) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "tracing compiled out in TSDIST_OBS_NOOP builds";
#else
  auto& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner \"quoted\"");
  }
  recorder.SetEnabled(false);
  const std::string json = recorder.ToChromeJson();
  // Array-of-objects shape.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // Every event carries the Chrome trace-event required fields.
  std::size_t events = 0;
  for (std::size_t pos = json.find("{\"name\":"); pos != std::string::npos;
       pos = json.find("{\"name\":", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, recorder.Events().size());
  for (const char* field :
       {"\"name\":", "\"cat\":", "\"ph\": \"X\"", "\"ts\":", "\"dur\":",
        "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // The quote inside the span name must be escaped.
  EXPECT_NE(json.find("inner \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("inner \"quoted\""), std::string::npos);
#endif
}

TEST_F(ObsTest, TraceDisabledRecordsNothing) {
  auto& recorder = obs::TraceRecorder::Global();
  { obs::TraceSpan span("ignored"); }
  EXPECT_TRUE(recorder.Events().empty());
}

// Golden check of the Chrome export's time rendering: per the trace-event
// spec ts/dur are MICROSECONDS, and they must be rendered as fixed-point
// ns/1000 with a 3-digit fraction — never through default double
// formatting, which collapses to 6 significant digits (a 1.2345678-second
// timestamp would round to the wrong millisecond) or flips to scientific
// notation.
TEST_F(ObsTest, TraceChromeJsonRendersMicrosecondsFixedPoint) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "tracing compiled out in TSDIST_OBS_NOOP builds";
#else
  auto& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  { obs::TraceSpan span("golden"); }
  recorder.SetEnabled(false);
  const std::string json = recorder.ToChromeJson();
  // No scientific notation anywhere in a ts/dur value: every occurrence
  // must be the exact fixed-point string computed below.
  for (const auto& event : recorder.Events()) {
    char ts[48], dur[48];
    std::snprintf(ts, sizeof ts, "\"ts\": %llu.%03llu",
                  static_cast<unsigned long long>(event.ts_ns / 1000),
                  static_cast<unsigned long long>(event.ts_ns % 1000));
    std::snprintf(dur, sizeof dur, "\"dur\": %llu.%03llu",
                  static_cast<unsigned long long>(event.dur_ns / 1000),
                  static_cast<unsigned long long>(event.dur_ns % 1000));
    EXPECT_NE(json.find(ts), std::string::npos)
        << ts << " not found for ts_ns=" << event.ts_ns;
    EXPECT_NE(json.find(dur), std::string::npos)
        << dur << " not found for dur_ns=" << event.dur_ns;
  }
#endif
}

TEST_F(ObsTest, TraceInstantAndArgsRenderInChromeJson) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "tracing compiled out in TSDIST_OBS_NOOP builds";
#else
  auto& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(true);
  {
    obs::TraceSpan span("annotated");
    span.Arg("dataset", "Coffee \"arabica\"");
    span.Arg("shard", std::uint64_t{3});
    span.Arg("ok", true);
  }
  recorder.Instant("shard.claim", "shard",
                   {{"epoch", "2", false}});
  recorder.SetEnabled(false);

  const std::string json = recorder.ToChromeJson();
  // String args are escaped and quoted; numeric/bool args are raw JSON.
  EXPECT_NE(json.find("\"dataset\": \"Coffee \\\"arabica\\\"\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shard\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos) << json;
  // Instants render as "ph":"i" with thread scope and carry their args.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\": 2"), std::string::npos) << json;

  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  bool saw_instant = false;
  for (const auto& event : events) {
    if (event.instant) {
      saw_instant = true;
      EXPECT_EQ(event.name, "shard.claim");
      EXPECT_EQ(event.dur_ns, 0u);
    }
  }
  EXPECT_TRUE(saw_instant);
#endif
}

TEST_F(ObsTest, TraceContextAndAnchorCarryFleetIdentity) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "tracing compiled out in TSDIST_OBS_NOOP builds";
#else
  auto& recorder = obs::TraceRecorder::Global();
  obs::TraceContext context;
  context.run_id = "f00dfeedbeefcafe";
  context.role = "worker";
  context.worker_id = "w1";
  context.epoch = 1;
  recorder.SetContext(context);
  recorder.set_context_epoch(7);  // a reclaim moves the fencing epoch

  const obs::TraceContext seen = recorder.context();
  EXPECT_EQ(seen.run_id, "f00dfeedbeefcafe");
  EXPECT_EQ(seen.role, "worker");
  EXPECT_EQ(seen.worker_id, "w1");
  EXPECT_EQ(seen.epoch, 7u);

  // The wall anchor is pinned with the recorder epoch and stable: spans
  // from this process land on the fleet timeline at wall_us + ts_ns/1000.
  recorder.SetEnabled(true);
  const obs::WallAnchor anchor = recorder.anchor();
  EXPECT_GT(anchor.wall_us, 0u);
  const obs::WallAnchor again = recorder.anchor();
  EXPECT_EQ(anchor.wall_us, again.wall_us);
  EXPECT_EQ(anchor.mono_ns, again.mono_ns);
  recorder.SetEnabled(false);
  recorder.SetContext(obs::TraceContext{});
#endif
}

TEST_F(ObsTest, ProgressReporterCountsAndRenders) {
  std::ostringstream sink;
  obs::ProgressReporter progress("test", 1000, &sink, "cells");
  progress.set_min_interval_ns(0);
  progress.Add(250);
  EXPECT_EQ(progress.done(), 250u);
  EXPECT_GT(progress.RatePerSec(), 0.0);
  const std::string line = progress.RenderLine();
  EXPECT_NE(line.find("test"), std::string::npos);
  EXPECT_NE(line.find("250"), std::string::npos);
  EXPECT_NE(line.find("(25.0%)"), std::string::npos);
  EXPECT_NE(line.find("ETA"), std::string::npos);
  progress.Add(750);
  progress.Finish();
  progress.Finish();  // idempotent
  EXPECT_NE(sink.str().find("(100.0%)"), std::string::npos);
}

TEST_F(ObsTest, ProgressTickForwardsToActiveReporter) {
  std::ostringstream sink;
  obs::ProgressReporter progress("tick", 0, &sink);
  obs::ProgressTick(5);  // no reporter installed: dropped
  EXPECT_EQ(progress.done(), 0u);
  obs::SetActiveProgress(&progress);
  obs::ProgressTick(5);
  obs::ProgressTick(7);
  EXPECT_EQ(progress.done(), 12u);
  obs::SetActiveProgress(nullptr);
  obs::ProgressTick(100);
  EXPECT_EQ(progress.done(), 12u);
}

TEST_F(ObsTest, PairwiseEngineRejectsEmptySeriesWithIndex) {
  GeneratorOptions options;
  options.length = 16;
  options.train_per_class = 2;
  options.test_per_class = 2;
  options.seed = 11;
  const Dataset data = MakeCbf(options);
  const MeasurePtr measure = Registry::Global().Create("euclidean", {});
  const PairwiseEngine engine(2);

  std::vector<TimeSeries> bad = data.train();
  bad[1] = TimeSeries({}, 0);
  try {
    engine.Compute(data.test(), bad, *measure);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("references[1]"), std::string::npos)
        << e.what();
  }
  try {
    engine.ComputeSelf(bad, *measure);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("series[1]"), std::string::npos)
        << e.what();
  }
  // Empty *collections* stay a valid degenerate case.
  const Matrix empty = engine.Compute({}, {}, *measure);
  EXPECT_EQ(empty.rows(), 0u);
}

TEST_F(ObsTest, PairwiseOutputBitIdenticalWithInstrumentationOnOrOff) {
  GeneratorOptions options;
  options.length = 64;
  options.train_per_class = 6;
  options.test_per_class = 6;
  options.noise = 0.2;
  options.seed = 29;
  const Dataset data = MakeTwoPatterns(options);
  const PairwiseEngine engine(3);

  for (const char* name : {"euclidean", "dtw"}) {
    const MeasurePtr measure = Registry::Global().Create(
        name, std::string(name) == "dtw" ? ParamMap{{"delta", 8.0}}
                                         : ParamMap{});
    obs::SetEnabled(true);
    obs::TraceRecorder::Global().SetEnabled(true);
    const Matrix instrumented =
        engine.Compute(data.test(), data.train(), *measure);
    const Matrix instrumented_self = engine.ComputeSelf(data.train(), *measure);
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::SetEnabled(false);
    const Matrix plain = engine.Compute(data.test(), data.train(), *measure);
    const Matrix plain_self = engine.ComputeSelf(data.train(), *measure);
    obs::SetEnabled(true);

    ASSERT_EQ(instrumented.rows(), plain.rows());
    ASSERT_EQ(instrumented.cols(), plain.cols());
    EXPECT_EQ(std::memcmp(instrumented.data().data(), plain.data().data(),
                          instrumented.data().size() * sizeof(double)),
              0)
        << name;
    EXPECT_EQ(std::memcmp(instrumented_self.data().data(),
                          plain_self.data().data(),
                          instrumented_self.data().size() * sizeof(double)),
              0)
        << name;
  }
}

TEST_F(ObsTest, PairwiseCountersMatchMatrixShape) {
#if defined(TSDIST_OBS_NOOP)
  GTEST_SKIP() << "metrics instrumentation compiled out";
#else
  GeneratorOptions options;
  options.length = 32;
  options.train_per_class = 4;
  options.test_per_class = 3;
  options.seed = 5;
  const Dataset data = MakeCbf(options);
  const MeasurePtr measure = Registry::Global().Create("manhattan", {});
  auto& registry = obs::MetricsRegistry::Global();
  const std::uint64_t cells_before =
      registry.GetCounter("tsdist.pairwise.cells.manhattan").Value();
  const PairwiseEngine engine(2);
  const Matrix e = engine.Compute(data.test(), data.train(), *measure);
  const std::uint64_t cells_after =
      registry.GetCounter("tsdist.pairwise.cells.manhattan").Value();
  EXPECT_EQ(cells_after - cells_before, e.rows() * e.cols());
  EXPECT_GE(registry.GetHistogram("tsdist.pairwise.row_ns.manhattan")
                .Snapshot()
                .count,
            e.rows());
#endif
}

}  // namespace
}  // namespace tsdist
