// Unit and property tests for the sliding (cross-correlation) measures.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/linalg/fft.h"
#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"
#include "src/normalization/normalization.h"
#include "src/sliding/cross_correlation.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {
namespace {

std::vector<double> RandomZNormalized(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian();
  return ZScoreNormalizer().Apply(std::span<const double>(v));
}

TEST(CrossCorrelationSequenceTest, ShortAndLongPathsAgree) {
  // Exercise both the naive (< threshold) and FFT (>= threshold) paths.
  for (std::size_t m : {8u, 200u}) {
    Rng rng(m);
    std::vector<double> x(m), y(m);
    for (std::size_t i = 0; i < m; ++i) {
      x[i] = rng.Gaussian();
      y[i] = rng.Gaussian();
    }
    const auto seq = CrossCorrelationSequence(x, y);
    const auto ref = CrossCorrelationNaive(x, y);
    ASSERT_EQ(seq.size(), ref.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_NEAR(seq[i], ref[i], 1e-8);
    }
  }
}

TEST(NcccTest, SelfDistanceIsZero) {
  const auto x = RandomZNormalized(64, 1);
  EXPECT_NEAR(NccCoefficientDistance().Distance(x, x), 0.0, 1e-9);
}

TEST(NcccTest, RangeIsZeroToTwo) {
  const NccCoefficientDistance sbd;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto x = RandomZNormalized(48, 10 + seed);
    const auto y = RandomZNormalized(48, 50 + seed);
    const double d = sbd.Distance(x, y);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 2.0);
  }
}

TEST(NcccTest, InvariantToCircularShift) {
  // The defining property of a sliding measure: a shifted copy is (nearly)
  // identical to the original. Near, not exactly: shifting truncates the
  // overlap, but with a localized pattern the peak correlation survives.
  std::vector<double> x(128, 0.0);
  for (int i = 50; i < 70; ++i) {
    x[static_cast<std::size_t>(i)] = std::sin((i - 50) * 0.3);
  }
  const auto shifted = data_internal::CircularShift(x, 17);
  const NccCoefficientDistance sbd;
  EXPECT_NEAR(sbd.Distance(x, shifted), 0.0, 1e-9);
  // A lock-step measure, by contrast, sees a large distance.
  EXPECT_GT(EuclideanDistance().Distance(x, shifted), 1.0);
}

TEST(NcccTest, SymmetricByLagReversal) {
  const NccCoefficientDistance sbd;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto x = RandomZNormalized(40, 100 + seed);
    const auto y = RandomZNormalized(40, 200 + seed);
    EXPECT_NEAR(sbd.Distance(x, y), sbd.Distance(y, x), 1e-9);
  }
}

TEST(NccTest, RawVariantIsNegatedMaxCorrelation) {
  const auto x = RandomZNormalized(32, 3);
  const auto y = RandomZNormalized(32, 4);
  EXPECT_DOUBLE_EQ(NccDistance().Distance(x, y), -MaxCrossCorrelation(x, y));
}

TEST(NccbTest, BiasedIsRawDividedByLength) {
  const auto x = RandomZNormalized(32, 5);
  const auto y = RandomZNormalized(32, 6);
  EXPECT_NEAR(NccBiasedDistance().Distance(x, y),
              NccDistance().Distance(x, y) / 32.0, 1e-12);
}

TEST(NccbTest, SameOrderingAsRawNcc) {
  // NCC and NCCb differ by the constant 1/m, so 1-NN orderings coincide for
  // equal-length series — the "negligible differences" the paper reports.
  const auto q = RandomZNormalized(32, 7);
  const NccDistance raw;
  const NccBiasedDistance biased;
  double prev_raw = -1e300, prev_biased = -1e300;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto y = RandomZNormalized(32, 300 + seed);
    const double d_raw = raw.Distance(q, y);
    const double d_biased = biased.Distance(q, y);
    EXPECT_EQ(d_raw > prev_raw, d_biased > prev_biased);
    prev_raw = d_raw;
    prev_biased = d_biased;
  }
}

TEST(NccuTest, UnbiasedWeightsLagsByOverlap) {
  // For a series identical to itself, the unbiased estimator still peaks at
  // zero lag with value <x,x>/m.
  const auto x = RandomZNormalized(64, 8);
  double dot = 0.0;
  for (double v : x) dot += v * v;
  EXPECT_NEAR(NccUnbiasedDistance().Distance(x, x), -dot / 64.0, 1e-9);
}

TEST(NccuTest, FavorsFullOverlapOnWhiteNoise) {
  const NccUnbiasedDistance nccu;
  const auto x = RandomZNormalized(64, 9);
  const auto y = RandomZNormalized(64, 10);
  EXPECT_TRUE(std::isfinite(nccu.Distance(x, y)));
}

TEST(NccZeroSeriesTest, DegenerateInputHandled) {
  const std::vector<double> zeros(16, 0.0);
  const auto x = RandomZNormalized(16, 11);
  EXPECT_DOUBLE_EQ(NccCoefficientDistance().Distance(zeros, x), 1.0);
  EXPECT_DOUBLE_EQ(NccCoefficientDistance().Distance(zeros, zeros), 1.0);
}

TEST(NcccTest, ScaleInvariantInBothArguments) {
  // NCCc divides by both norms, so positive rescaling of either side is a
  // no-op — this is why the paper's Table 3 rows for z-score and UnitLength
  // report identical accuracies (UnitLength after z-score only rescales).
  const NccCoefficientDistance sbd;
  const auto x = RandomZNormalized(40, 60);
  const auto y = RandomZNormalized(40, 61);
  std::vector<double> xs = x;
  std::vector<double> ys = y;
  for (auto& v : xs) v *= 3.7;
  for (auto& v : ys) v *= 0.2;
  EXPECT_NEAR(sbd.Distance(x, y), sbd.Distance(xs, ys), 1e-9);
}

TEST(NcccTest, UnitLengthAfterZScoreIsANoOpForNccc) {
  const NccCoefficientDistance sbd;
  const auto x = RandomZNormalized(48, 62);
  const auto y = RandomZNormalized(48, 63);
  const UnitLengthNormalizer unit;
  const auto xu = unit.Apply(std::span<const double>(x));
  const auto yu = unit.Apply(std::span<const double>(y));
  EXPECT_NEAR(sbd.Distance(x, y), sbd.Distance(xu, yu), 1e-9);
}

TEST(SlidingInventoryTest, FourMeasuresRegistered) {
  EXPECT_EQ(SlidingMeasureNames().size(), 4u);
  for (const auto& name : SlidingMeasureNames()) {
    const auto m = Registry::Global().Create(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->category(), MeasureCategory::kSliding);
    EXPECT_EQ(m->cost_class(), CostClass::kLinearithmic);
  }
}

// Property sweep: for z-normalized series NCCc relates to the minimum
// shifted Euclidean distance: min_s ED^2(x, y_s) = 2m (1 - max NCCc) over
// full-overlap shifts; we verify the zero-shift inequality
// NCCc(x, y) <= ED^2(x, y) / (2m) + tolerance.
class NcccEdRelation : public ::testing::TestWithParam<int> {};

TEST_P(NcccEdRelation, UpperBoundedByLockStepCounterpart) {
  const std::size_t m = 48;
  const auto x = RandomZNormalized(m, 1000 + GetParam());
  const auto y = RandomZNormalized(m, 2000 + GetParam());
  const double sbd = NccCoefficientDistance().Distance(x, y);
  const double ed = EuclideanDistance().Distance(x, y);
  // ED^2 = 2m - 2<x,y> for z-normalized (population) series with ||x|| =
  // sqrt(m); NCCc uses the best shift, so 1 - <x,y>/m >= sbd.
  const double zero_shift = 1.0 - (2.0 * m - ed * ed) / (2.0 * m);
  EXPECT_LE(sbd, zero_shift + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NcccEdRelation, ::testing::Range(0, 20));

}  // namespace
}  // namespace tsdist
