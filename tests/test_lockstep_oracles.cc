// Independent-oracle cross-checks for all 52 lock-step measures.
//
// Each registered measure is compared against a deliberately naive inline
// reimplementation of its survey formula on random positive data (the
// survey's valid domain, so no clamps fire and the formulas are exact).
// This catches transcription errors that family-level property tests
// (symmetry, self-distance) cannot see.

#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/linalg/rng.h"
#include "src/lockstep/lockstep_all.h"

namespace tsdist {
namespace {

using Oracle = std::function<double(const std::vector<double>&,
                                    const std::vector<double>&)>;

double Sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

const std::map<std::string, Oracle>& Oracles() {
  static const auto* kOracles = new std::map<std::string, Oracle>{
      {"euclidean",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]);
         }
         return std::sqrt(s);
       }},
      {"manhattan",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
         return s;
       }},
      {"chebyshev",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s = std::max(s, std::abs(a[i] - b[i]));
         }
         return s;
       }},
      {"sorensen",
       [](const auto& a, const auto& b) {
         double n = 0, d = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           n += std::abs(a[i] - b[i]);
           d += a[i] + b[i];
         }
         return n / d;
       }},
      {"gower",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
         return s / static_cast<double>(a.size());
       }},
      {"soergel",
       [](const auto& a, const auto& b) {
         double n = 0, d = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           n += std::abs(a[i] - b[i]);
           d += std::max(a[i], b[i]);
         }
         return n / d;
       }},
      {"kulczynski_d",
       [](const auto& a, const auto& b) {
         double n = 0, d = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           n += std::abs(a[i] - b[i]);
           d += std::min(a[i], b[i]);
         }
         return n / d;
       }},
      {"canberra",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += std::abs(a[i] - b[i]) / (a[i] + b[i]);
         }
         return s;
       }},
      {"lorentzian",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += std::log(1.0 + std::abs(a[i] - b[i]));
         }
         return s;
       }},
      {"intersection",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
         return 0.5 * s;
       }},
      {"wavehedges",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += std::abs(a[i] - b[i]) / std::max(a[i], b[i]);
         }
         return s;
       }},
      {"czekanowski",
       [](const auto& a, const auto& b) {
         double mn = 0, tot = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           mn += std::min(a[i], b[i]);
           tot += a[i] + b[i];
         }
         return 1.0 - 2.0 * mn / tot;
       }},
      {"motyka",
       [](const auto& a, const auto& b) {
         double mx = 0, tot = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           mx += std::max(a[i], b[i]);
           tot += a[i] + b[i];
         }
         return mx / tot;
       }},
      {"kulczynski_s",
       [](const auto& a, const auto& b) {
         double diff = 0, mn = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           diff += std::abs(a[i] - b[i]);
           mn += std::min(a[i], b[i]);
         }
         return diff / mn;
       }},
      {"ruzicka",
       [](const auto& a, const auto& b) {
         double mn = 0, mx = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           mn += std::min(a[i], b[i]);
           mx += std::max(a[i], b[i]);
         }
         return 1.0 - mn / mx;
       }},
      {"tanimoto",
       [](const auto& a, const auto& b) {
         double mn = 0;
         for (std::size_t i = 0; i < a.size(); ++i) mn += std::min(a[i], b[i]);
         const double sa = Sum(a), sb = Sum(b);
         return (sa + sb - 2.0 * mn) / (sa + sb - mn);
       }},
      {"innerproduct",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
         return -s;
       }},
      {"harmonicmean",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += a[i] * b[i] / (a[i] + b[i]);
         }
         return -2.0 * s;
       }},
      {"cosine",
       [](const auto& a, const auto& b) {
         double dot = 0, na = 0, nb = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           dot += a[i] * b[i];
           na += a[i] * a[i];
           nb += b[i] * b[i];
         }
         return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
       }},
      {"kumarhassebrook",
       [](const auto& a, const auto& b) {
         double dot = 0, na = 0, nb = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           dot += a[i] * b[i];
           na += a[i] * a[i];
           nb += b[i] * b[i];
         }
         return 1.0 - dot / (na + nb - dot);
       }},
      {"jaccard",
       [](const auto& a, const auto& b) {
         double dot = 0, na = 0, nb = 0, sq = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           dot += a[i] * b[i];
           na += a[i] * a[i];
           nb += b[i] * b[i];
           sq += (a[i] - b[i]) * (a[i] - b[i]);
         }
         return sq / (na + nb - dot);
       }},
      {"dice",
       [](const auto& a, const auto& b) {
         double na = 0, nb = 0, sq = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           na += a[i] * a[i];
           nb += b[i] * b[i];
           sq += (a[i] - b[i]) * (a[i] - b[i]);
         }
         return sq / (na + nb);
       }},
      {"fidelity",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += std::sqrt(a[i] * b[i]);
         return 1.0 - s;
       }},
      {"bhattacharyya",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) s += std::sqrt(a[i] * b[i]);
         return -std::log(s);
       }},
      {"hellinger",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = std::sqrt(a[i]) - std::sqrt(b[i]);
           s += d * d;
         }
         return std::sqrt(2.0 * s);
       }},
      {"matusita",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = std::sqrt(a[i]) - std::sqrt(b[i]);
           s += d * d;
         }
         return std::sqrt(s);
       }},
      {"squaredchord",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = std::sqrt(a[i]) - std::sqrt(b[i]);
           s += d * d;
         }
         return s;
       }},
      {"squared_euclidean",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]);
         }
         return s;
       }},
      {"pearson_chisq",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / b[i];
         }
         return s;
       }},
      {"neyman_chisq",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / a[i];
         }
         return s;
       }},
      {"squared_chisq",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / (a[i] + b[i]);
         }
         return s;
       }},
      {"prob_symmetric_chisq",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / (a[i] + b[i]);
         }
         return 2.0 * s;
       }},
      {"divergence",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double sum = a[i] + b[i];
           s += (a[i] - b[i]) * (a[i] - b[i]) / (sum * sum);
         }
         return 2.0 * s;
       }},
      {"clark",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double t = std::abs(a[i] - b[i]) / (a[i] + b[i]);
           s += t * t;
         }
         return std::sqrt(s);
       }},
      {"additive_symmetric_chisq",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) * (a[i] + b[i]) / (a[i] * b[i]);
         }
         return s;
       }},
      {"kullback_leibler",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += a[i] * std::log(a[i] / b[i]);
         }
         return s;
       }},
      {"jeffreys",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * std::log(a[i] / b[i]);
         }
         return s;
       }},
      {"k_divergence",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += a[i] * std::log(2.0 * a[i] / (a[i] + b[i]));
         }
         return s;
       }},
      {"topsoe",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += a[i] * std::log(2.0 * a[i] / (a[i] + b[i])) +
                b[i] * std::log(2.0 * b[i] / (a[i] + b[i]));
         }
         return s;
       }},
      {"jensen_shannon",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += a[i] * std::log(2.0 * a[i] / (a[i] + b[i])) +
                b[i] * std::log(2.0 * b[i] / (a[i] + b[i]));
         }
         return 0.5 * s;
       }},
      {"jensen_difference",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double mid = 0.5 * (a[i] + b[i]);
           s += 0.5 * (a[i] * std::log(a[i]) + b[i] * std::log(b[i])) -
                mid * std::log(mid);
         }
         return s;
       }},
      {"taneja",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double sum = a[i] + b[i];
           s += 0.5 * sum * std::log(sum / (2.0 * std::sqrt(a[i] * b[i])));
         }
         return s;
       }},
      {"kumarjohnson",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = a[i] * a[i] - b[i] * b[i];
           s += d * d / (2.0 * std::pow(a[i] * b[i], 1.5));
         }
         return s;
       }},
      {"avg_l1_linf",
       [](const auto& a, const auto& b) {
         double sum = 0, mx = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = std::abs(a[i] - b[i]);
           sum += d;
           mx = std::max(mx, d);
         }
         return 0.5 * (sum + mx);
       }},
      {"emanon1",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += std::abs(a[i] - b[i]) / std::min(a[i], b[i]);
         }
         return s;
       }},
      {"emanon2",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double mn = std::min(a[i], b[i]);
           s += (a[i] - b[i]) * (a[i] - b[i]) / (mn * mn);
         }
         return s;
       }},
      {"emanon3",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / std::min(a[i], b[i]);
         }
         return s;
       }},
      {"emanon4",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           s += (a[i] - b[i]) * (a[i] - b[i]) / std::max(a[i], b[i]);
         }
         return s;
       }},
      {"max_symmetric_chisq",
       [](const auto& a, const auto& b) {
         double sa = 0, sb = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d2 = (a[i] - b[i]) * (a[i] - b[i]);
           sa += d2 / a[i];
           sb += d2 / b[i];
         }
         return std::max(sa, sb);
       }},
      {"dissim",
       [](const auto& a, const auto& b) {
         double s = 0;
         for (std::size_t i = 0; i + 1 < a.size(); ++i) {
           s += 0.5 * (std::abs(a[i] - b[i]) + std::abs(a[i + 1] - b[i + 1]));
         }
         return s;
       }},
      {"asd",
       [](const auto& a, const auto& b) {
         double ab = 0, bb = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           ab += a[i] * b[i];
           bb += b[i] * b[i];
         }
         const double alpha = ab / bb;
         double s = 0;
         for (std::size_t i = 0; i < a.size(); ++i) {
           const double d = a[i] - alpha * b[i];
           s += d * d;
         }
         return std::sqrt(s);
       }},
  };
  return *kOracles;
}

class LockStepOracleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LockStepOracleTest, MatchesIndependentReimplementation) {
  const std::string& name = GetParam();
  const auto it = Oracles().find(name);
  if (it == Oracles().end()) {
    // Only "minkowski" lacks an oracle (parameterized; covered by its
    // reduction tests in test_lockstep.cc).
    ASSERT_EQ(name, "minkowski");
    GTEST_SKIP();
  }
  const MeasurePtr measure = Registry::Global().Create(name);
  ASSERT_NE(measure, nullptr);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(1000 + seed);
    std::vector<double> a(20), b(20);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = rng.Uniform(0.5, 3.0);  // strictly positive: exact domain
      b[i] = rng.Uniform(0.5, 3.0);
    }
    const double expected = it->second(a, b);
    const double actual = measure->Distance(a, b);
    EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + std::fabs(expected)))
        << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLockStep, LockStepOracleTest,
    ::testing::ValuesIn(LockStepMeasureNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace tsdist
