// Tests for the allocation-sampling heap profiler and MemRegion memory
// attribution (src/obs/heap_profiler.h).
//
// The sampling tests drive the real allocator wrappers: because this binary
// links libtsdist, every malloc/new in the process goes through them. The
// interval is pinned to the 1 KiB floor so sampling is deterministic for
// the large blocks the tests allocate (every block of >= interval bytes is
// sampled, with a byte-accurate weight). Background allocations from gtest
// and the standard library also flow through the profiler, so assertions
// are lower bounds on deltas, never exact totals of global state.
//
// On sanitizer builds the wrappers are compiled out and
// HeapProfilingAvailable() is false; every sampling test then SKIPs, while
// the attribution and parsing tests (which do not need sampling) still run.

#include "src/obs/heap_profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace tsdist::obs {
namespace {

constexpr std::uint64_t kPinnedInterval = 1024;  // the documented floor

// Keeps the compiler from eliding an allocation the test wants sampled.
void* volatile g_sink;

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void* AllocateBlock(std::size_t size) {
  void* p = std::malloc(size);
  g_sink = p;
  return p;
}

HeapProfilerOptions PinnedOptions() {
  HeapProfilerOptions options;
  options.sample_interval_bytes = kPinnedInterval;
  return options;
}

// ---------------------------------------------------------------------------
// ParseMemMetricName

TEST(ParseMemMetricName, AcceptsEveryField) {
  const char* fields[] = {"alloc_bytes", "alloc_count", "peak_live_bytes"};
  for (const char* f : fields) {
    const std::string name = std::string("tsdist.mem.") + f + ".dtw";
    std::string field, label;
    EXPECT_TRUE(ParseMemMetricName(name, &field, &label)) << name;
    EXPECT_EQ(field, f);
    EXPECT_EQ(label, "dtw");
  }
}

TEST(ParseMemMetricName, LabelMayContainDotsAndSlashes) {
  std::string field, label;
  ASSERT_TRUE(ParseMemMetricName("tsdist.mem.alloc_bytes.tuning/dtw.w5",
                                 &field, &label));
  EXPECT_EQ(field, "alloc_bytes");
  EXPECT_EQ(label, "tuning/dtw.w5");
}

TEST(ParseMemMetricName, RejectsOutsiders) {
  std::string field, label;
  EXPECT_FALSE(ParseMemMetricName("tsdist.kernel.calls.dtw", &field, &label));
  EXPECT_FALSE(ParseMemMetricName("tsdist.mem.bogus.dtw", &field, &label));
  EXPECT_FALSE(ParseMemMetricName("tsdist.mem.alloc_bytes", &field, &label));
  EXPECT_FALSE(ParseMemMetricName("tsdist.mem.alloc_bytes.", &field, &label));
  EXPECT_FALSE(ParseMemMetricName("", &field, &label));
}

TEST(ParseMemMetricName, NullOutputsAllowed) {
  EXPECT_TRUE(
      ParseMemMetricName("tsdist.mem.alloc_count.dtw", nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// MemStatsBetween

TEST(MemStatsBetween, GroupsDeltasPerLabel) {
  std::map<std::string, std::uint64_t> before{
      {"tsdist.mem.alloc_bytes.dtw", 1000},
      {"tsdist.mem.alloc_count.dtw", 10},
      {"tsdist.mem.alloc_bytes.msm", 500},
  };
  std::map<std::string, std::uint64_t> after{
      {"tsdist.mem.alloc_bytes.dtw", 5000},
      {"tsdist.mem.alloc_count.dtw", 12},
      {"tsdist.mem.alloc_bytes.msm", 500},   // no movement: dropped
      {"tsdist.mem.alloc_bytes.erp", 300},   // absent before: full value
      {"tsdist.mem.alloc_count.erp", 1},
      {"tsdist.kernel.calls.dtw", 99},       // not in the family
  };
  std::map<std::string, double> gauges{
      {"tsdist.mem.peak_live_bytes.dtw", 2048.0},
  };
  const auto stats = MemStatsBetween(before, after, gauges);
  ASSERT_EQ(stats.size(), 2u);
  ASSERT_TRUE(stats.count("dtw"));
  EXPECT_EQ(stats.at("dtw").alloc_bytes, 4000u);
  EXPECT_EQ(stats.at("dtw").alloc_count, 2u);
  EXPECT_EQ(stats.at("dtw").peak_live_bytes, 2048u);
  ASSERT_TRUE(stats.count("erp"));
  EXPECT_EQ(stats.at("erp").alloc_bytes, 300u);
  EXPECT_EQ(stats.at("erp").peak_live_bytes, 0u);
  EXPECT_FALSE(stats.count("msm"));
}

TEST(MemStatsBetween, PeakAloneDoesNotCreateALabel) {
  std::map<std::string, std::uint64_t> none;
  std::map<std::string, double> gauges{
      {"tsdist.mem.peak_live_bytes.idle", 4096.0},
  };
  EXPECT_TRUE(MemStatsBetween(none, none, gauges).empty());
}

// ---------------------------------------------------------------------------
// Folded parsing helper shared by the shape tests

struct FoldedProfile {
  std::map<std::string, std::uint64_t> header;
  struct Row {
    std::string stack;
    std::uint64_t live;
    std::uint64_t cum;
  };
  std::vector<Row> rows;
};

FoldedProfile ParseFolded(const std::string& text) {
  FoldedProfile profile;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string token;
      while (header >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        profile.header[token.substr(0, eq)] =
            std::strtoull(token.c_str() + eq + 1, nullptr, 10);
      }
      continue;
    }
    const std::size_t sp2 = line.rfind(' ');
    const std::size_t sp1 = line.rfind(' ', sp2 - 1);
    FoldedProfile::Row row;
    row.stack = line.substr(0, sp1);
    row.live = std::strtoull(line.c_str() + sp1 + 1, nullptr, 10);
    row.cum = std::strtoull(line.c_str() + sp2 + 1, nullptr, 10);
    profile.rows.push_back(row);
  }
  return profile;
}

// Structural invariants every rendering must satisfy (the "golden shape"):
// complete header, per-row live <= cum with cum > 0, hottest-first ordering,
// and header totals equal to the column sums.
void CheckFoldedShape(const FoldedProfile& profile) {
  for (const char* key : {"samples", "dropped", "live_bytes",
                          "cumulative_bytes", "interval_bytes"}) {
    EXPECT_TRUE(profile.header.count(key)) << "header missing " << key;
  }
  std::uint64_t live_total = 0;
  std::uint64_t cum_total = 0;
  const FoldedProfile::Row* prev = nullptr;
  for (const auto& row : profile.rows) {
    EXPECT_FALSE(row.stack.empty());
    EXPECT_GT(row.cum, 0u);
    EXPECT_LE(row.live, row.cum);
    EXPECT_EQ(row.stack.find(' '), std::string::npos)
        << "unsanitized frame: " << row.stack;
    if (prev != nullptr) {
      const bool ordered = row.live < prev->live ||
                           (row.live == prev->live && row.cum <= prev->cum);
      EXPECT_TRUE(ordered) << "rows not hottest-first at " << row.stack;
    }
    prev = &row;
    live_total += row.live;
    cum_total += row.cum;
  }
  EXPECT_EQ(live_total, profile.header.at("live_bytes"));
  EXPECT_EQ(cum_total, profile.header.at("cumulative_bytes"));
  if (profile.header.at("samples") == 0) {
    EXPECT_TRUE(profile.rows.empty());
  }
}

// ---------------------------------------------------------------------------
// Lifecycle

TEST(HeapProfilerLifecycle, IdleRenderIsHeaderOnly) {
  HeapProfiler& profiler = HeapProfiler::Global();
  ASSERT_FALSE(profiler.running());
  profiler.Clear();
  const FoldedProfile profile = ParseFolded(profiler.RenderFolded());
  CheckFoldedShape(profile);
  EXPECT_TRUE(profile.rows.empty());
  EXPECT_NE(profiler.RenderLeakReport().find("no live sampled allocations"),
            std::string::npos);
}

TEST(HeapProfilerLifecycle, StartStopClear) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    EXPECT_FALSE(profiler.Start(PinnedOptions()));
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(PinnedOptions()));  // double start refused
  EXPECT_EQ(profiler.Status().sample_interval_bytes, kPinnedInterval);

  const std::uint64_t live_before_clear = profiler.Status().samples;
  profiler.Clear();  // refused while running
  EXPECT_GE(profiler.Status().samples, live_before_clear);

  EXPECT_TRUE(profiler.Stop());
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler.Stop());  // double stop refused
  profiler.Clear();
  EXPECT_EQ(profiler.Status().samples, 0u);
  EXPECT_EQ(profiler.Status().live_bytes, 0u);
}

TEST(HeapProfilerLifecycle, IntervalIsClampedToFloor) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  HeapProfilerOptions options;
  options.sample_interval_bytes = 1;  // below the 1 KiB floor
  ASSERT_TRUE(profiler.Start(options));
  EXPECT_EQ(profiler.Status().sample_interval_bytes, kPinnedInterval);
  EXPECT_TRUE(profiler.Stop());
  profiler.Clear();
}

// ---------------------------------------------------------------------------
// Sampling

TEST(HeapProfilerSampling, LargeBlocksAreByteAccurate) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));

  // Every 64 KiB block spans 64 pinned intervals, so each one is sampled
  // deterministically with a weight of exactly its size.
  constexpr std::size_t kBlock = 64 * 1024;
  constexpr int kBlocks = 32;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(AllocateBlock(kBlock));
    ASSERT_NE(blocks.back(), nullptr);
    std::memset(blocks.back(), 0x5a, kBlock);
  }
  const HeapProfilerStatus held = profiler.Status();
  EXPECT_GE(held.samples, static_cast<std::uint64_t>(kBlocks));
  EXPECT_GE(held.live_bytes, static_cast<std::uint64_t>(kBlocks) * kBlock);
  EXPECT_GE(held.cumulative_bytes,
            static_cast<std::uint64_t>(kBlocks) * kBlock);

  for (void* p : blocks) std::free(p);
  const HeapProfilerStatus freed = profiler.Status();
  // Retired live bytes drop by at least the blocks' weight; the slack
  // absorbs unrelated allocations sampled between the two reads. Cumulative
  // never decreases.
  EXPECT_LE(freed.live_bytes,
            held.live_bytes - static_cast<std::uint64_t>(kBlocks) * kBlock +
                64 * kPinnedInterval);
  EXPECT_GE(freed.cumulative_bytes, held.cumulative_bytes);

  EXPECT_TRUE(profiler.Stop());
  profiler.Clear();
}

TEST(HeapProfilerSampling, FoldedShapeHoldsUnderLoad) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(AllocateBlock(8 * 1024));
  const FoldedProfile mid = ParseFolded(profiler.RenderFolded());
  CheckFoldedShape(mid);
  EXPECT_FALSE(mid.rows.empty());
  EXPECT_GT(mid.header.at("samples"), 0u);
  EXPECT_EQ(mid.header.at("interval_bytes"), kPinnedInterval);
  for (void* p : blocks) std::free(p);
  EXPECT_TRUE(profiler.Stop());
  // Stop() keeps retirement active: rendering after stop is still valid.
  CheckFoldedShape(ParseFolded(profiler.RenderFolded()));
  profiler.Clear();
}

TEST(HeapProfilerSampling, ReallocMovesTheLiveEntry) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  constexpr std::size_t kBlock = 128 * 1024;
  void* p = std::malloc(kBlock);
  ASSERT_NE(p, nullptr);
  const std::uint64_t live_held = profiler.Status().live_bytes;
  // Growing retires the old sampled entry and samples the new block: live
  // grows by about the size difference, not by the sum of both blocks.
  void* q = std::realloc(p, 2 * kBlock);
  ASSERT_NE(q, nullptr);
  const std::uint64_t live_grown = profiler.Status().live_bytes;
  EXPECT_GE(live_grown, live_held + kBlock - kPinnedInterval);
  EXPECT_LT(live_grown, live_held + 2 * kBlock);
  std::free(q);
  EXPECT_LE(profiler.Status().live_bytes, live_grown - 2 * kBlock +
                                              64 * kPinnedInterval);
  EXPECT_TRUE(profiler.Stop());
  profiler.Clear();
}

TEST(HeapProfilerSampling, CallocAndAlignedAllocAreAccounted) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  const std::uint64_t before = profiler.Status().cumulative_bytes;
  constexpr std::size_t kBlock = 64 * 1024;
  void* c = std::calloc(kBlock, 1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(static_cast<unsigned char*>(c)[kBlock - 1], 0);  // still zeroed
  void* a = std::aligned_alloc(4096, kBlock);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 4096, 0u);
  EXPECT_GE(profiler.Status().cumulative_bytes, before + 2 * kBlock);
  std::free(c);
  std::free(a);
  EXPECT_TRUE(profiler.Stop());
  profiler.Clear();
}

TEST(HeapProfilerSampling, ShardedTableSurvivesThreadChurn) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  // Hammer the sharded live table from a full pool: every index allocates,
  // touches, and frees blocks large enough that each one is sampled, while
  // renders run concurrently from the driving thread's turn in the pool.
  ThreadPool pool(4);
  ASSERT_TRUE(pool.ParallelFor(256, [](std::size_t i) {
    std::vector<void*> blocks;
    for (int j = 0; j < 8; ++j) {
      void* p = AllocateBlock(4 * 1024 + 512 * (i % 7));
      if (p != nullptr) {
        std::memset(p, static_cast<int>(i), 64);
        blocks.push_back(p);
      }
    }
    for (void* p : blocks) std::free(p);
  }));
  const HeapProfilerStatus status = profiler.Status();
  EXPECT_GE(status.samples, 256u);  // >= one sample per index's 32+ KiB
  const FoldedProfile profile = ParseFolded(profiler.RenderFolded());
  CheckFoldedShape(profile);
  EXPECT_TRUE(profiler.Stop());
  profiler.Clear();
}

// ---------------------------------------------------------------------------
// WriteHeapProfileFolded

TEST(WriteHeapProfileFolded, RoundTripsAndFailsCleanly) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsdist_heap_test.folded")
          .string();
  ASSERT_TRUE(WriteHeapProfileFolded(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  CheckFoldedShape(ParseFolded(buffer.str()));
  std::filesystem::remove(path);
  EXPECT_FALSE(WriteHeapProfileFolded("/nonexistent-dir/heap.folded"));
}

// ---------------------------------------------------------------------------
// MemRegion attribution

std::uint64_t CounterValue(const MetricsSnapshot& snapshot,
                           const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

TEST(MemRegionAttribution, ExactCountsIndependentOfSampling) {
  if (!Enabled()) GTEST_SKIP() << "observability disabled";
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "allocator wrappers unavailable in this build";
  }
  // No profiler Start(): exact attribution must work unarmed.
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  constexpr std::size_t kBlock = 32 * 1024;
  {
    const MemRegion region("heap_test/exact");
    void* p = AllocateBlock(kBlock);
    ASSERT_NE(p, nullptr);
    std::free(p);
  }
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  const std::string bytes_name = "tsdist.mem.alloc_bytes.heap_test/exact";
  const std::string count_name = "tsdist.mem.alloc_count.heap_test/exact";
  EXPECT_GE(CounterValue(after, bytes_name),
            CounterValue(before, bytes_name) + kBlock);
  EXPECT_GE(CounterValue(after, count_name),
            CounterValue(before, count_name) + 1);
}

TEST(MemRegionAttribution, InnermostRegionOwnsTheAllocation) {
  if (!Enabled()) GTEST_SKIP() << "observability disabled";
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "allocator wrappers unavailable in this build";
  }
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  constexpr std::size_t kBlock = 16 * 1024;
  {
    const MemRegion outer("heap_test/outer");
    const MemRegion inner("heap_test/inner");
    void* p = AllocateBlock(kBlock);
    ASSERT_NE(p, nullptr);
    std::free(p);
  }
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(CounterValue(after, "tsdist.mem.alloc_bytes.heap_test/inner"),
            CounterValue(before, "tsdist.mem.alloc_bytes.heap_test/inner") +
                kBlock);
  EXPECT_EQ(CounterValue(after, "tsdist.mem.alloc_bytes.heap_test/outer"),
            CounterValue(before, "tsdist.mem.alloc_bytes.heap_test/outer"));
}

TEST(MemRegionAttribution, LabelsAreSanitizedForMetricNames) {
  if (!Enabled()) GTEST_SKIP() << "observability disabled";
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "allocator wrappers unavailable in this build";
  }
  {
    const MemRegion region("heap test\nweird");
    void* p = AllocateBlock(8 * 1024);
    ASSERT_NE(p, nullptr);
    std::free(p);
  }
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(CounterValue(after, "tsdist.mem.alloc_bytes.heap_test_weird"),
            0u);
}

TEST(MemRegionAttribution, ArmedProfilerPublishesLabelPeaks) {
  HeapProfiler& profiler = HeapProfiler::Global();
  if (!Enabled()) GTEST_SKIP() << "observability disabled";
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "heap profiling unavailable in this build";
  }
  profiler.Clear();
  ResetMemPeaks();
  ASSERT_TRUE(profiler.Start(PinnedOptions()));
  constexpr std::size_t kBlock = 256 * 1024;
  {
    const MemRegion region("heap_test/peak");
    void* p = AllocateBlock(kBlock);
    ASSERT_NE(p, nullptr);
    std::memset(p, 1, kBlock);
    std::free(p);
  }
  EXPECT_TRUE(profiler.Stop());
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  const auto it =
      after.gauges.find("tsdist.mem.peak_live_bytes.heap_test/peak");
  ASSERT_NE(it, after.gauges.end());
  EXPECT_GE(it->second, static_cast<double>(kBlock));
  profiler.Clear();
}

TEST(MemRegionAttribution, MemStatsBetweenPicksUpRealRegions) {
  if (!Enabled()) GTEST_SKIP() << "observability disabled";
  if (!HeapProfilingAvailable()) {
    GTEST_SKIP() << "allocator wrappers unavailable in this build";
  }
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  {
    const MemRegion region("heap_test/delta");
    void* p = AllocateBlock(24 * 1024);
    ASSERT_NE(p, nullptr);
    std::free(p);
  }
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  const auto stats =
      MemStatsBetween(before.counters, after.counters, after.gauges);
  ASSERT_TRUE(stats.count("heap_test/delta"));
  EXPECT_GE(stats.at("heap_test/delta").alloc_bytes, 24u * 1024);
  EXPECT_GE(stats.at("heap_test/delta").alloc_count, 1u);
}

}  // namespace
}  // namespace tsdist::obs
