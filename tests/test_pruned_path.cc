// End-to-end tests for the pruned 1-NN evaluation path.
//
// Contract under test (docs/PRUNING.md): the cascade path — LB_Kim ->
// LB_Keogh -> EarlyAbandonDistance — produces predictions bit-identical to
// the full-matrix path, for every warping window and for non-elastic
// measures too (which skip the lower bounds and only early-abandon).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/classify/one_nn.h"
#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/elastic/dtw.h"
#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {
namespace {

Dataset SmallDataset(std::uint64_t seed) {
  GeneratorOptions options;
  options.length = 48;
  options.train_per_class = 8;
  options.test_per_class = 6;
  options.warp = 0.1;
  options.seed = seed;
  return MakeCbf(options);
}

// Reference implementation: row argmins of the full matrices.
std::vector<std::size_t> MatrixTestNeighbors(const Dataset& dataset,
                                             const PairwiseEngine& engine,
                                             const DistanceMeasure& measure) {
  return NearestNeighborIndices(
      engine.Compute(dataset.test(), dataset.train(), measure));
}

std::vector<std::size_t> MatrixLoocvNeighbors(const Dataset& dataset,
                                              const PairwiseEngine& engine,
                                              const DistanceMeasure& measure) {
  const Matrix w = engine.ComputeSelf(dataset.train(), measure);
  std::vector<std::size_t> out(w.rows());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = PairwiseEngine::kNoNeighbor;
    for (std::size_t j = 0; j < w.cols(); ++j) {
      if (j == i) continue;
      if (w(i, j) < best) {
        best = w(i, j);
        best_j = j;
      }
    }
    out[i] = best_j;
  }
  return out;
}

class PrunedDtwWindows : public ::testing::TestWithParam<double> {};

TEST_P(PrunedDtwWindows, TestNeighborsMatchMatrixPath) {
  const Dataset dataset = SmallDataset(31);
  const PairwiseEngine engine(2);
  const DtwDistance dtw(GetParam());
  EXPECT_EQ(
      engine.NearestNeighborIndicesPruned(dataset.test(), dataset.train(), dtw),
      MatrixTestNeighbors(dataset, engine, dtw));
}

TEST_P(PrunedDtwWindows, LoocvNeighborsMatchMatrixPath) {
  const Dataset dataset = SmallDataset(37);
  const PairwiseEngine engine(2);
  const DtwDistance dtw(GetParam());
  EXPECT_EQ(engine.LeaveOneOutNeighborsPruned(dataset.train(), dtw),
            MatrixLoocvNeighbors(dataset, engine, dtw));
}

INSTANTIATE_TEST_SUITE_P(Windows, PrunedDtwWindows,
                         ::testing::Values(0.0, 5.0, 10.0, 100.0));

// Non-DTW measures take the early-abandon-only path; a lock-step, an
// elastic variant, and a kernel measure cover the three dispatch shapes.
class PrunedOtherMeasures : public ::testing::TestWithParam<std::string> {};

TEST_P(PrunedOtherMeasures, NeighborsMatchMatrixPath) {
  const MeasurePtr measure =
      Registry::Global().Create(GetParam(), UnsupervisedParamsFor(GetParam()));
  ASSERT_NE(measure, nullptr);
  const Dataset dataset = SmallDataset(41);
  const PairwiseEngine engine(2);
  EXPECT_EQ(engine.NearestNeighborIndicesPruned(dataset.test(),
                                                dataset.train(), *measure),
            MatrixTestNeighbors(dataset, engine, *measure));
  EXPECT_EQ(engine.LeaveOneOutNeighborsPruned(dataset.train(), *measure),
            MatrixLoocvNeighbors(dataset, engine, *measure));
}

INSTANTIATE_TEST_SUITE_P(Measures, PrunedOtherMeasures,
                         ::testing::Values("euclidean", "manhattan",
                                           "lorentzian", "kullback_leibler",
                                           "msm", "sink"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// The EarlyAbandonDistance contract itself.
TEST(EarlyAbandonContractTest, InfiniteCutoffIsBitIdenticalToDistance) {
  Rng rng(53);
  const double inf = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(64), b(64);
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    for (const char* name : {"euclidean", "manhattan", "chebyshev",
                             "lorentzian", "gower", "dtw"}) {
      const MeasurePtr m =
          Registry::Global().Create(name, UnsupervisedParamsFor(name));
      ASSERT_NE(m, nullptr) << name;
      EXPECT_EQ(m->EarlyAbandonDistance(a, b, inf), m->Distance(a, b)) << name;
    }
  }
}

TEST(EarlyAbandonContractTest, CompletedRunsMatchDistanceExactly) {
  Rng rng(59);
  std::vector<double> a(64), b(64);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const EuclideanDistance euclidean;
  const double d = euclidean.Distance(a, b);
  // Cutoff just above the true distance: the run completes and must return
  // the bit-identical value, not an approximation.
  EXPECT_EQ(euclidean.EarlyAbandonDistance(a, b, d * (1.0 + 1e-12)), d);
}

TEST(EarlyAbandonContractTest, AbandonedRunsReturnAtLeastTheCutoff) {
  Rng rng(61);
  std::vector<double> a(256), b(256);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian(10.0, 1.0);  // far apart: must abandon
  for (const char* name : {"euclidean", "manhattan", "dtw"}) {
    const MeasurePtr m =
        Registry::Global().Create(name, UnsupervisedParamsFor(name));
    ASSERT_NE(m, nullptr) << name;
    const double cutoff = 0.5 * m->Distance(a, b);
    const double d = m->EarlyAbandonDistance(a, b, cutoff);
    EXPECT_GE(d, cutoff) << name;
    EXPECT_TRUE(std::isinf(d)) << name << ": abandon signals with +infinity";
  }
}

TEST(EarlyAbandonContractTest, DefaultImplementationDelegatesToDistance) {
  // Measures without a monotone accumulation keep the base-class behaviour:
  // never abandon, always exact.
  Rng rng(67);
  std::vector<double> a(32), b(32);
  for (auto& v : a) v = 0.1 + std::abs(rng.Gaussian());
  for (auto& v : b) v = 0.1 + std::abs(rng.Gaussian());
  const MeasurePtr canberra = Registry::Global().Create("canberra");
  ASSERT_NE(canberra, nullptr);
  EXPECT_EQ(canberra->EarlyAbandonDistance(a, b, 1e-12),
            canberra->Distance(a, b));
}

// End to end: the flag flips the execution path, not the numbers.
TEST(PrunedEvaluationTest, EvaluateFixedAccuraciesAreIdentical) {
  const Dataset dataset = SmallDataset(71);
  const PairwiseEngine engine(2);
  EvalOptions full_options;
  EvalOptions pruned_options;
  pruned_options.pruned = true;
  for (const char* name : {"dtw", "euclidean", "kullback_leibler"}) {
    const ParamMap params = UnsupervisedParamsFor(name);
    const EvalResult full = EvaluateFixed(name, params, dataset, engine,
                                          Registry::Global(), full_options);
    const EvalResult pruned = EvaluateFixed(name, params, dataset, engine,
                                            Registry::Global(), pruned_options);
    EXPECT_EQ(full.test_accuracy, pruned.test_accuracy) << name;
  }
}

TEST(PrunedEvaluationTest, EvaluateTunedAccuraciesAreIdentical) {
  const Dataset dataset = SmallDataset(73);
  const PairwiseEngine engine(2);
  EvalOptions full_options;
  EvalOptions pruned_options;
  pruned_options.pruned = true;
  for (const char* name : {"dtw", "erp"}) {
    const EvalResult full =
        EvaluateTuned(name, ParamGridFor(name), dataset, engine,
                      Registry::Global(), full_options);
    const EvalResult pruned =
        EvaluateTuned(name, ParamGridFor(name), dataset, engine,
                      Registry::Global(), pruned_options);
    EXPECT_EQ(full.train_accuracy, pruned.train_accuracy) << name;
    EXPECT_EQ(full.test_accuracy, pruned.test_accuracy) << name;
    EXPECT_EQ(full.params, pruned.params) << name;
  }
}

}  // namespace
}  // namespace tsdist
