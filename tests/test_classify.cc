// Unit tests for the 1-NN classifier, LOOCV, and tuning.

#include <gtest/gtest.h>

#include "src/classify/one_nn.h"
#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/data/generators.h"

namespace tsdist {
namespace {

TEST(OneNnTest, PerfectMatrixGivesFullAccuracy) {
  // Test i is closest to train i, labels match.
  Matrix e(2, 2, {0.1, 5.0, 5.0, 0.1});
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {0, 1}, {0, 1}), 1.0);
}

TEST(OneNnTest, AdversarialMatrixGivesZeroAccuracy) {
  Matrix e(2, 2, {5.0, 0.1, 0.1, 5.0});
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {0, 1}, {0, 1}), 0.0);
}

TEST(OneNnTest, TiesBreakTowardLowestIndex) {
  // Both training series are equidistant: index 0 (label 0) wins.
  Matrix e(1, 2, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {1}, {0, 1}), 0.0);
}

TEST(OneNnTest, NegativeDistancesAreValid) {
  // Similarity-derived measures produce negative distances; ordering rules.
  Matrix e(1, 2, {-5.0, -2.0});
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {0}, {0, 1}), 1.0);
}

TEST(OneNnTest, PartialAccuracy) {
  Matrix e(4, 2, {0.0, 1.0,    // -> train 0 (label 0), true 0: correct
                  1.0, 0.0,    // -> train 1 (label 1), true 1: correct
                  0.0, 1.0,    // -> train 0 (label 0), true 1: wrong
                  1.0, 0.0});  // -> train 1 (label 1), true 0: wrong
  EXPECT_DOUBLE_EQ(OneNnAccuracy(e, {0, 1, 1, 0}, {0, 1}), 0.5);
}

TEST(LeaveOneOutTest, ExcludesSelfMatch) {
  // Diagonal zeros would win every row if self-matches were allowed.
  Matrix w(3, 3, {0.0, 1.0, 9.0,
                  1.0, 0.0, 9.0,
                  9.0, 9.0, 0.0});
  // Labels: series 0 and 1 are mutual NNs (same class); series 2's NN is
  // series 0 (different class).
  EXPECT_NEAR(LeaveOneOutAccuracy(w, {0, 0, 1}), 2.0 / 3.0, 1e-12);
}

TEST(LeaveOneOutTest, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(LeaveOneOutAccuracy(Matrix(1, 1), {0}), 0.0);
  EXPECT_DOUBLE_EQ(LeaveOneOutAccuracy(Matrix(0, 0), {}), 0.0);
}

TEST(NearestNeighborIndicesTest, FindsArgmins) {
  Matrix e(2, 3, {3.0, 1.0, 2.0,
                  0.5, 4.0, 0.5});
  const auto nn = NearestNeighborIndices(e);
  EXPECT_EQ(nn, (std::vector<std::size_t>{1, 0}));  // ties -> lowest index
}

TEST(EvaluateFixedTest, SeparableDatasetIsLearnable) {
  GeneratorOptions options;
  options.length = 48;
  options.train_per_class = 8;
  options.test_per_class = 8;
  options.noise = 0.05;
  options.seed = 3;
  const Dataset data = MakeGunPointLike(options);
  const PairwiseEngine engine(2);
  const EvalResult r = EvaluateFixed("euclidean", {}, data, engine);
  EXPECT_EQ(r.measure, "euclidean");
  EXPECT_GT(r.test_accuracy, 0.8);
}

TEST(EvaluateTunedTest, PicksParameterThatHelpsTraining) {
  // On a warped dataset, LOOCV over the DTW grid must not pick delta = 0
  // (which degenerates to lock-step squared ED and scores worse on train).
  GeneratorOptions options;
  options.length = 48;
  options.train_per_class = 8;
  options.test_per_class = 4;
  options.noise = 0.05;
  options.warp = 0.2;
  options.seed = 4;
  const Dataset data = MakeWarpedPrototypes(options);
  const PairwiseEngine engine(2);
  const std::vector<ParamMap> grid = {{{"delta", 0.0}}, {{"delta", 20.0}}};
  const EvalResult r = EvaluateTuned("dtw", grid, data, engine);
  EXPECT_GT(r.train_accuracy, 0.0);
  // The tuned choice is recorded in the result.
  EXPECT_TRUE(r.params.count("delta"));
}

TEST(EvaluateTunedTest, DeterministicTieBreakPrefersFirstCandidate) {
  // Two identical candidates: the first must win.
  GeneratorOptions options;
  options.length = 32;
  options.train_per_class = 4;
  options.test_per_class = 2;
  options.seed = 5;
  const Dataset data = MakeCbf(options);
  const PairwiseEngine engine(1);
  const std::vector<ParamMap> grid = {{{"delta", 5.0}}, {{"delta", 5.0}}};
  const EvalResult r = EvaluateTuned("dtw", grid, data, engine);
  EXPECT_DOUBLE_EQ(r.params.at("delta"), 5.0);
}

TEST(PairwiseEngineTest, MatrixValuesMatchDirectCalls) {
  GeneratorOptions options;
  options.length = 24;
  options.train_per_class = 3;
  options.test_per_class = 2;
  options.seed = 6;
  const Dataset data = MakeCbf(options);
  const auto measure = Registry::Global().Create("euclidean");
  const PairwiseEngine engine(3);
  const Matrix e = engine.Compute(data.test(), data.train(), *measure);
  ASSERT_EQ(e.rows(), data.test_size());
  ASSERT_EQ(e.cols(), data.train_size());
  for (std::size_t i = 0; i < e.rows(); ++i) {
    for (std::size_t j = 0; j < e.cols(); ++j) {
      EXPECT_DOUBLE_EQ(e(i, j), measure->Distance(data.test()[i].values(),
                                                  data.train()[j].values()));
    }
  }
}

TEST(PairwiseEngineTest, SelfMatrixIsSymmetricAndThreadCountInvariant) {
  GeneratorOptions options;
  options.length = 24;
  options.train_per_class = 4;
  options.test_per_class = 1;
  options.seed = 7;
  const Dataset data = MakeCbf(options);
  const auto measure = Registry::Global().Create("dtw", {{"delta", 10.0}});
  const Matrix w1 = PairwiseEngine(1).ComputeSelf(data.train(), *measure);
  const Matrix w4 = PairwiseEngine(4).ComputeSelf(data.train(), *measure);
  EXPECT_TRUE(w1.ApproxEquals(w4, 0.0));  // bit-identical
  for (std::size_t i = 0; i < w1.rows(); ++i) {
    for (std::size_t j = 0; j < w1.cols(); ++j) {
      EXPECT_DOUBLE_EQ(w1(i, j), w1(j, i));
    }
  }
}

TEST(PairwiseEngineTest, EmptyInputsYieldEmptyMatrix) {
  const auto measure = Registry::Global().Create("euclidean");
  const PairwiseEngine engine(2);
  const Matrix e = engine.Compute({}, {}, *measure);
  EXPECT_EQ(e.rows(), 0u);
  EXPECT_EQ(e.cols(), 0u);
}

}  // namespace
}  // namespace tsdist
