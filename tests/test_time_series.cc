// Unit tests for the TimeSeries value type.

#include "src/core/time_series.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace tsdist {
namespace {

TEST(TimeSeriesTest, DefaultIsEmptyUnlabeled) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.label(), -1);
}

TEST(TimeSeriesTest, ConstructionStoresValuesAndLabel) {
  TimeSeries ts({1.0, 2.0, 3.0}, 7);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.label(), 7);
  EXPECT_DOUBLE_EQ(ts[0], 1.0);
  EXPECT_DOUBLE_EQ(ts[2], 3.0);
}

TEST(TimeSeriesTest, MeanOfKnownValues) {
  TimeSeries ts({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ts.Mean(), 4.0);
}

TEST(TimeSeriesTest, MeanOfEmptyIsZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.Mean(), 0.0);
}

TEST(TimeSeriesTest, StdDevIsPopulationConvention) {
  // Population std of {1, 3} is 1 (divide by n, not n-1).
  TimeSeries ts({1.0, 3.0});
  EXPECT_DOUBLE_EQ(ts.StdDev(), 1.0);
}

TEST(TimeSeriesTest, StdDevOfConstantIsZero) {
  TimeSeries ts({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(ts.StdDev(), 0.0);
}

TEST(TimeSeriesTest, NormOfPythagoreanTriple) {
  TimeSeries ts({3.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.Norm(), 5.0);
}

TEST(TimeSeriesTest, MinMax) {
  TimeSeries ts({3.0, -1.0, 4.0, 1.0});
  EXPECT_DOUBLE_EQ(ts.Min(), -1.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 4.0);
}

TEST(TimeSeriesTest, MedianOddLength) {
  TimeSeries ts({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(ts.Median(), 2.0);
}

TEST(TimeSeriesTest, MedianEvenLengthAveragesMiddleTwo) {
  TimeSeries ts({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(ts.Median(), 2.5);
}

TEST(TimeSeriesTest, MutableValuesAllowsInPlaceEdits) {
  TimeSeries ts({1.0, 2.0});
  ts.mutable_values()[0] = 9.0;
  EXPECT_DOUBLE_EQ(ts[0], 9.0);
}

TEST(TimeSeriesTest, SetLabel) {
  TimeSeries ts({1.0});
  ts.set_label(3);
  EXPECT_EQ(ts.label(), 3);
}

TEST(DotTest, KnownValue) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(DotTest, EmptyIsZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Dot(empty, empty), 0.0);
}

}  // namespace
}  // namespace tsdist
