# Appends the `robustness` and `shard` labels to every test discovered from
# the sharded-execution binary (test_shard), so CI can run the multi-process
# sweep suite alone (ctest -L shard / the `shard` test preset) or as part of
# the fault-tolerance selection (ctest -L robustness). Same
# TEST_INCLUDE_FILES technique as add_heap_label.cmake (which see): the full
# label list is substituted at configure time (@TSDIST_TEST_LABELS@), and
# this script's glob is disjoint from the other label scripts' globs, so
# relative ordering among them does not matter.
file(GLOB _tsdist_shard_files
     "${CMAKE_CURRENT_LIST_DIR}/test_shard*_tests.cmake")
foreach(_file IN LISTS _tsdist_shard_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;robustness;shard")
    endif()
  endforeach()
endforeach()
unset(_tsdist_shard_files)
unset(_add_test_lines)
