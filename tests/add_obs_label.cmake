# Appends the `obs` label to every test discovered from the observability
# binaries (test_obs, test_log, test_expo, test_perf_counters), so CI can
# run the telemetry suite alone (ctest -L obs). Same TEST_INCLUDE_FILES
# technique as add_sanitize_label.cmake (which see): the full label list is
# substituted at configure time (@TSDIST_TEST_LABELS@) rather than appended
# — this script is registered after the sanitize one, so it wins for these
# binaries. The globs are disjoint from test_resilience, so ordering
# relative to add_robustness_label.cmake does not matter.
file(GLOB _tsdist_obs_files
     "${CMAKE_CURRENT_LIST_DIR}/test_obs*_tests.cmake"
     "${CMAKE_CURRENT_LIST_DIR}/test_log*_tests.cmake"
     "${CMAKE_CURRENT_LIST_DIR}/test_expo*_tests.cmake"
     "${CMAKE_CURRENT_LIST_DIR}/test_perf_counters*_tests.cmake")
foreach(_file IN LISTS _tsdist_obs_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;obs")
    endif()
  endforeach()
endforeach()
unset(_tsdist_obs_files)
unset(_add_test_lines)
