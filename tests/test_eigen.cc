// Unit tests for the symmetric Jacobi eigensolver.

#include "src/linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"

namespace tsdist {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const EigenDecomposition eig = SymmetricEigen(a);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2, {2, 1, 1, 2});
  const EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(77);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition eig = SymmetricEigen(a);
  // Rebuild V * diag(values) * V^T.
  Matrix scaled = eig.vectors;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      scaled(i, j) *= eig.values[j];
    }
  }
  const Matrix rebuilt = scaled.Multiply(eig.vectors.Transposed());
  EXPECT_TRUE(rebuilt.ApproxEquals(a, 1e-8));
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(78);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.Uniform();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition eig = SymmetricEigen(a);
  const Matrix vtv = eig.vectors.Transposed().Multiply(eig.vectors);
  EXPECT_TRUE(vtv.ApproxEquals(Matrix::Identity(n), 1e-8));
}

TEST(EigenTest, PsdGramMatrixHasNonNegativeEigenvalues) {
  // Gram matrix of random vectors is positive semi-definite.
  Rng rng(79);
  const std::size_t n = 5;
  Matrix b(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) b(i, j) = rng.Gaussian();
  }
  const Matrix gram = b.Multiply(b.Transposed());
  const EigenDecomposition eig = SymmetricEigen(gram);
  for (double v : eig.values) {
    EXPECT_GE(v, -1e-9);
  }
}

TEST(EigenTest, OneByOne) {
  Matrix a(1, 1, {4.2});
  const EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.values[0], 4.2, 1e-12);
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), 1.0, 1e-12);
}

}  // namespace
}  // namespace tsdist
