// Unit tests for the hardware perf-counter layer: derived-ratio edge cases,
// accumulation semantics, JSON serialization, the deterministic
// force-disabled path (containers and CI rarely allow perf_event_open), and
// — when the kernel permits it — one real measured region.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/obs/json.h"
#include "src/obs/perf_counters.h"

namespace tsdist {
namespace {

// Every test leaves the probe-following default behind, whatever it set.
class PerfCountersTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::SetPerfCountersEnabled(true); }
};

obs::PerfReading MakeReading(std::uint64_t base) {
  obs::PerfReading r;
  r.valid = true;
  r.cycles = base;
  r.instructions = 2 * base;
  r.cache_references = 100;
  r.cache_misses = 25;
  r.branches = 1000;
  r.branch_misses = 10;
  r.time_enabled_ns = 400;
  r.time_running_ns = 100;
  return r;
}

TEST_F(PerfCountersTest, DerivedRatios) {
  const obs::PerfReading r = MakeReading(500);
  EXPECT_DOUBLE_EQ(r.Ipc(), 2.0);
  EXPECT_DOUBLE_EQ(r.CacheMissRate(), 0.25);
  EXPECT_DOUBLE_EQ(r.BranchMissRate(), 0.01);
  EXPECT_DOUBLE_EQ(r.RunningRatio(), 0.25);

  // Zero denominators degrade to 0, never NaN.
  const obs::PerfReading zero;
  EXPECT_DOUBLE_EQ(zero.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(zero.CacheMissRate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.BranchMissRate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.RunningRatio(), 0.0);
}

TEST_F(PerfCountersTest, AccumulateSumsAndPropagatesValidity) {
  obs::PerfReading total = MakeReading(100);
  total.Accumulate(MakeReading(50));
  EXPECT_TRUE(total.valid);
  EXPECT_EQ(total.cycles, 150u);
  EXPECT_EQ(total.instructions, 300u);
  EXPECT_EQ(total.cache_references, 200u);
  EXPECT_EQ(total.cache_misses, 50u);
  EXPECT_EQ(total.branches, 2000u);
  EXPECT_EQ(total.branch_misses, 20u);
  EXPECT_EQ(total.time_enabled_ns, 800u);
  EXPECT_EQ(total.time_running_ns, 200u);

  // One invalid side poisons the sum: a partial case must not report a
  // perf block that silently covers only some iterations.
  obs::PerfReading tainted = MakeReading(100);
  tainted.Accumulate(obs::PerfReading{});
  EXPECT_FALSE(tainted.valid);
}

TEST_F(PerfCountersTest, JsonSerializationRoundTrips) {
  const obs::PerfReading r = MakeReading(500);
  const std::string json = obs::PerfReadingToJson(r, 2);
  const obs::JsonValue v = obs::ParseJson(json);
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.GetDouble("cycles", -1), 500.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("instructions", -1), 1000.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("cache_references", -1), 100.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("cache_misses", -1), 25.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("branches", -1), 1000.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("branch_misses", -1), 10.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("ipc", -1), 2.0);
  EXPECT_DOUBLE_EQ(v.GetDouble("cache_miss_rate", -1), 0.25);
  EXPECT_DOUBLE_EQ(v.GetDouble("branch_miss_rate", -1), 0.01);
  EXPECT_DOUBLE_EQ(v.GetDouble("running_ratio", -1), 0.25);
}

TEST_F(PerfCountersTest, ForceDisabledGroupsAreUnavailable) {
  obs::SetPerfCountersEnabled(false);
  EXPECT_FALSE(obs::PerfCountersSupported());
  obs::PerfCounterGroup group;
  EXPECT_FALSE(group.available());
  group.Start();  // no-ops, must not crash
  const obs::PerfReading r = group.Stop();
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.cycles, 0u);
}

TEST_F(PerfCountersTest, MeasuresRealWorkWhenKernelAllows) {
  if (!obs::PerfCountersSupported()) {
    GTEST_SKIP() << "perf_event_open unavailable (container/CI)";
  }
  obs::PerfCounterGroup group;
  ASSERT_TRUE(group.available());
  group.Start();
  // Enough work that zero retired instructions would mean a broken group.
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 1000000; ++i) acc = acc + i * i;
  const obs::PerfReading r = group.Stop();
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.time_enabled_ns, 0u);
}

}  // namespace
}  // namespace tsdist
