// Unit tests for the statistical machinery: Wilcoxon signed-rank, Friedman,
// Nemenyi, and the critical-difference analysis.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/friedman.h"
#include "src/stats/nemenyi.h"
#include "src/stats/ranking.h"
#include "src/stats/wilcoxon.h"

namespace tsdist {
namespace {

TEST(MidRanksTest, DistinctValues) {
  const std::vector<double> v = {10.0, 30.0, 20.0};
  EXPECT_EQ(MidRanks(v), (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(MidRanksTest, TiesShareAverageRank) {
  const std::vector<double> v = {5.0, 5.0, 1.0};
  // Sorted: 1 (rank 1), then the two 5s share (2+3)/2 = 2.5.
  EXPECT_EQ(MidRanks(v), (std::vector<double>{2.5, 2.5, 1.0}));
}

TEST(MidRanksTest, AllEqual) {
  const std::vector<double> v = {2.0, 2.0, 2.0, 2.0};
  for (double r : MidRanks(v)) EXPECT_DOUBLE_EQ(r, 2.5);
}

TEST(NormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.644853627), 0.05, 1e-6);
}

TEST(WilcoxonTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const WilcoxonResult r = WilcoxonSignedRank(a, a);
  EXPECT_EQ(r.n_nonzero, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WilcoxonTest, KnownSmallExample) {
  // Classic example: differences {1, 2, 3, 4, 5} all positive.
  const std::vector<double> a = {2.0, 4.0, 6.0, 8.0, 10.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  const WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_DOUBLE_EQ(r.w_plus, 15.0);
  EXPECT_DOUBLE_EQ(r.w_minus, 0.0);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  // Exact two-sided p for the extreme assignment with n = 5: 2/32.
  EXPECT_NEAR(r.p_value, 2.0 / 32.0, 1e-12);
}

TEST(WilcoxonTest, SymmetricInSign) {
  const std::vector<double> a = {5.0, 1.0, 7.0, 2.0, 9.0, 4.0};
  const std::vector<double> b = {4.0, 3.0, 5.0, 4.0, 6.0, 8.0};
  const WilcoxonResult ab = WilcoxonSignedRank(a, b);
  const WilcoxonResult ba = WilcoxonSignedRank(b, a);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
  EXPECT_DOUBLE_EQ(ab.w_plus, ba.w_minus);
}

TEST(WilcoxonTest, LargeSampleUsesNormalApproximation) {
  // 40 paired samples with a consistent positive shift: p must be tiny.
  std::vector<double> a(40), b(40);
  for (int i = 0; i < 40; ++i) {
    a[static_cast<std::size_t>(i)] = i + 1.0;
    b[static_cast<std::size_t>(i)] = i + 0.3 + 0.01 * (i % 3);
  }
  const WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(WilcoxonTest, ExactAndApproximateAgreeNearBoundary) {
  // n = 25 (exact) vs the same data evaluated with the approximation at
  // n = 26 (one extra neutral-ish pair): p-values should be in the same
  // ballpark. This guards against unit mistakes in either branch.
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) {
    a.push_back(i + ((i % 3 == 0) ? -0.5 : 1.0));
    b.push_back(static_cast<double>(i));
  }
  const WilcoxonResult exact = WilcoxonSignedRank(a, b);
  a.push_back(100.0);
  b.push_back(99.0);
  const WilcoxonResult approx = WilcoxonSignedRank(a, b);
  EXPECT_LT(std::fabs(std::log10(exact.p_value) - std::log10(approx.p_value)),
            1.0);
}

TEST(SignificantlyGreaterTest, DirectionMatters) {
  std::vector<double> high(30), low(30);
  for (int i = 0; i < 30; ++i) {
    high[static_cast<std::size_t>(i)] = 1.0 + 0.01 * i;
    low[static_cast<std::size_t>(i)] = 0.5 + 0.01 * i;
  }
  EXPECT_TRUE(SignificantlyGreater(high, low, 0.05));
  EXPECT_FALSE(SignificantlyGreater(low, high, 0.05));
}

TEST(ChiSquareSurvivalTest, KnownValues) {
  // P(X > 3.841; df=1) = 0.05, P(X > 5.991; df=2) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841459, 1.0), 0.05, 1e-4);
  EXPECT_NEAR(ChiSquareSurvival(5.991465, 2.0), 0.05, 1e-4);
  EXPECT_NEAR(ChiSquareSurvival(0.0, 3.0), 1.0, 1e-12);
}

TEST(FriedmanTest, NoDifferenceGivesHighPValue) {
  // Accuracy columns are permutations across rows: no systematic ranking.
  Matrix acc(6, 3, {0.1, 0.2, 0.3,
                    0.3, 0.1, 0.2,
                    0.2, 0.3, 0.1,
                    0.1, 0.3, 0.2,
                    0.2, 0.1, 0.3,
                    0.3, 0.2, 0.1});
  const FriedmanResult r = FriedmanTest(acc);
  EXPECT_NEAR(r.average_ranks[0], 2.0, 1e-12);
  EXPECT_NEAR(r.average_ranks[1], 2.0, 1e-12);
  EXPECT_NEAR(r.average_ranks[2], 2.0, 1e-12);
  EXPECT_NEAR(r.chi_square, 0.0, 1e-9);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(FriedmanTest, DominantMeasureGetsRankOne) {
  Matrix acc(5, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    acc(i, 0) = 0.9;  // always best
    acc(i, 1) = 0.5;
    acc(i, 2) = 0.1;  // always worst
  }
  const FriedmanResult r = FriedmanTest(acc);
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[2], 3.0);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(FriedmanTest, HandComputedStatistic) {
  // k = 3, N = 4, perfectly consistent ranking: chi^2 = 12*4/(3*4) *
  // ((1 + 4 + 9) - 3*16/4) = 4 * (14 - 12) = 8.
  Matrix acc(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    acc(i, 0) = 3.0;
    acc(i, 1) = 2.0;
    acc(i, 2) = 1.0;
  }
  const FriedmanResult r = FriedmanTest(acc);
  EXPECT_NEAR(r.chi_square, 8.0, 1e-9);
}

TEST(NemenyiTest, CriticalValuesFromDemsarTable) {
  EXPECT_NEAR(NemenyiCriticalValue(2, 0.05), 1.960, 1e-9);
  EXPECT_NEAR(NemenyiCriticalValue(10, 0.05), 3.164, 1e-9);
  EXPECT_NEAR(NemenyiCriticalValue(2, 0.10), 1.645, 1e-9);
  EXPECT_NEAR(NemenyiCriticalValue(10, 0.10), 2.920, 1e-9);
}

TEST(NemenyiTest, CriticalDifferenceFormula) {
  // CD = q * sqrt(k(k+1)/(6N)): k = 5, N = 30, alpha = 0.05.
  const double expected = 2.728 * std::sqrt(5.0 * 6.0 / (6.0 * 30.0));
  EXPECT_NEAR(NemenyiCriticalDifference(5, 30, 0.05), expected, 1e-9);
}

TEST(NemenyiTest, MoreDatasetsShrinkTheCd) {
  EXPECT_LT(NemenyiCriticalDifference(5, 100, 0.05),
            NemenyiCriticalDifference(5, 10, 0.05));
}

TEST(CdAnalysisTest, RankingIsSortedAndGroupsCoverAllMeasures) {
  Matrix acc(12, 4);
  for (std::size_t i = 0; i < 12; ++i) {
    acc(i, 0) = 0.9 + 0.001 * static_cast<double>(i % 3);
    acc(i, 1) = 0.88;
    acc(i, 2) = 0.5;
    acc(i, 3) = 0.48;
  }
  const CdAnalysis analysis =
      AnalyzeRanks(acc, {"best", "second", "third", "worst"}, 0.10);
  ASSERT_EQ(analysis.ranking.size(), 4u);
  EXPECT_EQ(analysis.ranking[0].name, "best");
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(analysis.ranking[i].average_rank,
              analysis.ranking[i - 1].average_rank);
  }
  // Every measure appears in at least one group.
  std::vector<bool> covered(4, false);
  for (const auto& group : analysis.groups) {
    for (std::size_t idx : group) covered[idx] = true;
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(CdAnalysisTest, CloseMeasuresShareAGroupDistantOnesDoNot) {
  // best/second are within CD of each other; third/worst are far away.
  Matrix acc(20, 4);
  for (std::size_t i = 0; i < 20; ++i) {
    const bool flip = (i % 2 == 0);
    acc(i, 0) = flip ? 0.91 : 0.90;
    acc(i, 1) = flip ? 0.90 : 0.91;
    acc(i, 2) = 0.50;
    acc(i, 3) = 0.30;
  }
  const CdAnalysis analysis =
      AnalyzeRanks(acc, {"a", "b", "c", "d"}, 0.10);
  // a and b must be in a common group.
  bool ab_together = false;
  bool ad_together = false;
  for (const auto& group : analysis.groups) {
    bool has_a = false, has_b = false, has_d = false;
    for (std::size_t idx : group) {
      if (analysis.ranking[idx].name == "a") has_a = true;
      if (analysis.ranking[idx].name == "b") has_b = true;
      if (analysis.ranking[idx].name == "d") has_d = true;
    }
    ab_together |= (has_a && has_b);
    ad_together |= (has_a && has_d);
  }
  EXPECT_TRUE(ab_together);
  EXPECT_FALSE(ad_together);
}

TEST(CdAnalysisTest, RenderedDiagramMentionsEveryMeasure) {
  Matrix acc(5, 2, {0.9, 0.1, 0.8, 0.2, 0.9, 0.3, 0.7, 0.1, 0.8, 0.2});
  const CdAnalysis analysis = AnalyzeRanks(acc, {"alpha", "beta"}, 0.05);
  const std::string diagram = RenderCdDiagram(analysis);
  EXPECT_NE(diagram.find("alpha"), std::string::npos);
  EXPECT_NE(diagram.find("beta"), std::string::npos);
  EXPECT_NE(diagram.find("CD"), std::string::npos);
}

}  // namespace
}  // namespace tsdist
