// Unit tests for the measure registry and the library's measure inventory.

#include <set>

#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/elastic/elastic_all.h"
#include "src/kernel/kernel_measure.h"
#include "src/lockstep/lockstep_all.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {
namespace {

TEST(RegistryTest, GlobalContainsFullInventory) {
  const Registry& registry = Registry::Global();
  // 52 lock-step + 4 sliding + 7 elastic + 4 kernel = 67 pairwise measures
  // (the 4 embedding measures are dataset-level transforms, completing the
  // paper's 71).
  EXPECT_EQ(registry.Names().size(), 67u);
}

TEST(RegistryTest, CategoriesPartitionTheInventory) {
  const Registry& registry = Registry::Global();
  EXPECT_EQ(registry.NamesInCategory(MeasureCategory::kLockStep).size(), 52u);
  EXPECT_EQ(registry.NamesInCategory(MeasureCategory::kSliding).size(), 4u);
  EXPECT_EQ(registry.NamesInCategory(MeasureCategory::kElastic).size(), 7u);
  EXPECT_EQ(registry.NamesInCategory(MeasureCategory::kKernel).size(), 4u);
}

TEST(RegistryTest, CreateUnknownReturnsNull) {
  EXPECT_EQ(Registry::Global().Create("not-a-measure"), nullptr);
}

TEST(RegistryTest, NamesAreSorted) {
  const auto names = Registry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, LocalRegistryOverride) {
  Registry local;
  local.Register("custom", [](const ParamMap&) -> MeasurePtr {
    return Registry::Global().Create("euclidean");
  });
  EXPECT_TRUE(local.Contains("custom"));
  EXPECT_FALSE(local.Contains("euclidean"));
  const MeasurePtr m = local.Create("custom");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->name(), "euclidean");
}

TEST(RegistryTest, EveryMeasureNameMatchesItsRegistryKey) {
  const Registry& registry = Registry::Global();
  for (const auto& name : registry.Names()) {
    const MeasurePtr m = registry.Create(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->name(), name);
  }
}

TEST(RegistryTest, ToStringOfCategories) {
  EXPECT_EQ(ToString(MeasureCategory::kLockStep), "lock-step");
  EXPECT_EQ(ToString(MeasureCategory::kSliding), "sliding");
  EXPECT_EQ(ToString(MeasureCategory::kElastic), "elastic");
  EXPECT_EQ(ToString(MeasureCategory::kKernel), "kernel");
  EXPECT_EQ(ToString(MeasureCategory::kEmbedding), "embedding");
}

TEST(ParamMapToStringTest, RendersSortedKeyValuePairs) {
  EXPECT_EQ(ToString(ParamMap{{"b", 2.0}, {"a", 1.5}}), "a=1.5,b=2");
  EXPECT_EQ(ToString(ParamMap{}), "");
}

}  // namespace
}  // namespace tsdist
