# Appends the `simd` label to every test discovered from the SIMD kernel and
# dispatcher binaries (test_simd_kernels, test_simd_dispatch), so the
# bit-identity suite can be run alone (ctest -L simd / the `simd` test
# preset) — e.g. once per dispatch level with different TSDIST_SIMD values.
# Same TEST_INCLUDE_FILES technique as add_obs_label.cmake (which see): the
# full label list is substituted at configure time (@TSDIST_TEST_LABELS@).
# The glob is disjoint from the other label scripts' globs, so relative
# ordering among them does not matter.
file(GLOB _tsdist_simd_files
     "${CMAKE_CURRENT_LIST_DIR}/test_simd*_tests.cmake")
foreach(_file IN LISTS _tsdist_simd_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;simd")
    endif()
  endforeach()
endforeach()
unset(_tsdist_simd_files)
unset(_add_test_lines)
