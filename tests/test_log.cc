// Unit tests for the structured logger: event accounting under concurrent
// producers (nothing lost below ring capacity), per-site token-bucket
// suppression, the enqueue-or-suppress invariant under overload, and
// byte-identical JSON sink output for a deterministic single-threaded run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/obs.h"

namespace tsdist {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Keeps the stderr sink quiet during bulk logging and restores the global
// logger's clock/sink state afterwards, so test order never matters.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Logger::Global().SetStderrSink(false);
    obs::Logger::Global().SetClockForTest(nullptr);
  }
  void TearDown() override {
    obs::Logger::Global().Flush();
    obs::Logger::Global().CloseJsonSink();
    obs::Logger::Global().SetClockForTest(nullptr);
    obs::Logger::Global().SetStderrSink(true);
  }
};

TEST_F(LogTest, NoEventsLostBelowCapacityUnderContention) {
  auto& logger = obs::Logger::Global();
  // Drain whatever earlier tests left behind so the ring starts empty.
  logger.Flush();
  const std::uint64_t enqueued_before = logger.enqueued_events();
  const std::uint64_t suppressed_before = logger.suppressed_events();

  // 8 producers x 512 events = 4096 < kRingCapacity (8192): even if the
  // sink thread never ran, everything would fit, so nothing may be dropped.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 512;
  static_assert(kThreads * kPerThread < obs::Logger::kRingCapacity);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // No LogSite: rate limiting off, only ring capacity can drop.
        logger.Log(obs::LogLevel::kDebug, "contention",
                   {obs::F("thread", t), obs::F("i", i)});
      }
    });
  }
  for (auto& th : pool) th.join();
  logger.Flush();

  EXPECT_EQ(logger.enqueued_events() - enqueued_before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(logger.suppressed_events(), suppressed_before);
}

TEST_F(LogTest, EveryLogCallEitherEnqueuesOrSuppresses) {
  auto& logger = obs::Logger::Global();
  const std::uint64_t enqueued_before = logger.enqueued_events();
  const std::uint64_t suppressed_before = logger.suppressed_events();

  // 4x ring capacity from concurrent producers: overload is likely (though
  // the sink drains concurrently, so it is not guaranteed). The hard
  // invariant is that no call vanishes unaccounted.
  constexpr int kThreads = 4;
  const int per_thread = static_cast<int>(obs::Logger::kRingCapacity);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&logger, per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        logger.Log(obs::LogLevel::kDebug, "overload", {obs::F("i", i)});
      }
    });
  }
  for (auto& th : pool) th.join();
  logger.Flush();

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) *
                              static_cast<std::uint64_t>(per_thread);
  EXPECT_EQ((logger.enqueued_events() - enqueued_before) +
                (logger.suppressed_events() - suppressed_before),
            total);
}

TEST_F(LogTest, TokenBucketSuppressesPerSite) {
  auto& logger = obs::Logger::Global();
  logger.Flush();
  const std::uint64_t suppressed_before = logger.suppressed_events();

  // A site with a 3-token bucket and no refill admits exactly 3 events.
  obs::LogSite site{__FILE__, __LINE__};
  site.burst = 3.0;
  site.rate_per_sec = 0.0;
  const std::uint64_t enqueued_before = logger.enqueued_events();
  for (int i = 0; i < 10; ++i) {
    logger.Log(obs::LogLevel::kDebug, "throttled", {obs::F("i", i)}, &site);
  }
  logger.Flush();

  EXPECT_EQ(logger.enqueued_events() - enqueued_before, 3u);
  EXPECT_EQ(logger.suppressed_events() - suppressed_before, 7u);
}

TEST_F(LogTest, JsonSinkIsByteIdenticalForDeterministicRuns) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "tsdist_test_log_json_sink";
  fs::create_directories(dir);
  const std::string path_a = (dir / "a.jsonl").string();
  const std::string path_b = (dir / "b.jsonl").string();

  auto& logger = obs::Logger::Global();
  auto run_once = [&logger](const std::string& path) {
    // Fixed fake clock: timestamps advance 1ms per event, every run.
    std::uint64_t ticks = 0;
    logger.SetClockForTest(
        [&ticks]() mutable { return 1000000u * ++ticks; });
    std::string error;
    ASSERT_TRUE(logger.OpenJsonSink(path, &error)) << error;
    for (int i = 0; i < 16; ++i) {
      logger.Log(obs::LogLevel::kInfo, "deterministic event",
                 {obs::F("i", i), obs::F("pi", 3.5),
                  obs::F("note", std::string("quote\"and\\slash")),
                  obs::F("flag", true)});
    }
    logger.Flush();
    logger.CloseJsonSink();
    logger.SetClockForTest(nullptr);
  };
  run_once(path_a);
  run_once(path_b);

  const std::string a = ReadFile(path_a);
  const std::string b = ReadFile(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"tsdist.log.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"msg\": \"deterministic event\""), std::string::npos);
  EXPECT_NE(a.find("\"note\": \"quote\\\"and\\\\slash\""), std::string::npos);
  // 16 events -> 16 lines, none suppressed (burstless direct Log calls).
  EXPECT_EQ(static_cast<int>(std::count(a.begin(), a.end(), '\n')), 16);
  fs::remove_all(dir);
}

TEST_F(LogTest, TailServesMostRecentFormattedLines) {
  auto& logger = obs::Logger::Global();
  logger.Log(obs::LogLevel::kInfo, "tail marker",
             {obs::F("k", std::string("v"))});
  logger.Flush();
  const std::vector<std::string> tail = logger.Tail();
  ASSERT_FALSE(tail.empty());
  bool found = false;
  for (const std::string& line : tail) {
    if (line.find("tail marker") != std::string::npos) {
      found = true;
      EXPECT_NE(line.find("\"tsdist.log.v1\""), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(LogTest, PrettyRenderingAndLevelNames) {
  obs::LogEvent event;
  event.level = obs::LogLevel::kWarn;
  event.message = "telemetry server listening";
  event.fields.push_back(obs::F("address", std::string("127.0.0.1")));
  event.fields.push_back(obs::F("port", 9109));
  const std::string line = obs::LogEventPretty(event, /*color=*/false);
  // expo_smoke.py greps this exact shape for the ephemeral port.
  EXPECT_EQ(line,
            "[warn] telemetry server listening address=\"127.0.0.1\" "
            "port=9109");
  EXPECT_STREQ(obs::ToString(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::ToString(obs::LogLevel::kInfo), "info");
  EXPECT_STREQ(obs::ToString(obs::LogLevel::kWarn), "warn");
  EXPECT_STREQ(obs::ToString(obs::LogLevel::kError), "error");
}

}  // namespace
}  // namespace tsdist
