// Unit and property tests for the 4 kernel measures.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/kernel/gak.h"
#include "src/kernel/kdtw.h"
#include "src/kernel/kernel_measure.h"
#include "src/kernel/rbf.h"
#include "src/kernel/sink.h"
#include "src/linalg/rng.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(LogSumExp3Test, KnownValuesAndInfTolerance) {
  using kernel_internal::LogSumExp3;
  EXPECT_NEAR(LogSumExp3(0.0, 0.0, 0.0), std::log(3.0), 1e-12);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(LogSumExp3(-inf, 0.0, -inf), 0.0, 1e-12);
  EXPECT_EQ(LogSumExp3(-inf, -inf, -inf), -inf);
  // Stability with large magnitudes.
  EXPECT_NEAR(LogSumExp3(1000.0, 1000.0, -inf), 1000.0 + std::log(2.0), 1e-9);
}

TEST(RbfKernelTest, SelfSimilarityLogIsZero) {
  const auto x = RandomSeries(32, 1);
  EXPECT_DOUBLE_EQ(RbfKernel(2.0).LogSimilarity(x, x), 0.0);
}

TEST(RbfKernelTest, KnownValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {1.0, 1.0};
  // log k = -gamma * ||a-b||^2 = -2 * gamma.
  EXPECT_NEAR(RbfKernel(0.5).LogSimilarity(a, b), -1.0, 1e-12);
}

TEST(SinkKernelTest, SymmetricInArguments) {
  const SinkKernel k(5.0);
  const auto a = RandomSeries(40, 2);
  const auto b = RandomSeries(40, 3);
  EXPECT_NEAR(k.LogSimilarity(a, b), k.LogSimilarity(b, a), 1e-9);
}

TEST(SinkKernelTest, ShiftedCopyNearlySelfSimilar) {
  std::vector<double> x(96, 0.0);
  for (int i = 30; i < 50; ++i) x[static_cast<std::size_t>(i)] = 1.0;
  const auto shifted = data_internal::CircularShift(x, 12);
  KernelDistance sink(std::make_unique<SinkKernel>(10.0));
  EXPECT_LT(sink.Distance(x, shifted), 0.05);
}

TEST(GakKernelTest, SymmetricInArguments) {
  const GakKernel k(0.5);
  const auto a = RandomSeries(24, 4);
  const auto b = RandomSeries(24, 5);
  EXPECT_NEAR(k.LogSimilarity(a, b), k.LogSimilarity(b, a), 1e-9);
}

TEST(GakKernelTest, SupportsUnequalLengths) {
  const auto a = RandomSeries(30, 6);
  const auto b = RandomSeries(7, 7);
  EXPECT_TRUE(std::isfinite(GakKernel(1.0).LogSimilarity(a, b)));
}

TEST(GakKernelTest, NoUnderflowOnLongSeries) {
  // The raison d'etre of the log-domain DP: alignments over hundreds of
  // points multiply hundreds of sub-unity local kernels.
  const auto a = RandomSeries(512, 8);
  const auto b = RandomSeries(512, 9);
  const double log_k = GakKernel(1.0).LogSimilarity(a, b);
  EXPECT_TRUE(std::isfinite(log_k));
}

TEST(KdtwKernelTest, SymmetricInArguments) {
  const KdtwKernel k(0.125);
  const auto a = RandomSeries(24, 10);
  const auto b = RandomSeries(24, 11);
  EXPECT_NEAR(k.LogSimilarity(a, b), k.LogSimilarity(b, a), 1e-9);
}

TEST(KdtwKernelTest, NoUnderflowOnLongSeries) {
  const auto a = RandomSeries(400, 12);
  const auto b = RandomSeries(400, 13);
  EXPECT_TRUE(std::isfinite(KdtwKernel(0.125).LogSimilarity(a, b)));
}

// Shared distance-level properties across all four kernels.
class KernelDistanceProperty : public ::testing::TestWithParam<std::string> {
 protected:
  MeasurePtr Create() const { return Registry::Global().Create(GetParam()); }
};

TEST_P(KernelDistanceProperty, SelfDistanceIsZero) {
  const MeasurePtr m = Create();
  const auto x = RandomSeries(32, 20);
  EXPECT_NEAR(m->Distance(x, x), 0.0, 1e-9) << m->name();
}

TEST_P(KernelDistanceProperty, NormalizedDistanceIsInUnitRange) {
  // d = 1 - k/sqrt(kk') with k > 0 p.s.d.: normalized similarity lies in
  // (0, 1], so d is in [0, 1).
  const MeasurePtr m = Create();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto a = RandomSeries(28, 30 + seed);
    const auto b = RandomSeries(28, 60 + seed);
    const double d = m->Distance(a, b);
    EXPECT_GE(d, 0.0) << m->name();
    EXPECT_LE(d, 1.0) << m->name();
  }
}

TEST_P(KernelDistanceProperty, SymmetricDistance) {
  const MeasurePtr m = Create();
  const auto a = RandomSeries(20, 40);
  const auto b = RandomSeries(20, 41);
  EXPECT_NEAR(m->Distance(a, b), m->Distance(b, a), 1e-9) << m->name();
}

TEST_P(KernelDistanceProperty, CategoryAndRegistryMetadata) {
  const MeasurePtr m = Create();
  EXPECT_EQ(m->category(), MeasureCategory::kKernel);
  EXPECT_EQ(m->name(), GetParam());
}

TEST_P(KernelDistanceProperty, MoreNoiseMeansMoreDistance) {
  // Distances grow (weakly) with perturbation magnitude from a common base.
  const MeasurePtr m = Create();
  const auto base = RandomSeries(32, 50);
  Rng rng(51);
  std::vector<double> direction(base.size());
  for (auto& v : direction) v = rng.Gaussian();
  double prev = 0.0;
  for (double eps : {0.01, 0.1, 0.5, 1.0}) {
    std::vector<double> noisy = base;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      noisy[i] += eps * direction[i];
    }
    const double d = m->Distance(base, noisy);
    EXPECT_GE(d, prev - 1e-6) << m->name() << " eps " << eps;
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelDistanceProperty,
    ::testing::ValuesIn(KernelMeasureNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(MakeKernelTest, ResolvesAllNamesAndParameters) {
  for (const auto& name : KernelMeasureNames()) {
    const KernelPtr k = MakeKernel(name, {{"gamma", 0.25}});
    ASSERT_NE(k, nullptr) << name;
    EXPECT_EQ(k->name(), name);
    EXPECT_DOUBLE_EQ(k->params().at("gamma"), 0.25);
  }
  EXPECT_EQ(MakeKernel("bogus"), nullptr);
}

TEST(KernelPsdTest, SmallGramMatricesHaveNonNegativeEigenvalues) {
  // Spot-check positive semi-definiteness on a small sample for each kernel
  // (necessary condition; full p.s.d. proofs are in the cited papers).
  for (const auto& name : KernelMeasureNames()) {
    const KernelPtr k = MakeKernel(name);
    std::vector<std::vector<double>> xs;
    for (std::uint64_t s = 0; s < 4; ++s) xs.push_back(RandomSeries(16, 70 + s));
    // Normalized similarities.
    std::vector<double> self(4);
    for (int i = 0; i < 4; ++i) self[i] = k->LogSimilarity(xs[i], xs[i]);
    double gram[4][4];
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        gram[i][j] = std::exp(k->LogSimilarity(xs[i], xs[j]) -
                              0.5 * (self[i] + self[j]));
      }
    }
    // All 2x2 principal minors non-negative (necessary for p.s.d.).
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i == j) continue;
        const double det = gram[i][i] * gram[j][j] - gram[i][j] * gram[j][i];
        EXPECT_GE(det, -1e-9) << name;
      }
    }
  }
}

}  // namespace
}  // namespace tsdist
