// Unit tests for the data substrate: generators, archive, preprocessing,
// and the UCR-format loader.

#include <cmath>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "src/data/archive.h"
#include "src/data/generators.h"
#include "src/data/preprocess.h"
#include "src/data/ucr_loader.h"

namespace tsdist {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.length = 32;
  options.train_per_class = 4;
  options.test_per_class = 3;
  options.seed = 11;
  return options;
}

using DatasetFactory = Dataset (*)(const GeneratorOptions&);

class GeneratorTest
    : public ::testing::TestWithParam<std::pair<const char*, DatasetFactory>> {};

TEST_P(GeneratorTest, ShapeAndLabelsAreConsistent) {
  const auto [name, factory] = GetParam();
  const Dataset d = factory(SmallOptions());
  EXPECT_FALSE(d.name().empty());
  EXPECT_TRUE(d.IsRectangular());
  EXPECT_EQ(d.series_length(), 32u);
  EXPECT_GE(d.num_classes(), 2u);
  // Balanced classes.
  const std::size_t classes = d.num_classes();
  EXPECT_EQ(d.train_size(), 4u * classes);
  EXPECT_EQ(d.test_size(), 3u * classes);
  // Every value finite.
  for (const auto& s : d.train()) {
    for (double v : s.values()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(GeneratorTest, DeterministicGivenSeed) {
  const auto [name, factory] = GetParam();
  const Dataset a = factory(SmallOptions());
  const Dataset b = factory(SmallOptions());
  ASSERT_EQ(a.train_size(), b.train_size());
  for (std::size_t i = 0; i < a.train_size(); ++i) {
    EXPECT_EQ(a.train()[i].label(), b.train()[i].label());
    for (std::size_t t = 0; t < a.series_length(); ++t) {
      EXPECT_DOUBLE_EQ(a.train()[i][t], b.train()[i][t]);
    }
  }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  const auto [name, factory] = GetParam();
  GeneratorOptions other = SmallOptions();
  other.seed = 999;
  const Dataset a = factory(SmallOptions());
  const Dataset b = factory(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train_size() && !any_diff; ++i) {
    for (std::size_t t = 0; t < a.series_length(); ++t) {
      if (a.train()[i][t] != b.train()[i][t]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(
        std::make_pair("cbf", &MakeCbf),
        std::make_pair("gunpoint", &MakeGunPointLike),
        std::make_pair("ecg", &MakeEcgLike),
        std::make_pair("shifted", &MakeShiftedEvents),
        std::make_pair("warped", &MakeWarpedPrototypes),
        std::make_pair("scaled", &MakeScaledPatterns),
        std::make_pair("devices", &MakeSeasonalDevices),
        std::make_pair("outlines", &MakeOutlines),
        std::make_pair("spectro", &MakeSpectroMixtures),
        std::make_pair("chirps", &MakeChirps),
        std::make_pair("twopatterns", &MakeTwoPatterns),
        std::make_pair("randomwalks", &MakeRandomWalks),
        std::make_pair("arprocesses", &MakeArProcesses)),
    [](const ::testing::TestParamInfo<std::pair<const char*, DatasetFactory>>&
           info) { return info.param.first; });

TEST(RandomWalkTest, DriftSeparatesClassEndpoints) {
  GeneratorOptions options = SmallOptions();
  options.length = 200;
  options.noise = 0.0;
  const Dataset d = MakeRandomWalks(options);
  // Class-2 (up-drift) walks end higher than class-0 (down-drift) walks on
  // average.
  double up = 0.0, down = 0.0;
  int n_up = 0, n_down = 0;
  for (const auto& s : d.train()) {
    if (s.label() == 2) {
      up += s[s.size() - 1];
      ++n_up;
    } else if (s.label() == 0) {
      down += s[s.size() - 1];
      ++n_down;
    }
  }
  EXPECT_GT(up / n_up, down / n_down);
}

TEST(ArProcessTest, SmoothnessOrderedByCoefficient) {
  GeneratorOptions options = SmallOptions();
  options.length = 256;
  options.noise = 0.0;
  const Dataset d = MakeArProcesses(options);
  // Mean squared one-step difference shrinks as phi grows.
  double rough[3] = {0.0, 0.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (const auto& s : d.train()) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      const double step = s[i + 1] - s[i];
      acc += step * step;
    }
    rough[s.label()] += acc / static_cast<double>(s.size());
    ++counts[s.label()];
  }
  for (int c = 0; c < 3; ++c) rough[c] /= counts[c];
  EXPECT_GT(rough[0], rough[1]);
  EXPECT_GT(rough[1], rough[2]);
}

TEST(TimeWarpTest, ZeroStrengthIsIdentity) {
  Rng rng(1);
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(data_internal::TimeWarp(v, 0.0, rng), v);
}

TEST(TimeWarpTest, PreservesLengthAndRange) {
  Rng rng(2);
  std::vector<double> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(0.2 * static_cast<double>(i));
  }
  const auto warped = data_internal::TimeWarp(v, 0.3, rng);
  EXPECT_EQ(warped.size(), v.size());
  for (double x : warped) {
    EXPECT_GE(x, -1.0 - 1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
}

TEST(CircularShiftTest, ShiftAndUnshiftRoundTrip) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto shifted = data_internal::CircularShift(v, 2);
  EXPECT_EQ(shifted, (std::vector<double>{4.0, 5.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(data_internal::CircularShift(shifted, -2), v);
}

TEST(ArchiveTest, BuildsThirtyTwoUniquelyNamedDatasets) {
  const auto archive = BuildArchive({ArchiveScale::kTiny, 1, true});
  EXPECT_EQ(archive.size(), 32u);
  std::set<std::string> names;
  for (const auto& d : archive) names.insert(d.name());
  EXPECT_EQ(names.size(), archive.size());
}

TEST(ArchiveTest, ZNormalizedByDefault) {
  const auto archive = BuildArchive({ArchiveScale::kTiny, 1, true});
  for (const auto& d : archive) {
    const auto& s = d.train().front();
    EXPECT_NEAR(s.Mean(), 0.0, 1e-9) << d.name();
    // Std is 1 unless the series was constant.
    EXPECT_NEAR(s.StdDev(), 1.0, 1e-6) << d.name();
  }
}

TEST(ArchiveTest, DeterministicAcrossBuilds) {
  const auto a = BuildArchive({ArchiveScale::kTiny, 42, true});
  const auto b = BuildArchive({ArchiveScale::kTiny, 42, true});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].train_size(), b[i].train_size());
    EXPECT_DOUBLE_EQ(a[i].train()[0][0], b[i].train()[0][0]);
  }
}

TEST(ArchiveTest, ScalePresetsChangeSizes) {
  const auto tiny = BuildArchive({ArchiveScale::kTiny, 1, true});
  const auto small = BuildArchive({ArchiveScale::kSmall, 1, true});
  EXPECT_LT(tiny[0].series_length(), small[0].series_length());
  EXPECT_LT(tiny[0].train_size(), small[0].train_size());
}

TEST(InterpolateMissingTest, MiddleGapIsLinearlyFilled) {
  const double nan = std::nan("");
  const std::vector<double> v = {1.0, nan, nan, 4.0};
  const auto filled = InterpolateMissing(v);
  EXPECT_DOUBLE_EQ(filled[0], 1.0);
  EXPECT_DOUBLE_EQ(filled[1], 2.0);
  EXPECT_DOUBLE_EQ(filled[2], 3.0);
  EXPECT_DOUBLE_EQ(filled[3], 4.0);
}

TEST(InterpolateMissingTest, EdgeGapsTakeNearestValue) {
  const double nan = std::nan("");
  const std::vector<double> v = {nan, 2.0, 3.0, nan};
  const auto filled = InterpolateMissing(v);
  EXPECT_DOUBLE_EQ(filled[0], 2.0);
  EXPECT_DOUBLE_EQ(filled[3], 3.0);
}

TEST(InterpolateMissingTest, AllMissingBecomesZeros) {
  const double nan = std::nan("");
  const std::vector<double> v = {nan, nan};
  const auto filled = InterpolateMissing(v);
  EXPECT_DOUBLE_EQ(filled[0], 0.0);
  EXPECT_DOUBLE_EQ(filled[1], 0.0);
}

TEST(InterpolateMissingTest, NoMissingIsIdentity) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(InterpolateMissing(v), v);
}

TEST(ResampleTest, IdentityWhenLengthsMatch) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(ResampleToLength(v, 3), v);
}

TEST(ResampleTest, UpsamplingInterpolatesLinearly) {
  const std::vector<double> v = {0.0, 2.0};
  const auto up = ResampleToLength(v, 5);
  ASSERT_EQ(up.size(), 5u);
  EXPECT_DOUBLE_EQ(up[0], 0.0);
  EXPECT_DOUBLE_EQ(up[2], 1.0);
  EXPECT_DOUBLE_EQ(up[4], 2.0);
}

TEST(ResampleTest, DownsamplingKeepsEndpoints) {
  const std::vector<double> v = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const auto down = ResampleToLength(v, 3);
  ASSERT_EQ(down.size(), 3u);
  EXPECT_DOUBLE_EQ(down.front(), 0.0);
  EXPECT_DOUBLE_EQ(down.back(), 5.0);
}

TEST(PreprocessDatasetTest, RaggedSeriesBecomeRectangular) {
  std::vector<TimeSeries> train = {TimeSeries({1.0, 2.0, 3.0, 4.0}, 0),
                                   TimeSeries({1.0, 2.0}, 1)};
  const Dataset d("ragged", std::move(train), {});
  const Dataset out = PreprocessDataset(d);
  EXPECT_TRUE(out.IsRectangular());
  EXPECT_EQ(out.series_length(), 4u);
}

TEST(UcrLoaderTest, ParsesTabSeparatedLines) {
  const std::vector<std::string> lines = {"1\t0.5\t0.6\t0.7",
                                          "2\t1.5\t1.6\t1.7"};
  const LoadResult r = ParseUcrLines(lines, "demo");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.dataset.train_size(), 2u);
  EXPECT_EQ(r.dataset.train()[0].label(), 1);
  EXPECT_DOUBLE_EQ(r.dataset.train()[1][2], 1.7);
}

TEST(UcrLoaderTest, ParsesCommaSeparatedAndNaN) {
  const std::vector<std::string> lines = {"0,1.0,NaN,3.0"};
  const LoadResult r = ParseUcrLines(lines, "demo");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isnan(r.dataset.train()[0][1]));
}

TEST(UcrLoaderTest, RejectsMalformedValue) {
  const LoadResult r = ParseUcrLines({"1\tabc"}, "demo");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("malformed"), std::string::npos);
}

TEST(UcrLoaderTest, RejectsEmptyInput) {
  const LoadResult r = ParseUcrLines({}, "demo");
  EXPECT_FALSE(r.ok);
}

TEST(UcrLoaderTest, MissingFileReportsError) {
  const LoadResult r = LoadUcrDataset("/nonexistent", "Nothing");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(UcrLoaderTest, RoundTripThroughFiles) {
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream train(dir + "/Demo_TRAIN.tsv");
    train << "1\t0.1\t0.2\t0.3\n2\t1.1\t1.2\t1.3\n";
    std::ofstream test(dir + "/Demo_TEST.tsv");
    test << "1\t0.4\tNaN\t0.6\n";
  }
  const LoadResult r = LoadUcrDataset(dir, "Demo");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dataset.train_size(), 2u);
  EXPECT_EQ(r.dataset.test_size(), 1u);
  // NaN was interpolated: (0.4 + 0.6) / 2.
  EXPECT_NEAR(r.dataset.test()[0][1], 0.5, 1e-12);
}

}  // namespace
}  // namespace tsdist
