// Unit tests for the OpenMetrics exposition and the embedded telemetry
// server: name mangling, a golden rendering of a hand-built snapshot
// (independently listed bucket bounds), the extended 36-bucket histogram
// range, and a live socket-level scrape of every endpoint.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "src/obs/expo_server.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/openmetrics.h"

namespace tsdist {
namespace {

// The 36 finite bucket bounds (64 << i nanoseconds), listed literally so the
// golden test cannot inherit a bug in Histogram::BucketBound.
const char* const kBounds[] = {
    "64",           "128",          "256",           "512",
    "1024",         "2048",         "4096",          "8192",
    "16384",        "32768",        "65536",         "131072",
    "262144",       "524288",       "1048576",       "2097152",
    "4194304",      "8388608",      "16777216",      "33554432",
    "67108864",     "134217728",    "268435456",     "536870912",
    "1073741824",   "2147483648",   "4294967296",    "8589934592",
    "17179869184",  "34359738368",  "68719476736",   "137438953472",
    "274877906944", "549755813888", "1099511627776", "2199023255552"};

constexpr std::size_t kNumBounds = sizeof(kBounds) / sizeof(kBounds[0]);

// One plain HTTP/1.1 GET against 127.0.0.1:port; returns the raw response
// (status line, headers, body) read to EOF.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(OpenMetricsTest, NameMangling) {
  EXPECT_EQ(obs::OpenMetricsName("tsdist.pool.jobs"), "tsdist_pool_jobs");
  EXPECT_EQ(obs::OpenMetricsName("tsdist.pairwise.row_ns.dtw-cr"),
            "tsdist_pairwise_row_ns_dtw_cr");
  EXPECT_EQ(obs::OpenMetricsName("a:b_c9"), "a:b_c9");
  EXPECT_EQ(obs::OpenMetricsName("0starts.with.digit"),
            "_0starts_with_digit");
  EXPECT_EQ(obs::OpenMetricsName(""), "_");
}

TEST(OpenMetricsTest, GoldenRendering) {
  ASSERT_EQ(kNumBounds, obs::Histogram::kFiniteBuckets);

  obs::MetricsSnapshot snapshot;
  snapshot.counters["tsdist.pool.jobs"] = 42;
  snapshot.gauges["tsdist.proc.peak_rss_bytes"] = 123456789.0;
  snapshot.gauges["tsdist.frac"] = 0.25;
  obs::HistogramSnapshot h;
  h.count = 4;
  h.sum = 700;
  h.min = 10;
  h.max = 80;
  h.bucket_counts.assign(kNumBounds + 1, 0);
  h.bucket_counts[0] = 2;   // two values <= 64 ns
  h.bucket_counts[5] = 1;   // one value <= 2048 ns
  h.bucket_counts.back() = 1;  // one overflow value
  snapshot.histograms["tsdist.eval.cell_ns"] = h;

  std::string expected;
  expected += "# TYPE tsdist_pool_jobs counter\n";
  expected += "tsdist_pool_jobs_total 42\n";
  expected += "# TYPE tsdist_frac gauge\n";
  expected += "tsdist_frac 0.25\n";
  expected += "# TYPE tsdist_proc_peak_rss_bytes gauge\n";
  expected += "tsdist_proc_peak_rss_bytes 123456789\n";
  expected += "# TYPE tsdist_eval_cell_ns histogram\n";
  for (std::size_t i = 0; i < kNumBounds; ++i) {
    expected += "tsdist_eval_cell_ns_bucket{le=\"";
    expected += kBounds[i];
    expected += "\"} ";
    expected += (i < 5) ? "2" : "3";  // cumulative: 2, then +1 at bucket 5
    expected += "\n";
  }
  expected += "tsdist_eval_cell_ns_bucket{le=\"+Inf\"} 4\n";
  expected += "tsdist_eval_cell_ns_sum 700\n";
  expected += "tsdist_eval_cell_ns_count 4\n";
  expected += "# EOF\n";

  EXPECT_EQ(obs::RenderOpenMetrics(snapshot), expected);
}

TEST(OpenMetricsTest, HistogramCoversSecondsToMinutesRange) {
  // 10 s used to land in the overflow bucket (28 finite buckets topped out
  // at ~8.6 s); with 36 buckets it must stay finite: 10e9 ns <= 2^34.
  obs::Histogram histogram;
  histogram.Record(10'000'000'000ull);
  const obs::HistogramSnapshot s = histogram.Snapshot();
  ASSERT_EQ(s.bucket_counts.size(), obs::Histogram::kFiniteBuckets + 1);
  EXPECT_EQ(s.bucket_counts[28], 1u);
  EXPECT_EQ(s.bucket_counts.back(), 0u);
  // The first 28 bounds are the historical ladder (merge-prefix guarantee).
  EXPECT_EQ(obs::Histogram::BucketBound(27), 8589934592ull);  // ~8.6 s
  EXPECT_EQ(obs::Histogram::BucketBound(35), 2199023255552ull);  // ~36.7 min
}

TEST(ExpoServerTest, ServesAllEndpointsOverSockets) {
  obs::MetricsRegistry::Global()
      .GetCounter("tsdist.test.expo_scrapes")
      .Add(3);
  obs::HealthState::Global().SetPhase("expo-test");

  obs::ExpoServer server;
  obs::ExpoServer::Options options;
  options.port = 0;  // ephemeral
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  ASSERT_GT(server.port(), 0);
  server.SetRunInfoJson("{\"probe\": true}\n");

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("tsdist_test_expo_scrapes_total 3"),
            std::string::npos);
  // Sample() runs before rendering, so the RSS gauge is always live.
  EXPECT_NE(metrics.find("tsdist_proc_peak_rss_bytes"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF\n"), std::string::npos);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find("\"tsdist.health.v1\""), std::string::npos);
  EXPECT_NE(health.find("\"expo-test\""), std::string::npos);

  const std::string runinfo = HttpGet(server.port(), "/runinfo");
  EXPECT_NE(runinfo.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(runinfo.find("\"probe\": true"), std::string::npos);

  const std::string logz = HttpGet(server.port(), "/logz");
  EXPECT_NE(logz.find("HTTP/1.1 200"), std::string::npos);

  const std::string index = HttpGet(server.port(), "/");
  EXPECT_NE(index.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(index.find("/metrics"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent and Start can be retried on the same object.
  server.Stop();
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_GT(server.port(), 0);
  const std::string again = HttpGet(server.port(), "/healthz");
  EXPECT_NE(again.find("HTTP/1.1 200"), std::string::npos);
  server.Stop();

  obs::HealthState::Global().SetPhase("idle");
}

TEST(ExpoServerTest, SamplerHookRunsOnScrape) {
  bool sampled = false;
  obs::ExpoServer server;
  obs::ExpoServer::Options options;
  options.port = 0;
  options.sampler = [&sampled] { sampled = true; };
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  (void)HttpGet(server.port(), "/metrics");
  server.Stop();
  EXPECT_TRUE(sampled);
}

}  // namespace
}  // namespace tsdist
