// Unit tests for the dense Matrix type.

#include "src/linalg/matrix.h"

#include <gtest/gtest.h>

namespace tsdist {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 0.0);
    }
  }
}

TEST(MatrixTest, ConstructFromData) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, RowViewIsContiguous) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(MatrixTest, MutableRowWritesThrough) {
  Matrix m(2, 2);
  m.mutable_row(0)[1] = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.Multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoOp) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix i = Matrix::Identity(2);
  EXPECT_TRUE(a.Multiply(i).ApproxEquals(a, 0.0));
  EXPECT_TRUE(i.Multiply(a).ApproxEquals(a, 0.0));
}

TEST(MatrixTest, Transposed) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = a.Transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(MatrixTest, DoubleTransposeIsIdentityOperation) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(a.Transposed().Transposed().ApproxEquals(a, 0.0));
}

TEST(MatrixTest, ApproxEqualsRespectsTolerance) {
  Matrix a(1, 1, {1.0});
  Matrix b(1, 1, {1.0 + 1e-9});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-8));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-10));
}

TEST(MatrixTest, ApproxEqualsRejectsShapeMismatch) {
  EXPECT_FALSE(Matrix(1, 2).ApproxEquals(Matrix(2, 1), 1.0));
}

}  // namespace
}  // namespace tsdist
