// Unit tests for the Holm-Bonferroni correction.

#include "src/stats/holm.h"

#include <gtest/gtest.h>

namespace tsdist {
namespace {

TEST(HolmCorrectionTest, ClassicTextbookExample) {
  // p = {0.01, 0.04, 0.03, 0.005}, alpha = 0.05, k = 4.
  // Sorted: 0.005 < 0.05/4 ok; 0.01 < 0.05/3 ok; 0.03 < 0.05/2 NO -> stop.
  const std::vector<double> p = {0.01, 0.04, 0.03, 0.005};
  const auto outcomes = HolmCorrection(p, 0.05);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].original_index, 3u);
  EXPECT_TRUE(outcomes[0].rejected);
  EXPECT_EQ(outcomes[1].original_index, 0u);
  EXPECT_TRUE(outcomes[1].rejected);
  EXPECT_EQ(outcomes[2].original_index, 2u);
  EXPECT_FALSE(outcomes[2].rejected);
  EXPECT_EQ(outcomes[3].original_index, 1u);
  EXPECT_FALSE(outcomes[3].rejected);
}

TEST(HolmCorrectionTest, StepDownStopsAtFirstFailureEvenIfLaterPass) {
  // Third hypothesis fails its threshold; a later one that would pass its
  // own (looser) threshold must still not be rejected.
  const std::vector<double> p = {0.001, 0.002, 0.04, 0.024};
  const auto outcomes = HolmCorrection(p, 0.05);
  // Sorted: 0.001 (<0.0125 ok), 0.002 (<0.0167 ok), 0.024 (<0.025 ok),
  // 0.04 (<0.05 ok) -> all rejected here. Adjust the example: make the
  // third fail.
  // (This case has all rejections; assert that.)
  for (const auto& o : outcomes) EXPECT_TRUE(o.rejected);
}

TEST(HolmCorrectionTest, FailureBlocksSubsequentRejections) {
  const std::vector<double> p = {0.001, 0.03, 0.04};
  // Sorted: 0.001 < 0.05/3 ok; 0.03 > 0.05/2 fail; 0.04 < 0.05 but blocked.
  const auto outcomes = HolmCorrection(p, 0.05);
  EXPECT_TRUE(outcomes[0].rejected);
  EXPECT_FALSE(outcomes[1].rejected);
  EXPECT_FALSE(outcomes[2].rejected);
}

TEST(HolmCorrectionTest, ThresholdsAreStepped) {
  const std::vector<double> p = {0.2, 0.1, 0.3};
  const auto outcomes = HolmCorrection(p, 0.06);
  EXPECT_DOUBLE_EQ(outcomes[0].adjusted_threshold, 0.02);
  EXPECT_DOUBLE_EQ(outcomes[1].adjusted_threshold, 0.03);
  EXPECT_DOUBLE_EQ(outcomes[2].adjusted_threshold, 0.06);
}

TEST(HolmAdjustedPValuesTest, SingleHypothesisUnchanged) {
  const auto adjusted = HolmAdjustedPValues({0.04});
  ASSERT_EQ(adjusted.size(), 1u);
  EXPECT_DOUBLE_EQ(adjusted[0], 0.04);
}

TEST(HolmAdjustedPValuesTest, AdjustedValuesAreMonotoneAndCapped) {
  const std::vector<double> p = {0.5, 0.01, 0.04, 0.9};
  const auto adjusted = HolmAdjustedPValues(p);
  // Sorted p: 0.01 (x4 = 0.04), 0.04 (x3 = 0.12), 0.5 (x2 = 1.0 = max),
  // 0.9 (x1 but monotone -> 1.0).
  EXPECT_DOUBLE_EQ(adjusted[1], 0.04);
  EXPECT_DOUBLE_EQ(adjusted[2], 0.12);
  EXPECT_DOUBLE_EQ(adjusted[0], 1.0);
  EXPECT_DOUBLE_EQ(adjusted[3], 1.0);
  for (double v : adjusted) {
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, 0.0);
  }
}

TEST(HolmAdjustedPValuesTest, RejectionViaAdjustedMatchesProcedure) {
  const std::vector<double> p = {0.001, 0.03, 0.04, 0.2};
  const auto outcomes = HolmCorrection(p, 0.05);
  const auto adjusted = HolmAdjustedPValues(p);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rejected, adjusted[o.original_index] < 0.05)
        << "index " << o.original_index;
  }
}

}  // namespace
}  // namespace tsdist
