// Unit and integration tests for the 4 embedding measures.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/embedding/grail.h"
#include "src/embedding/representation.h"
#include "src/embedding/rws.h"
#include "src/embedding/sidl.h"
#include "src/embedding/spiral.h"

namespace tsdist {
namespace {

GeneratorOptions TinyOptions() {
  GeneratorOptions options;
  options.length = 48;
  options.train_per_class = 6;
  options.test_per_class = 6;
  options.noise = 0.1;
  options.seed = 13;
  return options;
}

class EmbeddingTest : public ::testing::TestWithParam<std::string> {
 protected:
  RepresentationPtr Create(std::size_t dimension = 16) const {
    return MakeRepresentation(GetParam(), {}, dimension, /*seed=*/5);
  }
};

TEST_P(EmbeddingTest, FactoryResolvesName) {
  const RepresentationPtr rep = Create();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->name(), GetParam());
}

TEST_P(EmbeddingTest, TransformsHaveConsistentDimension) {
  const Dataset data = MakeCbf(TinyOptions());
  RepresentationPtr rep = Create();
  rep->Fit(data.train());
  const std::size_t dim = rep->dimension();
  EXPECT_GT(dim, 0u);
  EXPECT_LE(dim, 16u);
  for (const auto& s : data.test()) {
    EXPECT_EQ(rep->Transform(s).size(), dim);
  }
}

TEST_P(EmbeddingTest, DeterministicGivenSeed) {
  const Dataset data = MakeCbf(TinyOptions());
  RepresentationPtr rep1 = Create();
  RepresentationPtr rep2 = Create();
  rep1->Fit(data.train());
  rep2->Fit(data.train());
  const auto v1 = rep1->Transform(data.test()[0]);
  const auto v2 = rep2->Transform(data.test()[0]);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_DOUBLE_EQ(v1[i], v2[i]);
  }
}

TEST_P(EmbeddingTest, FiniteRepresentations) {
  const Dataset data = MakeCbf(TinyOptions());
  RepresentationPtr rep = Create();
  rep->Fit(data.train());
  for (const auto& s : data.train()) {
    for (double v : rep->Transform(s)) {
      EXPECT_TRUE(std::isfinite(v)) << GetParam();
    }
  }
}

TEST_P(EmbeddingTest, BeatsRandomGuessingOnEasyDataset) {
  // CBF with modest noise: 3 balanced classes, chance = 1/3. Every
  // embedding should be informative enough to clear chance comfortably.
  GeneratorOptions options = TinyOptions();
  options.noise = 0.15;
  const Dataset data = MakeCbf(options);
  RepresentationPtr rep = Create();
  const EmbeddingEvalResult result = EvaluateEmbedding(rep.get(), data);
  EXPECT_GT(result.test_accuracy, 0.45) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllEmbeddings, EmbeddingTest,
                         ::testing::Values("grail", "spiral", "rws", "sidl"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(MakeRepresentationTest, UnknownNameIsNull) {
  EXPECT_EQ(MakeRepresentation("bogus"), nullptr);
}

TEST(GrailTest, DimensionCappedByTrainSize) {
  const Dataset data = MakeCbf(TinyOptions());  // 18 training series
  GrailRepresentation grail(5.0, 100, 3);
  grail.Fit(data.train());
  EXPECT_LE(grail.dimension(), data.train_size());
}

TEST(GrailTest, PreservesSinkNeighborhoodStructure) {
  // Series from the same class should, on average, be closer in GRAIL space
  // than series from different classes.
  const Dataset data = MakeCbf(TinyOptions());
  GrailRepresentation grail(5.0, 16, 3);
  grail.Fit(data.train());
  double same = 0.0, diff = 0.0;
  int n_same = 0, n_diff = 0;
  std::vector<std::vector<double>> reps;
  for (const auto& s : data.train()) reps.push_back(grail.Transform(s));
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = i + 1; j < reps.size(); ++j) {
      double d = 0.0;
      for (std::size_t t = 0; t < reps[i].size(); ++t) {
        const double delta = reps[i][t] - reps[j][t];
        d += delta * delta;
      }
      if (data.train()[i].label() == data.train()[j].label()) {
        same += d;
        ++n_same;
      } else {
        diff += d;
        ++n_diff;
      }
    }
  }
  EXPECT_LT(same / n_same, diff / n_diff);
}

TEST(RwsTest, FitIsDataIndependent) {
  const Dataset data1 = MakeCbf(TinyOptions());
  GeneratorOptions other = TinyOptions();
  other.seed = 99;
  const Dataset data2 = MakeEcgLike(other);
  RwsRepresentation a(1.0, 10, 8, 4);
  RwsRepresentation b(1.0, 10, 8, 4);
  a.Fit(data1.train());
  b.Fit(data2.train());
  // Same seed, same random series -> same transform of the same input.
  const auto v1 = a.Transform(data1.test()[0]);
  const auto v2 = b.Transform(data1.test()[0]);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) EXPECT_DOUBLE_EQ(v1[i], v2[i]);
}

TEST(SidlTest, AtomLengthFollowsFraction) {
  const Dataset data = MakeCbf(TinyOptions());  // length 48
  SidlRepresentation sidl(1.0, 0.25, 8, 4);
  sidl.Fit(data.train());
  // Transform of a series shorter than the atom yields all-zero features.
  const TimeSeries tiny({1.0, 2.0}, 0);
  for (double v : sidl.Transform(tiny)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SidlTest, FeaturesAreShiftInvariant) {
  // Max-pooled activations barely move under a circular shift of the input.
  const Dataset data = MakeCbf(TinyOptions());
  SidlRepresentation sidl(1.0, 0.25, 8, 4);
  sidl.Fit(data.train());
  std::vector<double> x(data.test()[0].values().begin(),
                        data.test()[0].values().end());
  const auto shifted = data_internal::CircularShift(x, 5);
  const auto fx = sidl.Transform(TimeSeries(x, 0));
  const auto fs = sidl.Transform(TimeSeries(shifted, 0));
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < fx.size(); ++i) {
    diff += std::fabs(fx[i] - fs[i]);
    norm += std::fabs(fx[i]);
  }
  EXPECT_LT(diff, 0.5 * norm + 1e-9);
}

}  // namespace
}  // namespace tsdist
