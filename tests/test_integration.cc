// End-to-end integration tests: full pipeline (archive -> dissimilarity
// matrices -> 1-NN -> statistics) on tiny data, asserting the qualitative
// orderings the paper's findings rest on.

#include <gtest/gtest.h>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/data/archive.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"
#include "src/stats/ranking.h"
#include "src/stats/wilcoxon.h"

namespace tsdist {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static GeneratorOptions Options(std::uint64_t seed) {
    GeneratorOptions options;
    options.length = 64;
    options.train_per_class = 10;
    options.test_per_class = 10;
    options.noise = 0.1;
    options.seed = seed;
    return options;
  }

  static double Accuracy(const std::string& measure, const ParamMap& params,
                         const Dataset& data) {
    const PairwiseEngine engine(4);
    return EvaluateFixed(measure, params, data, engine).test_accuracy;
  }
};

TEST_F(IntegrationTest, SlidingBeatsLockStepOnShiftedData) {
  // The M3 regime: identical shapes at random phases. NCCc must dominate ED.
  GeneratorOptions options = Options(1);
  options.max_shift = 20;
  const Dataset raw = MakeShiftedEvents(options);
  const Dataset data = ZScoreNormalizer().Apply(raw);
  const double ed = Accuracy("euclidean", {}, data);
  const double sbd = Accuracy("nccc", {}, data);
  EXPECT_GT(sbd, ed + 0.1) << "ed=" << ed << " sbd=" << sbd;
  EXPECT_GT(sbd, 0.8);
}

TEST_F(IntegrationTest, ElasticBeatsLockStepOnWarpedData) {
  // The M4 regime: locally warped prototypes. DTW must dominate ED.
  GeneratorOptions options = Options(2);
  options.warp = 0.2;
  options.noise = 0.05;
  const Dataset data = ZScoreNormalizer().Apply(MakeWarpedPrototypes(options));
  const double ed = Accuracy("euclidean", {}, data);
  const double dtw = Accuracy("dtw", {{"delta", 20.0}}, data);
  EXPECT_GE(dtw, ed) << "ed=" << ed << " dtw=" << dtw;
  EXPECT_GT(dtw, 0.7);
}

TEST_F(IntegrationTest, NormalizationRescuesScaledData) {
  // The M1 regime: same shapes at wildly different scales. Under z-score the
  // classes separate; on raw values ED is near chance.
  GeneratorOptions options = Options(3);
  options.train_per_class = 5;  // few amplitude-matched in-class neighbours
  const Dataset raw = MakeScaledPatterns(options);
  const Dataset normalized = ZScoreNormalizer().Apply(raw);
  const double ed_raw = Accuracy("euclidean", {}, raw);
  const double ed_norm = Accuracy("euclidean", {}, normalized);
  EXPECT_GT(ed_norm, ed_raw + 0.1)
      << "raw=" << ed_raw << " normalized=" << ed_norm;
  EXPECT_GT(ed_norm, 0.9);
}

TEST_F(IntegrationTest, KernelMeasuresAreCompetitiveOnWarpedData) {
  GeneratorOptions options = Options(4);
  options.warp = 0.15;
  const Dataset data = ZScoreNormalizer().Apply(MakeWarpedPrototypes(options));
  const double ed = Accuracy("euclidean", {}, data);
  const double kdtw = Accuracy("kdtw", {{"gamma", 0.125}}, data);
  EXPECT_GE(kdtw, ed - 0.05) << "ed=" << ed << " kdtw=" << kdtw;
}

TEST_F(IntegrationTest, SupervisedTuningNeverHurtsMuchOnTest) {
  // LOOCV-tuned DTW should be at least close to the fixed default on test.
  GeneratorOptions options = Options(5);
  options.warp = 0.15;
  options.train_per_class = 8;
  options.test_per_class = 6;
  const Dataset data = ZScoreNormalizer().Apply(MakeWarpedPrototypes(options));
  const PairwiseEngine engine(4);
  const EvalResult tuned =
      EvaluateTuned("dtw", ParamGridFor("dtw"), data, engine);
  const EvalResult fixed = EvaluateFixed(
      "dtw", UnsupervisedParamsFor("dtw"), data, engine);
  EXPECT_GE(tuned.test_accuracy, fixed.test_accuracy - 0.15);
  EXPECT_GT(tuned.train_accuracy, 0.5);
}

TEST_F(IntegrationTest, FullStatisticalPipelineOnTinyArchive) {
  // Run three measures over the tiny archive and push the accuracies through
  // the Friedman/Nemenyi machinery — the exact shape of the paper's
  // Figures 2-8.
  const auto archive = BuildArchive({ArchiveScale::kTiny, 7, true});
  const std::vector<std::string> measures = {"euclidean", "lorentzian", "nccc"};
  Matrix accuracies(archive.size(), measures.size());
  const PairwiseEngine engine(4);
  for (std::size_t i = 0; i < archive.size(); ++i) {
    for (std::size_t j = 0; j < measures.size(); ++j) {
      accuracies(i, j) =
          EvaluateFixed(measures[j], {}, archive[i], engine).test_accuracy;
    }
  }
  const CdAnalysis analysis = AnalyzeRanks(accuracies, measures, 0.10);
  ASSERT_EQ(analysis.ranking.size(), 3u);
  EXPECT_GT(analysis.critical_difference, 0.0);
  // All accuracies must be meaningful (above chance on >= 2-class data).
  for (std::size_t i = 0; i < archive.size(); ++i) {
    for (std::size_t j = 0; j < measures.size(); ++j) {
      EXPECT_GE(accuracies(i, j), 0.0);
      EXPECT_LE(accuracies(i, j), 1.0);
    }
  }
  // The diagram renders.
  EXPECT_FALSE(RenderCdDiagram(analysis).empty());
}

TEST_F(IntegrationTest, WilcoxonDetectsConsistentImprovement) {
  // NCCc vs ED across a shift-heavy suite: the improvement must register as
  // significant with the paper's pairwise test.
  std::vector<double> sbd_acc, ed_acc;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GeneratorOptions options = Options(100 + seed);
    options.length = 48;
    options.train_per_class = 6;
    options.test_per_class = 6;
    options.max_shift = 16;
    const Dataset data = ZScoreNormalizer().Apply(MakeShiftedEvents(options));
    sbd_acc.push_back(Accuracy("nccc", {}, data));
    ed_acc.push_back(Accuracy("euclidean", {}, data));
  }
  EXPECT_TRUE(SignificantlyGreater(sbd_acc, ed_acc, 0.05));
}

}  // namespace
}  // namespace tsdist
