// Known-value unit tests for the 7 elastic measures.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/elastic/elastic_all.h"
#include "src/lockstep/minkowski_family.h"
#include "src/lockstep/squared_l2_family.h"

namespace tsdist {
namespace {

const std::vector<double> kA = {1.0, 2.0, 3.0, 4.0};
const std::vector<double> kB = {1.0, 1.0, 2.0, 4.0};

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(DtwDistance().Distance(kA, kA), 0.0);
}

TEST(DtwTest, NeverExceedsSquaredEuclidean) {
  // The diagonal path is always available, so DTW <= lock-step squared ED.
  const double dtw = DtwDistance().Distance(kA, kB);
  const double sqed = SquaredEuclideanDistance().Distance(kA, kB);
  EXPECT_LE(dtw, sqed + 1e-12);
}

TEST(DtwTest, ZeroWindowDegeneratesToSquaredEuclidean) {
  EXPECT_NEAR(DtwDistance(0.0).Distance(kA, kB),
              SquaredEuclideanDistance().Distance(kA, kB), 1e-12);
}

TEST(DtwTest, WarpingAbsorbsLocalStretch) {
  // b is a locally stretched version of a: unconstrained DTW aligns them
  // perfectly, squared ED does not.
  const std::vector<double> a = {0.0, 1.0, 2.0, 3.0, 3.0, 3.0};
  const std::vector<double> b = {0.0, 0.0, 1.0, 2.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(DtwDistance(100.0).Distance(a, b), 0.0);
  EXPECT_GT(SquaredEuclideanDistance().Distance(a, b), 0.0);
}

TEST(DtwTest, WiderWindowNeverIncreasesDistance) {
  const std::vector<double> a = {0.0, 2.0, 1.0, 3.0, 0.0, 1.0, 2.0, 0.0};
  const std::vector<double> b = {1.0, 0.0, 3.0, 1.0, 2.0, 0.0, 0.0, 2.0};
  double prev = DtwDistance(0.0).Distance(a, b);
  for (double delta : {5.0, 10.0, 25.0, 50.0, 100.0}) {
    const double d = DtwDistance(delta).Distance(a, b);
    EXPECT_LE(d, prev + 1e-12) << "delta " << delta;
    prev = d;
  }
}

TEST(DtwTest, KnownHandComputedValue) {
  // a = [0, 1], b = [1, 1]: best path cost is (0-1)^2 + (1-1)^2 = 1.
  const std::vector<double> a = {0.0, 1.0};
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance().Distance(a, b), 1.0);
}

TEST(LcssTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(LcssDistance(10.0, 0.1).Distance(kA, kA), 0.0);
}

TEST(LcssTest, DistanceIsInUnitInterval) {
  const LcssDistance lcss(10.0, 0.2);
  const double d = lcss.Distance(kA, kB);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(LcssTest, HugeEpsilonMatchesEverything) {
  EXPECT_DOUBLE_EQ(LcssDistance(100.0, 1000.0).Distance(kA, kB), 0.0);
}

TEST(LcssTest, TinyEpsilonMatchesNothingDissimilar) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {5.0, 6.0, 7.0};
  EXPECT_DOUBLE_EQ(LcssDistance(100.0, 1e-6).Distance(a, b), 1.0);
}

TEST(EdrTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(EdrDistance(0.1).Distance(kA, kA), 0.0);
}

TEST(EdrTest, CompletelyDifferentSeriesCostFullSubstitution) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {9.0, 9.0, 9.0};
  EXPECT_DOUBLE_EQ(EdrDistance(0.1).Distance(a, b), 3.0);
}

TEST(EdrTest, ToleranceControlsMatching) {
  const std::vector<double> a = {0.0, 0.5, 1.0};
  const std::vector<double> b = {0.05, 0.55, 1.05};
  EXPECT_DOUBLE_EQ(EdrDistance(0.1).Distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(EdrDistance(0.01).Distance(a, b), 3.0);
}

TEST(ErpTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(ErpDistance().Distance(kA, kA), 0.0);
}

TEST(ErpTest, NeverExceedsManhattan) {
  // The diagonal (no-gap) path costs exactly L1.
  EXPECT_LE(ErpDistance().Distance(kA, kB),
            ManhattanDistance().Distance(kA, kB) + 1e-12);
}

TEST(ErpTest, GapCostsDistanceToReference) {
  // Aligning [5] against [5, 5] (unequal content, equal length padded) —
  // use equal lengths: a = [5, 0], b = [5, 5]: matching 5-5 then 0-5 costs
  // 5; gapping instead costs |0 - g| + |5 - g| = 10 with g = 0; ERP picks 5.
  const std::vector<double> a = {5.0, 0.0};
  const std::vector<double> b = {5.0, 5.0};
  EXPECT_DOUBLE_EQ(ErpDistance(0.0).Distance(a, b), 5.0);
}

TEST(MsmTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(MsmDistance(0.5).Distance(kA, kA), 0.0);
}

TEST(MsmTest, SingleSubstitutionCost) {
  // Different only at one point, difference 1: move operation costs 1.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(MsmDistance(0.5).Distance(a, b), 1.0);
}

TEST(MsmTest, DistanceIsMonotoneInSplitMergeCost) {
  // Raising c can only make alignments costlier.
  const std::vector<double> a = {0.0, 3.0, 1.0, 4.0, 1.0, 5.0};
  const std::vector<double> b = {0.0, 0.0, 3.0, 1.0, 4.0, 1.0};
  double prev = MsmDistance(0.01).Distance(a, b);
  for (double c : {0.1, 0.5, 1.0, 10.0, 100.0}) {
    const double d = MsmDistance(c).Distance(a, b);
    EXPECT_GE(d, prev - 1e-12) << "c " << c;
    prev = d;
  }
}

TEST(MsmTest, SplitMergeUsedWhenCheaperThanMoves) {
  // a holds its peak one step longer than b: with tiny c a merge absorbs
  // the repeated 5 far below the pure-substitution cost.
  const std::vector<double> a = {0.0, 5.0, 5.0, 0.0};
  const std::vector<double> b = {0.0, 5.0, 0.0, 0.0};
  const double small_c = MsmDistance(0.01).Distance(a, b);
  EXPECT_LE(small_c, 0.5);  // split path: ~c, not |0-5|
  const double large_c = MsmDistance(100.0).Distance(a, b);
  EXPECT_DOUBLE_EQ(large_c, 5.0);  // move path: substitute 0 -> 5
}

TEST(TweTest, IdenticalSeriesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(TweDistance(1.0, 1e-4).Distance(kA, kA), 0.0);
}

TEST(TweTest, StiffnessPenalizesWarping) {
  // Higher nu makes off-diagonal matches costlier, never cheaper.
  const std::vector<double> a = {0.0, 1.0, 2.0, 3.0, 2.0, 1.0};
  const std::vector<double> b = {0.0, 0.0, 1.0, 2.0, 3.0, 2.0};
  const double loose = TweDistance(0.0, 1e-5).Distance(a, b);
  const double stiff = TweDistance(0.0, 1.0).Distance(a, b);
  EXPECT_LE(loose, stiff + 1e-12);
}

TEST(TweTest, LambdaPenalizesDeletions) {
  const std::vector<double> a = {0.0, 5.0, 0.0, 0.0};
  const std::vector<double> b = {0.0, 0.0, 5.0, 0.0};
  const double cheap_gaps = TweDistance(0.0, 1e-5).Distance(a, b);
  const double dear_gaps = TweDistance(1.0, 1e-5).Distance(a, b);
  EXPECT_LE(cheap_gaps, dear_gaps + 1e-12);
}

TEST(SwaleTest, IdenticalSeriesEarnFullReward) {
  // Every point matches: score = m * r, distance = -m * r.
  const SwaleDistance swale(0.1, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(swale.Distance(kA, kA), -4.0);
}

TEST(SwaleTest, MismatchesArePenalized) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {9.0, 9.0, 9.0};
  const SwaleDistance swale(0.1, 5.0, 1.0);
  EXPECT_GT(swale.Distance(a, b), 0.0);  // negative score -> positive distance
}

TEST(SwaleTest, RewardScalesScore) {
  const SwaleDistance r1(0.1, 5.0, 1.0);
  const SwaleDistance r2(0.1, 5.0, 2.0);
  EXPECT_DOUBLE_EQ(r2.Distance(kA, kA), 2.0 * r1.Distance(kA, kA));
}

TEST(ElasticInventoryTest, SevenMeasuresRegistered) {
  EXPECT_EQ(ElasticMeasureNames().size(), 7u);
  for (const auto& name : ElasticMeasureNames()) {
    const auto m = Registry::Global().Create(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->category(), MeasureCategory::kElastic);
    EXPECT_EQ(m->cost_class(), CostClass::kQuadratic);
  }
}

TEST(ElasticRegistryTest, ParamsArePluggedThrough) {
  const auto dtw = Registry::Global().Create("dtw", {{"delta", 7.0}});
  EXPECT_DOUBLE_EQ(dtw->params().at("delta"), 7.0);
  const auto twe = Registry::Global().Create(
      "twe", {{"lambda", 0.25}, {"nu", 0.01}});
  EXPECT_DOUBLE_EQ(twe->params().at("lambda"), 0.25);
  EXPECT_DOUBLE_EQ(twe->params().at("nu"), 0.01);
}

}  // namespace
}  // namespace tsdist
