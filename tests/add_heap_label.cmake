# Appends the `obs` and `heap` labels to every test discovered from the
# heap-profiler binary (test_heap_profiler), so CI can run the allocator-
# wrapper suite alone (ctest -L heap / the `heap` test preset). Same
# TEST_INCLUDE_FILES technique as add_obs_label.cmake (which see): the full
# label list is substituted at configure time (@TSDIST_TEST_LABELS@), and
# this script is registered after the sanitize one, so it wins for this
# binary. The glob is disjoint from the other label scripts' globs, so
# relative ordering among them does not matter.
file(GLOB _tsdist_heap_files
     "${CMAKE_CURRENT_LIST_DIR}/test_heap_profiler*_tests.cmake")
foreach(_file IN LISTS _tsdist_heap_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;obs;heap")
    endif()
  endforeach()
endforeach()
unset(_tsdist_heap_files)
unset(_add_test_lines)
