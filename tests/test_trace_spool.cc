// Unit tests for the crash-durable span spool (src/obs/trace_spool.*): the
// tsdist.tracespool.v1 wire format, the valid-prefix torn-tail reader (a
// SIGKILL mid-append must never cost more than the torn final line), spool
// rotation for restarted worker ids, and the recorder drain semantics the
// flusher is built on.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/obs.h"
#include "src/obs/trace_spool.h"

namespace tsdist {
namespace {

namespace fs = std::filesystem;
using obs::ReadTraceSpool;
using obs::TraceArg;
using obs::TraceContext;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceRunIdFromBytes;
using obs::TraceSpool;
using obs::TraceSpoolContents;
using obs::TraceSpoolEventLine;
using obs::TraceSpoolHeaderLine;
using obs::TraceSpoolOptions;
using obs::WallAnchor;

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Only the spool-writer tests (compiled out under TSDIST_OBS_NOOP) read
// files back.
[[maybe_unused]] std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class TraceSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("trace_spool_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceSpool::Global().Stop();
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetContext(TraceContext{});
    fs::remove_all(dir_);
  }
  std::string Dir(const std::string& sub = "") const {
    return sub.empty() ? dir_.string() : (dir_ / sub).string();
  }

  fs::path dir_;
};

// ------------------------------------------------------------------ run id

TEST_F(TraceSpoolTest, RunIdMatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64-bit test vectors: the run id must stay stable
  // across builds because it is the key trace_merge groups a fleet by.
  EXPECT_EQ(TraceRunIdFromBytes(""), "cbf29ce484222325");
  EXPECT_EQ(TraceRunIdFromBytes("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(TraceRunIdFromBytes("foobar"), "85944171f73967e8");
  // Deterministic, and sensitive to every byte.
  EXPECT_EQ(TraceRunIdFromBytes("plan"), TraceRunIdFromBytes("plan"));
  EXPECT_NE(TraceRunIdFromBytes("plan"), TraceRunIdFromBytes("plam"));
  EXPECT_EQ(TraceRunIdFromBytes("plan").size(), 16u);
}

// ------------------------------------------------------------- wire format

TraceContext TestContext() {
  TraceContext context;
  context.run_id = "f00dfeedbeefcafe";
  context.role = "worker";
  context.worker_id = "w\"1";  // the quote must be escaped in the header
  context.epoch = 3;
  return context;
}

TEST_F(TraceSpoolTest, HeaderLineRoundTripsThroughReader) {
  WallAnchor anchor;
  anchor.wall_us = 1718000000000000ull;
  anchor.mono_ns = 42;
  const std::string header = TraceSpoolHeaderLine(TestContext(), anchor, 777);
  ASSERT_FALSE(header.empty());
  EXPECT_EQ(header.back(), '\n');

  const std::string path = Dir("header.trace.jsonl");
  WriteFile(path, header);
  TraceSpoolContents contents;
  std::string error;
  ASSERT_TRUE(ReadTraceSpool(path, &contents, &error)) << error;
  EXPECT_EQ(contents.header.run_id, "f00dfeedbeefcafe");
  EXPECT_EQ(contents.header.role, "worker");
  EXPECT_EQ(contents.header.worker, "w\"1");
  EXPECT_EQ(contents.header.pid, 777u);
  EXPECT_EQ(contents.header.anchor_wall_us, 1718000000000000ull);
  EXPECT_TRUE(contents.events.empty());
  EXPECT_EQ(contents.valid_lines, 1u);
  EXPECT_EQ(contents.torn_lines, 0u);
}

TEST_F(TraceSpoolTest, EventLineRendersInstantMarkerAndArgs) {
  TraceEvent event;
  event.name = "shard.claim";
  event.category = "shard";
  event.ts_ns = 1234567;
  event.dur_ns = 0;
  event.tid = 2;
  event.id = 9;
  event.parent = 4;
  event.instant = true;
  event.args = {{"worker", "w\"1", true},
                {"shard", "3", false},
                {"stolen", "true", false}};
  const std::string line = TraceSpoolEventLine(event);
  EXPECT_NE(line.find("\"ph\": \"i\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"worker\": \"w\\\"1\""), std::string::npos) << line;
  // Non-string args are raw JSON literals, never quoted.
  EXPECT_NE(line.find("\"shard\": 3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stolen\": true"), std::string::npos) << line;

  TraceEvent complete = event;
  complete.instant = false;
  complete.dur_ns = 500;
  complete.args.clear();
  const std::string span_line = TraceSpoolEventLine(complete);
  EXPECT_EQ(span_line.find("\"ph\""), std::string::npos) << span_line;
  EXPECT_EQ(span_line.find("\"args\""), std::string::npos) << span_line;
}

TEST_F(TraceSpoolTest, SpoolRoundTripsEventsThroughReader) {
  WallAnchor anchor;
  anchor.wall_us = 1000000;
  std::string data = TraceSpoolHeaderLine(TestContext(), anchor, 1);

  std::vector<TraceEvent> events(3);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].name = "shard.cell/Coffee/euclidean";
    events[i].category = "shard";
    events[i].ts_ns = 1000 * (i + 1);
    events[i].dur_ns = 500 + i;
    events[i].tid = 1;
    events[i].id = static_cast<std::int64_t>(i + 1);
    events[i].parent = -1;
    events[i].args = {{"dataset", "Coffee", true}, {"shard", "3", false}};
    data += TraceSpoolEventLine(events[i]);
  }
  const std::string path = Dir("roundtrip.trace.jsonl");
  WriteFile(path, data);

  TraceSpoolContents contents;
  std::string error;
  ASSERT_TRUE(ReadTraceSpool(path, &contents, &error)) << error;
  ASSERT_EQ(contents.events.size(), events.size());
  EXPECT_EQ(contents.valid_lines, events.size() + 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(contents.events[i].name, events[i].name);
    EXPECT_EQ(contents.events[i].ts_ns, events[i].ts_ns);
    EXPECT_EQ(contents.events[i].dur_ns, events[i].dur_ns);
    EXPECT_EQ(contents.events[i].parent, -1);
    EXPECT_FALSE(contents.events[i].instant);
    ASSERT_EQ(contents.events[i].args.size(), 2u);
    EXPECT_EQ(contents.events[i].args[0].key, "dataset");
    EXPECT_EQ(contents.events[i].args[0].value, "Coffee");
    EXPECT_TRUE(contents.events[i].args[0].is_string);
    EXPECT_EQ(contents.events[i].args[1].value, "3");
    EXPECT_FALSE(contents.events[i].args[1].is_string);
  }
}

TEST_F(TraceSpoolTest, ReaderRejectsFilesWithoutAValidHeader) {
  TraceSpoolContents contents;
  std::string error;
  EXPECT_FALSE(ReadTraceSpool(Dir("missing.trace.jsonl"), &contents, &error));

  const std::string empty = Dir("empty.trace.jsonl");
  WriteFile(empty, "");
  EXPECT_FALSE(ReadTraceSpool(empty, &contents, &error));

  const std::string garbage = Dir("garbage.trace.jsonl");
  WriteFile(garbage, "not json at all\n");
  EXPECT_FALSE(ReadTraceSpool(garbage, &contents, &error));

  // A header torn before its newline was durable is no header at all.
  WallAnchor anchor;
  anchor.wall_us = 1;
  std::string header = TraceSpoolHeaderLine(TestContext(), anchor, 1);
  header.pop_back();
  const std::string torn = Dir("torn_header.trace.jsonl");
  WriteFile(torn, header);
  EXPECT_FALSE(ReadTraceSpool(torn, &contents, &error));
}

// The acceptance property of crash durability: truncate the spool at EVERY
// byte offset (any of which a SIGKILL mid-append can produce) and the
// reader must recover exactly the complete lines before the cut, counting
// the remainder as torn — never erroring once the header is durable.
TEST_F(TraceSpoolTest, TornTailRecoversValidPrefixAtEveryByteOffset) {
  WallAnchor anchor;
  anchor.wall_us = 1000000;
  const std::string header = TraceSpoolHeaderLine(TestContext(), anchor, 1);
  std::vector<std::string> lines = {header};
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.name = "shard.cell/Coffee/sbd";
    event.category = "shard";
    event.ts_ns = static_cast<std::uint64_t>(1000 + i);
    event.dur_ns = 77;
    event.tid = 1;
    event.id = i + 1;
    event.parent = -1;
    event.args = {{"shard", std::to_string(i), false}};
    lines.push_back(TraceSpoolEventLine(event));
  }
  std::string full;
  for (const std::string& line : lines) full += line;

  const std::string path = Dir("cut.trace.jsonl");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    TraceSpoolContents contents;
    std::string error;
    const bool ok = ReadTraceSpool(path, &contents, &error);

    // How many whole lines (newline included) fit under the cut?
    std::size_t whole = 0, consumed = 0;
    while (whole < lines.size() &&
           consumed + lines[whole].size() <= cut) {
      consumed += lines[whole].size();
      ++whole;
    }
    if (whole == 0) {
      EXPECT_FALSE(ok) << "cut=" << cut
                       << ": a torn header must not read as a spool";
      continue;
    }
    ASSERT_TRUE(ok) << "cut=" << cut << ": " << error;
    EXPECT_EQ(contents.events.size(), whole - 1) << "cut=" << cut;
    EXPECT_EQ(contents.valid_lines, whole) << "cut=" << cut;
    const std::size_t tail = cut - consumed;
    EXPECT_EQ(contents.torn_bytes, tail) << "cut=" << cut;
    EXPECT_EQ(contents.torn_lines, tail > 0 ? 1u : 0u) << "cut=" << cut;
  }
}

TEST_F(TraceSpoolTest, ReaderStopsAtFirstUnparseableLine) {
  WallAnchor anchor;
  anchor.wall_us = 1;
  TraceEvent event;
  event.name = "a";
  event.ts_ns = 1;
  std::string data = TraceSpoolHeaderLine(TestContext(), anchor, 1) +
                     TraceSpoolEventLine(event) +
                     "{\"name\": \"half-writ\n" +  // torn mid-line
                     TraceSpoolEventLine(event);   // lost to the tail
  const std::string path = Dir("midtear.trace.jsonl");
  WriteFile(path, data);
  TraceSpoolContents contents;
  std::string error;
  ASSERT_TRUE(ReadTraceSpool(path, &contents, &error)) << error;
  EXPECT_EQ(contents.events.size(), 1u);
  EXPECT_EQ(contents.torn_lines, 2u);
}

// ------------------------------------------------------------ live spooling

#if !defined(TSDIST_OBS_NOOP)

TEST_F(TraceSpoolTest, StartSpoolsRecordedSpansDurably) {
  auto& recorder = TraceRecorder::Global();
  recorder.SetContext(TestContext());

  TraceSpoolOptions options;
  options.dir = Dir("trace");
  options.proc = "w1";
  options.flush_interval_ms = 10;
  std::string error;
  ASSERT_TRUE(TraceSpool::Global().Start(options, &error)) << error;
  EXPECT_TRUE(recorder.enabled()) << "Start must enable tracing";

  {
    obs::TraceSpan span("shard.cell/Coffee/euclidean", "shard");
    span.Arg("dataset", "Coffee");
  }
  recorder.Instant("shard.claim", "shard", {{"shard", "3", false}});
  TraceSpool::Global().Stop();

  const TraceSpool::Status status = TraceSpool::Global().status();
  EXPECT_FALSE(status.active);
  EXPECT_GE(status.spans_spooled, 2u);
  EXPECT_EQ(status.errors, 0u);

  TraceSpoolContents contents;
  ASSERT_TRUE(ReadTraceSpool(Dir("trace/w1.trace.jsonl"), &contents, &error))
      << error;
  EXPECT_EQ(contents.header.run_id, "f00dfeedbeefcafe");
  EXPECT_EQ(contents.header.worker, "w\"1");
  EXPECT_GT(contents.header.anchor_wall_us, 0u);
  ASSERT_GE(contents.events.size(), 2u);
  bool saw_span = false, saw_instant = false;
  for (const TraceEvent& event : contents.events) {
    if (event.name == "shard.cell/Coffee/euclidean" && !event.instant) {
      saw_span = true;
    }
    if (event.name == "shard.claim" && event.instant) saw_instant = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  // The flusher drained the recorder: nothing left for the in-memory export.
  EXPECT_TRUE(recorder.Events().empty());
}

TEST_F(TraceSpoolTest, StartRotatesAnExistingSpoolAside) {
  TraceSpoolOptions options;
  options.dir = Dir("trace");
  options.proc = "w1";
  std::string error;

  // A previous incarnation's spool: rotation must preserve its bytes (a
  // fenced zombie may still hold the descriptor, so never truncate).
  fs::create_directories(options.dir);
  const std::string old_path = Dir("trace/w1.trace.jsonl");
  WriteFile(old_path, "previous incarnation\n");

  ASSERT_TRUE(TraceSpool::Global().Start(options, &error)) << error;
  TraceSpool::Global().Stop();
  EXPECT_EQ(ReadFile(Dir("trace/w1.r001.trace.jsonl")),
            "previous incarnation\n");
  // The fresh spool replaced it under the canonical name.
  TraceSpoolContents contents;
  ASSERT_TRUE(ReadTraceSpool(old_path, &contents, &error)) << error;

  // A second restart rotates to the next free slot.
  ASSERT_TRUE(TraceSpool::Global().Start(options, &error)) << error;
  TraceSpool::Global().Stop();
  EXPECT_TRUE(fs::exists(Dir("trace/w1.r002.trace.jsonl")));
}

TEST_F(TraceSpoolTest, StartRejectsBadProcNames) {
  TraceSpoolOptions options;
  options.dir = Dir("trace");
  std::string error;
  options.proc = "";
  EXPECT_FALSE(TraceSpool::Global().Start(options, &error));
  options.proc = "w/1";
  error.clear();
  EXPECT_FALSE(TraceSpool::Global().Start(options, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(TraceSpoolTest, DrainEventsMovesSpansAndRearmsTheCap) {
  auto& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  { obs::TraceSpan a("a"); }
  { obs::TraceSpan b("b"); }
  EXPECT_EQ(recorder.recorded_spans(), 2u);

  const std::vector<TraceEvent> drained = recorder.DrainEvents();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].name, "a");
  EXPECT_EQ(drained[1].name, "b");
  EXPECT_EQ(recorder.recorded_spans(), 0u);
  EXPECT_TRUE(recorder.Events().empty());

  // The cap is re-armed: spans recorded after a drain are kept.
  { obs::TraceSpan c("c"); }
  recorder.SetEnabled(false);
  const std::vector<TraceEvent> after = recorder.DrainEvents();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].name, "c");
}

#else  // TSDIST_OBS_NOOP

TEST_F(TraceSpoolTest, StartRefusesUnderObsNoop) {
  TraceSpoolOptions options;
  options.dir = Dir("trace");
  options.proc = "w1";
  std::string error;
  EXPECT_FALSE(TraceSpool::Global().Start(options, &error));
  EXPECT_NE(error.find("compiled out"), std::string::npos) << error;
}

#endif  // TSDIST_OBS_NOOP

}  // namespace
}  // namespace tsdist
