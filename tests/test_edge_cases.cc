// Failure-injection / degenerate-input sweeps across the whole measure
// inventory: constant series, single points, extreme magnitudes, and long
// inputs must never produce NaN/Inf or crash. These are the inputs real
// archives contain (the UCR archive famously has constant-valued series).

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/elastic/dtw.h"
#include "src/elastic/lower_bounds.h"
#include "src/linalg/rng.h"
#include "src/normalization/normalization.h"

namespace tsdist {
namespace {

class AllMeasuresEdgeCases : public ::testing::TestWithParam<std::string> {
 protected:
  MeasurePtr Create() const { return Registry::Global().Create(GetParam()); }
};

TEST_P(AllMeasuresEdgeCases, ConstantSeriesPair) {
  const MeasurePtr m = Create();
  const std::vector<double> a(32, 1.5);
  const std::vector<double> b(32, -2.0);
  EXPECT_TRUE(std::isfinite(m->Distance(a, b))) << m->name();
  EXPECT_TRUE(std::isfinite(m->Distance(a, a))) << m->name();
}

TEST_P(AllMeasuresEdgeCases, AllZeroSeries) {
  const MeasurePtr m = Create();
  const std::vector<double> zeros(16, 0.0);
  const std::vector<double> other = {1, -1, 2, -2, 3, -3, 4, -4,
                                     1, -1, 2, -2, 3, -3, 4, -4};
  EXPECT_TRUE(std::isfinite(m->Distance(zeros, other))) << m->name();
  EXPECT_TRUE(std::isfinite(m->Distance(zeros, zeros))) << m->name();
}

TEST_P(AllMeasuresEdgeCases, SinglePointSeries) {
  const MeasurePtr m = Create();
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {-2.0};
  EXPECT_TRUE(std::isfinite(m->Distance(a, b))) << m->name();
}

TEST_P(AllMeasuresEdgeCases, ExtremeMagnitudes) {
  const MeasurePtr m = Create();
  const std::vector<double> huge(8, 1e12);
  const std::vector<double> tiny(8, 1e-12);
  EXPECT_FALSE(std::isnan(m->Distance(huge, tiny))) << m->name();
  EXPECT_FALSE(std::isnan(m->Distance(tiny, huge))) << m->name();
}

TEST_P(AllMeasuresEdgeCases, AlternatingSignSpikes) {
  const MeasurePtr m = Create();
  std::vector<double> spiky(24);
  for (std::size_t i = 0; i < spiky.size(); ++i) {
    spiky[i] = (i % 2 == 0) ? 1e6 : -1e6;
  }
  const std::vector<double> flat(24, 0.1);
  EXPECT_FALSE(std::isnan(m->Distance(spiky, flat))) << m->name();
}

TEST_P(AllMeasuresEdgeCases, ModeratelyLongSeries) {
  // Long inputs stress the underflow handling of the alignment kernels and
  // the FFT path of the sliding measures.
  const MeasurePtr m = Create();
  Rng rng(1);
  std::vector<double> a(600), b(600);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  const double d = m->Distance(a, b);
  EXPECT_TRUE(std::isfinite(d)) << m->name();
}

INSTANTIATE_TEST_SUITE_P(
    Inventory, AllMeasuresEdgeCases,
    ::testing::ValuesIn(Registry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(PrunedSearchEdgeCases, EmptyCandidatesThrowInsteadOfUndefinedBehaviour) {
  // Pre-fix these were assert-only: release builds sailed into UB on an
  // empty training split.
  const std::vector<double> query = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(PrunedOneNn(query, {}, {}, 10.0), std::invalid_argument);
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  EXPECT_THROW(engine.NearestNeighborRow(TimeSeries({1.0, 2.0}, 0),
                                         std::vector<TimeSeries>{}, dtw),
               std::invalid_argument);
}

TEST(PrunedSearchEdgeCases, EngineRejectsRaggedCollections) {
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  const std::vector<TimeSeries> ragged = {TimeSeries({1.0, 2.0, 3.0}, 0),
                                          TimeSeries({1.0, 2.0}, 1)};
  EXPECT_THROW(engine.ComputeSelf(ragged, dtw), std::invalid_argument);
  EXPECT_THROW(engine.LeaveOneOutNeighborsPruned(ragged, dtw),
               std::invalid_argument);
}

TEST(NormalizerEdgeCases, ConstantAndEmptyInputs) {
  for (const auto& name : PerSeriesNormalizerNames()) {
    const NormalizerPtr n = MakeNormalizer(name);
    const std::vector<double> constant(8, 42.0);
    for (double v : n->Apply(std::span<const double>(constant))) {
      EXPECT_TRUE(std::isfinite(v)) << name;
    }
    const std::vector<double> empty;
    EXPECT_TRUE(n->Apply(std::span<const double>(empty)).empty()) << name;
  }
}

TEST(NormalizerEdgeCases, ExtremeValuesStayFinite) {
  for (const auto& name : PerSeriesNormalizerNames()) {
    const NormalizerPtr n = MakeNormalizer(name);
    const std::vector<double> extreme = {1e300, -1e300, 0.0, 1e-300};
    for (double v : n->Apply(std::span<const double>(extreme))) {
      EXPECT_FALSE(std::isnan(v)) << name;
    }
  }
}

}  // namespace
}  // namespace tsdist
