// Bit-identity and correctness properties of the SIMD lock-step kernels
// (src/simd/lockstep_kernels.h), plus regression tests for the three scalar
// bugs the kernel rebuild fixed:
//  1. MinkowskiDistance accepted p <= 0 in release builds (assert only);
//  2. Euclidean/Minkowski early abandoning re-applied sqrt/pow per block
//     instead of transforming the cutoff once;
//  3. Chebyshev's comparison-select max silently dropped NaN terms.
//
// The headline property: every kernel returns BIT-identical doubles across
// scalar / AVX2 / AVX-512 dispatch levels, for every length (straddling the
// 8-lane block and 16-element abandon boundaries) and for adversarial data
// classes (denormals, +/-inf, NaN), because all levels share one
// accumulation order. Prediction-level identity is asserted on two synthetic
// archives through the pruned 1-NN path.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/data/archive.h"
#include "src/linalg/rng.h"
#include "src/lockstep/lockstep_all.h"
#include "src/simd/aligned.h"
#include "src/simd/dispatch.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQNaN = std::numeric_limits<double>::quiet_NaN();

// Bit-level equality: NaN == NaN (same payload), +0 != -0.
bool BitEqual(double x, double y) {
  std::uint64_t bx, by;
  std::memcpy(&bx, &x, sizeof(bx));
  std::memcpy(&by, &y, sizeof(by));
  return bx == by;
}

std::vector<simd::SimdLevel> SupportedLevels() {
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  if (simd::SimdLevelSupported(simd::SimdLevel::kAvx2)) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }
  if (simd::SimdLevelSupported(simd::SimdLevel::kAvx512)) {
    levels.push_back(simd::SimdLevel::kAvx512);
  }
  return levels;
}

// Lengths straddling the 8-lane block boundary, the 16-element abandon
// cadence, and cache-line multiples.
const std::vector<std::size_t> kLengths = {0,  1,  2,  3,   7,   8,   9,
                                           15, 16, 17, 31,  32,  33,  63,
                                           64, 65, 100, 127, 128, 129, 255,
                                           256, 257};

enum class DataClass {
  kGaussian,
  kTinyMagnitudes,  // denormal-scale values
  kWithInfs,
  kWithNaNs,
  kMixedExtremes,  // infs and NaNs and signed zeros together
};

std::vector<double> MakeSeries(DataClass cls, std::size_t m,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(m);
  for (std::size_t i = 0; i < m; ++i) v[i] = rng.Gaussian();
  switch (cls) {
    case DataClass::kGaussian:
      break;
    case DataClass::kTinyMagnitudes:
      for (double& x : v) x *= 1e-310;  // below DBL_MIN: denormal range
      break;
    case DataClass::kWithInfs:
      for (std::size_t i = 0; i < m; i += 7) v[i] = (i % 14 == 0) ? kInf : -kInf;
      break;
    case DataClass::kWithNaNs:
      for (std::size_t i = 2; i < m; i += 11) v[i] = kQNaN;
      break;
    case DataClass::kMixedExtremes:
      for (std::size_t i = 0; i < m; ++i) {
        if (i % 13 == 3) v[i] = kInf;
        if (i % 13 == 7) v[i] = kQNaN;
        if (i % 13 == 9) v[i] = -0.0;
        if (i % 13 == 11) v[i] = 0.0;
      }
      break;
  }
  return v;
}

const std::vector<DataClass> kDataClasses = {
    DataClass::kGaussian, DataClass::kTinyMagnitudes, DataClass::kWithInfs,
    DataClass::kWithNaNs, DataClass::kMixedExtremes};

struct NamedPairKernel {
  const char* name;
  simd::PairKernel simd::KernelTable::* slot;
};

const std::vector<NamedPairKernel> kPairKernels = {
    {"sum_sq", &simd::KernelTable::sum_sq},
    {"sum_abs", &simd::KernelTable::sum_abs},
    {"max_abs", &simd::KernelTable::max_abs},
    {"sum_pearson", &simd::KernelTable::sum_pearson},
    {"sum_neyman", &simd::KernelTable::sum_neyman},
    {"sum_sqchi", &simd::KernelTable::sum_sqchi},
    {"sum_divergence", &simd::KernelTable::sum_divergence},
    {"sum_clark", &simd::KernelTable::sum_clark},
    {"sum_addsym", &simd::KernelTable::sum_addsym},
};

struct NamedEaKernel {
  const char* name;
  simd::PairEaKernel simd::KernelTable::* ea_slot;
  simd::PairKernel simd::KernelTable::* plain_slot;
};

const std::vector<NamedEaKernel> kEaKernels = {
    {"sum_sq_ea", &simd::KernelTable::sum_sq_ea, &simd::KernelTable::sum_sq},
    {"sum_abs_ea", &simd::KernelTable::sum_abs_ea,
     &simd::KernelTable::sum_abs},
    {"max_abs_ea", &simd::KernelTable::max_abs_ea,
     &simd::KernelTable::max_abs},
    {"sum_divergence_ea", &simd::KernelTable::sum_divergence_ea,
     &simd::KernelTable::sum_divergence},
    {"sum_clark_ea", &simd::KernelTable::sum_clark_ea,
     &simd::KernelTable::sum_clark},
};

// --- Cross-level bit-identity ----------------------------------------------

TEST(SimdKernelBitIdentity, PairKernelsMatchScalarForAllLengthsAndData) {
  const auto levels = SupportedLevels();
  const simd::KernelTable& scalar =
      simd::KernelsForLevel(simd::SimdLevel::kScalar);
  std::uint64_t seed = 1;
  for (DataClass cls : kDataClasses) {
    for (std::size_t m : kLengths) {
      const std::vector<double> a = MakeSeries(cls, m, seed++);
      const std::vector<double> b = MakeSeries(cls, m, seed++);
      for (const auto& k : kPairKernels) {
        const double ref = (scalar.*(k.slot))(a.data(), b.data(), m);
        for (simd::SimdLevel level : levels) {
          const simd::KernelTable& table = simd::KernelsForLevel(level);
          const double got = (table.*(k.slot))(a.data(), b.data(), m);
          EXPECT_TRUE(BitEqual(ref, got))
              << k.name << " level=" << simd::ToString(level) << " m=" << m
              << " class=" << static_cast<int>(cls) << ": scalar=" << ref
              << " got=" << got;
        }
      }
    }
  }
}

TEST(SimdKernelBitIdentity, EaKernelsMatchScalarForAllCutoffs) {
  const auto levels = SupportedLevels();
  const simd::KernelTable& scalar =
      simd::KernelsForLevel(simd::SimdLevel::kScalar);
  std::uint64_t seed = 1000;
  for (DataClass cls : kDataClasses) {
    for (std::size_t m : kLengths) {
      const std::vector<double> a = MakeSeries(cls, m, seed++);
      const std::vector<double> b = MakeSeries(cls, m, seed++);
      for (const auto& k : kEaKernels) {
        const double full = (scalar.*(k.plain_slot))(a.data(), b.data(), m);
        // Cutoffs around the true raw value, plus never/always-abandon.
        const std::vector<double> cutoffs = {kInf,       full * 2.0 + 1.0,
                                             full,       full * 0.5,
                                             0.0,        -1.0};
        for (double cutoff : cutoffs) {
          const double ref =
              (scalar.*(k.ea_slot))(a.data(), b.data(), m, cutoff);
          for (simd::SimdLevel level : levels) {
            const simd::KernelTable& table = simd::KernelsForLevel(level);
            const double got =
                (table.*(k.ea_slot))(a.data(), b.data(), m, cutoff);
            EXPECT_TRUE(BitEqual(ref, got))
                << k.name << " level=" << simd::ToString(level) << " m=" << m
                << " cutoff=" << cutoff << ": scalar=" << ref
                << " got=" << got;
          }
        }
      }
    }
  }
}

TEST(SimdKernelBitIdentity, GenericPowSumIsLevelIndependentByConstruction) {
  // SumPowAbsDiff is one shared implementation; pinning different dispatch
  // levels must not change it (it does not dispatch at all).
  const std::vector<double> a = MakeSeries(DataClass::kGaussian, 129, 7);
  const std::vector<double> b = MakeSeries(DataClass::kGaussian, 129, 8);
  for (double p : {0.5, 1.5, 3.0, 20.0}) {
    const double ref = simd::SumPowAbsDiff(a.data(), b.data(), a.size(), p);
    for (simd::SimdLevel level : SupportedLevels()) {
      simd::SetActiveSimdLevelForTest(level);
      EXPECT_TRUE(BitEqual(
          ref, simd::SumPowAbsDiff(a.data(), b.data(), a.size(), p)));
    }
  }
  simd::ResetActiveSimdLevelForTest();
}

// --- Early-abandon contract -------------------------------------------------

TEST(SimdKernelEaContract, CompletedScansAreBitIdenticalToPlainKernel) {
  // Cutoff above the true raw value: the scan completes and must equal the
  // plain kernel to the last bit (same accumulation order).
  std::uint64_t seed = 42;
  for (simd::SimdLevel level : SupportedLevels()) {
    const simd::KernelTable& table = simd::KernelsForLevel(level);
    for (std::size_t m : kLengths) {
      const std::vector<double> a =
          MakeSeries(DataClass::kGaussian, m, seed++);
      const std::vector<double> b =
          MakeSeries(DataClass::kGaussian, m, seed++);
      for (const auto& k : kEaKernels) {
        const double full = (table.*(k.plain_slot))(a.data(), b.data(), m);
        const double ea =
            (table.*(k.ea_slot))(a.data(), b.data(), m, full + 1.0);
        EXPECT_TRUE(BitEqual(full, ea))
            << k.name << " m=" << m << " level=" << simd::ToString(level);
      }
    }
  }
}

TEST(SimdKernelEaContract, AbandonsSignalPlusInfinity) {
  const std::vector<double> a = MakeSeries(DataClass::kGaussian, 256, 5);
  const std::vector<double> b = MakeSeries(DataClass::kGaussian, 256, 6);
  for (simd::SimdLevel level : SupportedLevels()) {
    const simd::KernelTable& table = simd::KernelsForLevel(level);
    for (const auto& k : kEaKernels) {
      const double full = (table.*(k.plain_slot))(a.data(), b.data(), 256);
      ASSERT_GT(full, 0.0);
      // A partial sum reaches full * 0.01 long before the scan ends.
      const double ea =
          (table.*(k.ea_slot))(a.data(), b.data(), 256, full * 0.01);
      EXPECT_EQ(ea, kInf) << k.name << " level=" << simd::ToString(level);
    }
  }
}

// --- Aligned storage ---------------------------------------------------------

TEST(AlignedStorage, TimeSeriesBuffersAre64ByteAligned) {
  for (std::size_t m : {1u, 7u, 64u, 1000u}) {
    const TimeSeries ts(std::vector<double>(m, 1.5), 0);
    const auto addr = reinterpret_cast<std::uintptr_t>(ts.values().data());
    EXPECT_EQ(addr % simd::kSeriesAlignment, 0u) << "m=" << m;
  }
}

// --- Regression: Minkowski p validation (bug 1) ------------------------------

TEST(MinkowskiValidation, ConstructorRejectsNonPositiveP) {
  EXPECT_THROW(MinkowskiDistance(0.0), std::invalid_argument);
  EXPECT_THROW(MinkowskiDistance(-1.0), std::invalid_argument);
  EXPECT_THROW(MinkowskiDistance(-kInf), std::invalid_argument);
  EXPECT_THROW(MinkowskiDistance{kQNaN}, std::invalid_argument);
  EXPECT_NO_THROW(MinkowskiDistance(0.1));
  EXPECT_NO_THROW(MinkowskiDistance(2.0));
}

TEST(MinkowskiValidation, RegistryRejectsNonPositiveP) {
  const Registry& registry = Registry::Global();
  EXPECT_THROW(registry.Create("minkowski", {{"p", 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(registry.Create("minkowski", {{"p", -3.0}}),
               std::invalid_argument);
  EXPECT_NE(registry.Create("minkowski", {{"p", 1.5}}), nullptr);
  // This test must hold in release builds too — the seed code guarded p
  // with assert(), which NDEBUG compiles away.
}

// --- Regression: cutoff transformed once (bug 2) -----------------------------

TEST(EarlyAbandonCutoffDomain, CompletedScansMatchDistanceBitForBit) {
  // The definitive regression for the per-block sqrt/pow re-transformation:
  // whenever the true distance is below the cutoff, EarlyAbandonDistance
  // must return exactly Distance() — including cutoffs barely above the
  // true distance, where a mis-transformed comparison abandons wrongly.
  Rng rng(99);
  std::vector<double> av(100), bv(100);
  for (std::size_t i = 0; i < 100; ++i) {
    av[i] = rng.Gaussian();
    bv[i] = rng.Gaussian();
  }
  const std::span<const double> a(av), b(bv);
  std::vector<std::unique_ptr<DistanceMeasure>> measures;
  measures.push_back(std::make_unique<EuclideanDistance>());
  measures.push_back(std::make_unique<ManhattanDistance>());
  measures.push_back(std::make_unique<ChebyshevDistance>());
  measures.push_back(std::make_unique<MinkowskiDistance>(0.5));
  measures.push_back(std::make_unique<MinkowskiDistance>(3.0));
  measures.push_back(std::make_unique<SquaredEuclideanDistance>());
  measures.push_back(std::make_unique<ClarkDistance>());
  measures.push_back(std::make_unique<DivergenceDistance>());
  measures.push_back(std::make_unique<GowerDistance>());
  for (const auto& m : measures) {
    const double d = m->Distance(a, b);
    for (double factor : {1.0000001, 1.01, 2.0, 1e6}) {
      const double ea = m->EarlyAbandonDistance(a, b, d * factor);
      EXPECT_TRUE(BitEqual(d, ea))
          << m->name() << " cutoff=d*" << factor << " d=" << d
          << " ea=" << ea;
    }
    // At or below the true distance the contract allows an abandon, and the
    // returned value must be >= the cutoff.
    for (double factor : {1.0, 0.5, 0.01}) {
      const double ea = m->EarlyAbandonDistance(a, b, d * factor);
      EXPECT_GE(ea, d * factor) << m->name() << " cutoff=d*" << factor;
    }
  }
}

// --- Regression: Chebyshev NaN propagation (bug 3) ---------------------------

TEST(ChebyshevNaN, DistancePropagatesNaNOnBothDispatchPaths) {
  std::vector<double> av(40, 1.0), bv(40, 0.0);
  av[37] = kQNaN;  // in the tail, after large finite differences
  av[3] = 100.0;
  const ChebyshevDistance cheb;
  for (simd::SimdLevel level : SupportedLevels()) {
    simd::SetActiveSimdLevelForTest(level);
    EXPECT_TRUE(std::isnan(cheb.Distance(av, bv)))
        << "level=" << simd::ToString(level);
  }
  simd::ResetActiveSimdLevelForTest();
}

TEST(ChebyshevNaN, EarlyAbandonNeverMasksAnObservedNaN) {
  // NaN lands in the FIRST abandon block; a small cutoff would otherwise
  // trigger an abandon at the first check. Once a NaN has been seen the
  // kernel must keep scanning and return NaN, not +inf.
  std::vector<double> av(64, 1.0), bv(64, 0.0);
  av[2] = kQNaN;
  const ChebyshevDistance cheb;
  for (simd::SimdLevel level : SupportedLevels()) {
    simd::SetActiveSimdLevelForTest(level);
    EXPECT_TRUE(std::isnan(cheb.EarlyAbandonDistance(av, bv, 0.5)))
        << "level=" << simd::ToString(level);
  }
  simd::ResetActiveSimdLevelForTest();
}

TEST(ChebyshevNaN, FamilyNaNPolicyCoversMinFoldingMeasures) {
  // The same family contract applies to measures folding with min/max
  // (soergel, kulczynski_d, intersection family): NaN propagates.
  std::vector<double> av = {1.0, kQNaN, 3.0, 4.0};
  std::vector<double> bv = {2.0, 1.0, 0.0, 4.0};
  EXPECT_TRUE(std::isnan(SoergelDistance().Distance(av, bv)));
  EXPECT_TRUE(std::isnan(KulczynskiDDistance().Distance(av, bv)));
  EXPECT_TRUE(std::isnan(MotykaDistance().Distance(av, bv)));
  EXPECT_TRUE(std::isnan(RuzickaDistance().Distance(av, bv)));
  EXPECT_TRUE(std::isnan(TanimotoDistance().Distance(av, bv)));
}

// --- Measure-level cross-level identity --------------------------------------

TEST(SimdMeasureIdentity, DistancesAreBitIdenticalAcrossLevels) {
  std::uint64_t seed = 500;
  const std::vector<std::string> names = {
      "euclidean", "manhattan",          "chebyshev", "squared_euclidean",
      "clark",     "divergence",         "pearson_chisq", "neyman_chisq",
      "squared_chisq", "prob_symmetric_chisq", "additive_symmetric_chisq"};
  const Registry& registry = Registry::Global();
  for (const std::string& name : names) {
    const MeasurePtr m = registry.Create(name);
    ASSERT_NE(m, nullptr) << name;
    for (std::size_t len : {17u, 64u, 129u}) {
      const std::vector<double> a =
          MakeSeries(DataClass::kGaussian, len, seed++);
      const std::vector<double> b =
          MakeSeries(DataClass::kGaussian, len, seed++);
      simd::SetActiveSimdLevelForTest(simd::SimdLevel::kScalar);
      const double ref = m->Distance(a, b);
      for (simd::SimdLevel level : SupportedLevels()) {
        simd::SetActiveSimdLevelForTest(level);
        EXPECT_TRUE(BitEqual(ref, m->Distance(a, b)))
            << name << " level=" << simd::ToString(level) << " len=" << len;
      }
    }
  }
  simd::ResetActiveSimdLevelForTest();
}

// --- Prediction identity across levels on two archives -----------------------

TEST(SimdPredictionIdentity, PrunedOneNnMatchesAcrossLevelsOnTwoArchives) {
  PairwiseEngine engine(1);
  const Registry& registry = Registry::Global();
  const std::vector<std::string> names = {"euclidean", "manhattan",
                                          "squared_euclidean", "clark"};
  for (std::uint64_t seed : {20200614ull, 7ull}) {
    ArchiveOptions options;
    options.scale = ArchiveScale::kTiny;
    options.seed = seed;
    const std::vector<Dataset> archive = BuildArchive(options);
    ASSERT_FALSE(archive.empty());
    // Two datasets per archive keep the suite fast while still covering
    // different generator families.
    for (std::size_t d = 0; d < 2 && d < archive.size(); ++d) {
      const Dataset& ds = archive[d];
      for (const std::string& name : names) {
        const MeasurePtr m = registry.Create(name);
        simd::SetActiveSimdLevelForTest(simd::SimdLevel::kScalar);
        const std::vector<std::size_t> ref =
            engine.NearestNeighborIndicesPruned(ds.test(), ds.train(), *m);
        const std::vector<std::size_t> loo_ref =
            engine.LeaveOneOutNeighborsPruned(ds.train(), *m);
        for (simd::SimdLevel level : SupportedLevels()) {
          simd::SetActiveSimdLevelForTest(level);
          EXPECT_EQ(ref, engine.NearestNeighborIndicesPruned(
                             ds.test(), ds.train(), *m))
              << ds.name() << "/" << name
              << " level=" << simd::ToString(level);
          EXPECT_EQ(loo_ref, engine.LeaveOneOutNeighborsPruned(ds.train(), *m))
              << ds.name() << "/" << name
              << " level=" << simd::ToString(level);
        }
      }
    }
  }
  simd::ResetActiveSimdLevelForTest();
}

TEST(SimdPredictionIdentity, BatchPathEqualsOnePairPath) {
  // DistanceBatch must be bit-identical to looping Distance, and the
  // chunked early-abandon cascade must produce the same neighbor as the
  // matrix argmin.
  ArchiveOptions options;
  options.scale = ArchiveScale::kTiny;
  const std::vector<Dataset> archive = BuildArchive(options);
  ASSERT_FALSE(archive.empty());
  const Dataset& ds = archive[0];
  PairwiseEngine engine(1);
  const Registry& registry = Registry::Global();
  for (const std::string name : {"euclidean", "chebyshev", "divergence"}) {
    const MeasurePtr m = registry.Create(name);
    const Matrix w = engine.Compute(ds.test(), ds.train(), *m);
    for (std::size_t i = 0; i < ds.test_size(); ++i) {
      const auto& q = ds.test()[i].values();
      for (std::size_t j = 0; j < ds.train_size(); ++j) {
        EXPECT_TRUE(
            BitEqual(w(i, j), m->Distance(q, ds.train()[j].values())))
            << name << " (" << i << "," << j << ")";
      }
    }
    // Pruned argmin == matrix argmin (strict-<, lowest index wins).
    const std::vector<std::size_t> pruned =
        engine.NearestNeighborIndicesPruned(ds.test(), ds.train(), *m);
    for (std::size_t i = 0; i < ds.test_size(); ++i) {
      std::size_t best = PairwiseEngine::kNoNeighbor;
      double best_d = kInf;
      for (std::size_t j = 0; j < ds.train_size(); ++j) {
        if (w(i, j) < best_d) {
          best_d = w(i, j);
          best = j;
        }
      }
      EXPECT_EQ(pruned[i], best) << name << " row " << i;
    }
  }
}

}  // namespace
}  // namespace tsdist
