// Unit and property tests for MASS subsequence search.

#include "src/search/mass.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/linalg/rng.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(SlidingDotProductTest, HandComputedValues) {
  const std::vector<double> query = {1.0, 2.0};
  const std::vector<double> series = {1.0, 0.0, 2.0, 3.0};
  const auto dots = SlidingDotProduct(query, series);
  ASSERT_EQ(dots.size(), 3u);
  EXPECT_NEAR(dots[0], 1.0, 1e-9);   // 1*1 + 2*0
  EXPECT_NEAR(dots[1], 4.0, 1e-9);   // 1*0 + 2*2
  EXPECT_NEAR(dots[2], 8.0, 1e-9);   // 1*2 + 2*3
}

TEST(SlidingDotProductTest, QuerySameLengthAsSeries) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const auto dots = SlidingDotProduct(q, q);
  ASSERT_EQ(dots.size(), 1u);
  EXPECT_NEAR(dots[0], 14.0, 1e-9);
}

// Property sweep: the FFT profile matches the naive per-window computation.
class MassEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MassEquivalence, MatchesNaiveProfile) {
  const auto series = RandomSeries(200, 10 + GetParam());
  const auto query = RandomSeries(16 + GetParam() % 7, 100 + GetParam());
  const auto fast = MassDistanceProfile(query, series);
  const auto slow = NaiveDistanceProfile(query, series);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-6) << "window " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MassEquivalence, ::testing::Range(0, 10));

TEST(MassTest, EmbeddedPatternHasNearZeroDistance) {
  Rng rng(4);
  std::vector<double> series = RandomSeries(300, 5);
  // Plant a scaled/offset copy of the query at position 120: z-normalized
  // ED ignores scale and offset, so the profile dips to ~0 there.
  std::vector<double> query(32);
  for (std::size_t i = 0; i < query.size(); ++i) {
    query[i] = std::sin(0.4 * static_cast<double>(i));
  }
  for (std::size_t i = 0; i < query.size(); ++i) {
    series[120 + i] = 3.0 * query[i] + 7.0;
  }
  const auto profile = MassDistanceProfile(query, series);
  EXPECT_NEAR(profile[120], 0.0, 1e-6);
  // And 120 is the global minimum.
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_GE(profile[i], profile[120] - 1e-9);
  }
}

TEST(MassTest, ConstantWindowsHandled) {
  std::vector<double> series(64, 5.0);  // fully constant
  const auto query = RandomSeries(8, 6);
  const auto profile = MassDistanceProfile(query, series);
  for (double v : profile) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, std::sqrt(8.0), 1e-9);  // ||z-normed query|| = sqrt(m)
  }
}

TEST(MassTest, ConstantQueryAgainstConstantSeriesIsZero) {
  const std::vector<double> series(32, 2.0);
  const std::vector<double> query(8, -3.0);
  for (double v : MassDistanceProfile(query, series)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(TopKMatchesTest, FindsPlantedOccurrences) {
  std::vector<double> series = RandomSeries(400, 7);
  std::vector<double> query(24);
  for (std::size_t i = 0; i < query.size(); ++i) {
    query[i] = std::cos(0.5 * static_cast<double>(i));
  }
  // Plant two occurrences far apart.
  for (std::size_t i = 0; i < query.size(); ++i) {
    series[50 + i] = query[i];
    series[300 + i] = 2.0 * query[i] - 1.0;
  }
  const auto matches = TopKMatches(query, series, 2);
  ASSERT_EQ(matches.size(), 2u);
  std::vector<std::size_t> positions = {matches[0].position,
                                        matches[1].position};
  std::sort(positions.begin(), positions.end());
  EXPECT_EQ(positions[0], 50u);
  EXPECT_EQ(positions[1], 300u);
}

TEST(TopKMatchesTest, MatchesDoNotOverlap) {
  const auto series = RandomSeries(256, 8);
  const auto query = RandomSeries(32, 9);
  const auto matches = TopKMatches(query, series, 5);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    for (std::size_t j = i + 1; j < matches.size(); ++j) {
      const std::size_t gap =
          matches[i].position > matches[j].position
              ? matches[i].position - matches[j].position
              : matches[j].position - matches[i].position;
      EXPECT_GT(gap, 16u);  // exclusion zone = m/2
    }
  }
}

}  // namespace
}  // namespace tsdist
