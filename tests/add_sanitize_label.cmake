# Appends the `sanitize` label to every discovered test. Runs at ctest load
# time via TEST_INCLUDE_FILES, after the gtest_discover_tests scripts in
# this binary directory have called add_test — which is the only point where
# the discovered test names are known (gtest_discover_tests cannot forward
# list-valued properties like LABELS "tier1;sanitize" itself).
file(GLOB _tsdist_discovery_files "${CMAKE_CURRENT_LIST_DIR}/*_tests.cmake")
foreach(_file IN LISTS _tsdist_discovery_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "tier1;sanitize")
    endif()
  endforeach()
endforeach()
unset(_tsdist_discovery_files)
unset(_add_test_lines)
