// Unit tests for the Dataset type.

#include "src/core/dataset.h"

#include <gtest/gtest.h>

namespace tsdist {
namespace {

Dataset MakeToy() {
  std::vector<TimeSeries> train = {TimeSeries({1.0, 2.0}, 0),
                                   TimeSeries({3.0, 4.0}, 1)};
  std::vector<TimeSeries> test = {TimeSeries({5.0, 6.0}, 1)};
  return Dataset("toy", std::move(train), std::move(test));
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = MakeToy();
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.train_size(), 2u);
  EXPECT_EQ(d.test_size(), 1u);
  EXPECT_EQ(d.series_length(), 2u);
}

TEST(DatasetTest, NumClassesCountsDistinctLabelsAcrossSplits) {
  const Dataset d = MakeToy();
  EXPECT_EQ(d.num_classes(), 2u);
}

TEST(DatasetTest, LabelVectors) {
  const Dataset d = MakeToy();
  EXPECT_EQ(d.train_labels(), (std::vector<int>{0, 1}));
  EXPECT_EQ(d.test_labels(), (std::vector<int>{1}));
}

TEST(DatasetTest, RectangularDetection) {
  const Dataset d = MakeToy();
  EXPECT_TRUE(d.IsRectangular());

  std::vector<TimeSeries> train = {TimeSeries({1.0, 2.0}, 0),
                                   TimeSeries({3.0}, 1)};
  const Dataset ragged("ragged", std::move(train), {});
  EXPECT_FALSE(ragged.IsRectangular());
}

TEST(DatasetTest, EmptyDataset) {
  const Dataset d;
  EXPECT_EQ(d.series_length(), 0u);
  EXPECT_EQ(d.num_classes(), 0u);
  EXPECT_TRUE(d.IsRectangular());
}

TEST(DatasetTest, SeriesLengthFallsBackToTestSplit) {
  std::vector<TimeSeries> test = {TimeSeries({1.0, 2.0, 3.0}, 0)};
  const Dataset d("test-only", {}, std::move(test));
  EXPECT_EQ(d.series_length(), 3u);
}

}  // namespace
}  // namespace tsdist
