// Unit and integration tests for the kernel SVM evaluation framework.

#include "src/classify/svm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/kernel/rbf.h"
#include "src/kernel/sink.h"
#include "src/normalization/normalization.h"

namespace tsdist {
namespace {

// Linear kernel gram matrix of 2-d points.
Matrix LinearGram(const std::vector<std::pair<double, double>>& points) {
  const std::size_t n = points.size();
  Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      gram(i, j) = points[i].first * points[j].first +
                   points[i].second * points[j].second;
    }
  }
  return gram;
}

TEST(BinaryKernelSvmTest, SeparatesLinearlySeparablePoints) {
  // Two clusters on either side of x = 0.
  const std::vector<std::pair<double, double>> points = {
      {2.0, 1.0}, {3.0, -1.0}, {2.5, 0.5}, {-2.0, 1.0}, {-3.0, -1.0},
      {-2.5, 0.5}};
  const std::vector<int> labels = {1, 1, 1, -1, -1, -1};
  BinaryKernelSvm svm;
  SvmOptions options;
  options.c = 10.0;
  svm.Train(LinearGram(points), labels, options);
  // Training points classified correctly.
  const Matrix gram = LinearGram(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_GT(svm.Decision(gram.row(i)) * labels[i], 0.0) << "point " << i;
  }
}

TEST(BinaryKernelSvmTest, AlphasRespectBoxConstraint) {
  const std::vector<std::pair<double, double>> points = {
      {1.0, 0.0}, {0.9, 0.1}, {-1.0, 0.0}, {-0.9, -0.1}};
  const std::vector<int> labels = {1, 1, -1, -1};
  BinaryKernelSvm svm;
  SvmOptions options;
  options.c = 0.5;
  svm.Train(LinearGram(points), labels, options);
  for (double a : svm.alphas()) {
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, 0.5 + 1e-12);
  }
}

TEST(BinaryKernelSvmTest, DualConstraintHolds) {
  // sum alpha_i y_i = 0 at any SMO fixed point (pairwise updates preserve
  // it from the zero start).
  const std::vector<std::pair<double, double>> points = {
      {1.5, 0.3}, {1.2, -0.2}, {-1.4, 0.1}, {-1.1, -0.3}, {1.0, 1.0},
      {-1.0, -1.0}};
  const std::vector<int> labels = {1, 1, -1, -1, 1, -1};
  BinaryKernelSvm svm;
  svm.Train(LinearGram(points), labels, SvmOptions{});
  double acc = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    acc += svm.alphas()[i] * labels[i];
  }
  EXPECT_NEAR(acc, 0.0, 1e-9);
}

TEST(OneVsOneSvmTest, ThreeClassToyProblem) {
  // Three well-separated clusters on a line, linear kernel.
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 4; ++r) {
      points.push_back({3.0 * c + 0.1 * r, 0.5 * r});
      labels.push_back(c);
    }
  }
  const Matrix gram = LinearGram(points);
  OneVsOneSvm svm;
  svm.Train(gram, labels, SvmOptions{});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (svm.Predict(gram.row(i)) == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 10u);  // at least 10 of 12 training points
}

GeneratorOptions SvmDataOptions(std::uint64_t seed) {
  GeneratorOptions options;
  options.length = 48;
  options.train_per_class = 10;
  options.test_per_class = 8;
  options.noise = 0.15;
  options.seed = seed;
  return options;
}

TEST(EvaluateSvmTest, RbfSvmLearnsEasyDataset) {
  const Dataset data =
      ZScoreNormalizer().Apply(MakeSpectroMixtures(SvmDataOptions(1)));
  const RbfKernel rbf(0.05);
  SvmOptions options;
  options.c = 10.0;
  const double acc = EvaluateSvm(rbf, data, options, /*num_threads=*/2);
  EXPECT_GT(acc, 0.8);
}

TEST(EvaluateSvmTest, SinkSvmHandlesShiftedData) {
  GeneratorOptions gen = SvmDataOptions(2);
  gen.max_shift = 12;
  const Dataset data = ZScoreNormalizer().Apply(MakeShiftedEvents(gen));
  const SinkKernel sink(10.0);
  SvmOptions options;
  options.c = 10.0;
  const double acc = EvaluateSvm(sink, data, options, /*num_threads=*/2);
  EXPECT_GT(acc, 0.7);
}

TEST(EvaluateSvmTest, DeterministicGivenSeed) {
  const Dataset data = ZScoreNormalizer().Apply(MakeCbf(SvmDataOptions(3)));
  const RbfKernel rbf(0.05);
  SvmOptions options;
  options.seed = 5;
  const double a = EvaluateSvm(rbf, data, options, 1);
  const double b = EvaluateSvm(rbf, data, options, 1);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace tsdist
