// Unit and property tests for PAA, SAX, and the exact SAX k-NN index.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/index/paa.h"
#include "src/index/sax.h"
#include "src/index/sax_index.h"
#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"
#include "src/normalization/normalization.h"

namespace tsdist {
namespace {

std::vector<double> RandomZNormalized(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian();
  return ZScoreNormalizer().Apply(std::span<const double>(v));
}

TEST(PaaTest, ExactDivisionAverages) {
  const std::vector<double> v = {1.0, 3.0, 5.0, 7.0};
  const auto paa = PaaTransform(v, 2);
  ASSERT_EQ(paa.size(), 2u);
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 6.0);
}

TEST(PaaTest, RemainderGoesToLeadingSegments) {
  const auto widths = PaaSegmentWidths(10, 3);
  EXPECT_EQ(widths, (std::vector<std::size_t>{4, 3, 3}));
}

TEST(PaaTest, FullResolutionIsIdentity) {
  const std::vector<double> v = {1.0, -2.0, 0.5};
  EXPECT_EQ(PaaTransform(v, 3), v);
}

// Property sweep: PAA distance never exceeds ED.
class PaaLowerBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(PaaLowerBoundProperty, LowerBoundsEuclidean) {
  const std::size_t m = 60;
  const auto a = RandomZNormalized(m, 10 + GetParam());
  const auto b = RandomZNormalized(m, 200 + GetParam());
  const double ed = EuclideanDistance().Distance(a, b);
  for (std::size_t segments : {1u, 4u, 7u, 15u, 60u}) {
    const double lb = PaaLowerBound(PaaTransform(a, segments),
                                    PaaTransform(b, segments), m);
    EXPECT_LE(lb, ed + 1e-9) << "segments " << segments;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaaLowerBoundProperty, ::testing::Range(0, 15));

TEST(PaaTest, FullResolutionBoundIsExact) {
  const auto a = RandomZNormalized(32, 1);
  const auto b = RandomZNormalized(32, 2);
  const double lb = PaaLowerBound(PaaTransform(a, 32), PaaTransform(b, 32), 32);
  EXPECT_NEAR(lb, EuclideanDistance().Distance(a, b), 1e-9);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.05), -1.644853627, 1e-6);
}

TEST(SaxBreakpointsTest, BinaryAlphabetSplitsAtZero) {
  const auto bp = SaxBreakpoints(2);
  ASSERT_EQ(bp.size(), 1u);
  EXPECT_NEAR(bp[0], 0.0, 1e-9);
}

TEST(SaxBreakpointsTest, FourLetterAlphabetMatchesTable) {
  // Classic SAX table for a = 4: {-0.6745, 0, 0.6745}.
  const auto bp = SaxBreakpoints(4);
  ASSERT_EQ(bp.size(), 3u);
  EXPECT_NEAR(bp[0], -0.6745, 1e-3);
  EXPECT_NEAR(bp[1], 0.0, 1e-9);
  EXPECT_NEAR(bp[2], 0.6745, 1e-3);
}

TEST(SaxWordTest, SymbolsReflectLevel) {
  // Low then high halves map to the extreme symbols.
  std::vector<double> v(16);
  for (std::size_t i = 0; i < 8; ++i) v[i] = -2.0;
  for (std::size_t i = 8; i < 16; ++i) v[i] = 2.0;
  const auto word = SaxWord(v, 2, 4);
  ASSERT_EQ(word.size(), 2u);
  EXPECT_EQ(word[0], 0);
  EXPECT_EQ(word[1], 3);
}

// Property sweep: SAX MINDIST never exceeds ED (the indexing contract).
class SaxMinDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(SaxMinDistProperty, LowerBoundsEuclidean) {
  const std::size_t m = 64;
  const auto a = RandomZNormalized(m, 300 + GetParam());
  const auto b = RandomZNormalized(m, 400 + GetParam());
  const double ed = EuclideanDistance().Distance(a, b);
  for (std::size_t alphabet : {2u, 4u, 8u, 16u}) {
    const auto wa = SaxWord(a, 8, alphabet);
    const auto wb = SaxWord(b, 8, alphabet);
    EXPECT_LE(SaxMinDist(wa, wb, m, alphabet), ed + 1e-9)
        << "alphabet " << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaxMinDistProperty, ::testing::Range(0, 15));

TEST(SaxMinDistTest, IdenticalWordsHaveZeroDistance) {
  const auto a = RandomZNormalized(32, 5);
  const auto w = SaxWord(a, 4, 8);
  EXPECT_DOUBLE_EQ(SaxMinDist(w, w, 32, 8), 0.0);
}

class SaxIndexTest : public ::testing::Test {
 protected:
  static std::vector<TimeSeries> Collection() {
    GeneratorOptions options;
    options.length = 64;
    options.train_per_class = 20;
    options.test_per_class = 1;
    options.noise = 0.2;
    options.seed = 77;
    const Dataset data = ZScoreNormalizer().Apply(MakeCbf(options));
    return data.train();
  }
};

TEST_F(SaxIndexTest, KnnMatchesExhaustiveSearch) {
  const auto collection = Collection();
  SaxIndex index(8, 4);
  index.Build(collection);
  const EuclideanDistance ed;

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto query = RandomZNormalized(64, 500 + seed);
    const auto result = index.Knn(query, 3);
    ASSERT_EQ(result.size(), 3u);
    // Exhaustive reference.
    std::vector<std::pair<double, std::size_t>> all;
    for (std::size_t i = 0; i < collection.size(); ++i) {
      all.emplace_back(ed.Distance(query, collection[i].values()), i);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(result[r].index, all[r].second) << "rank " << r;
      EXPECT_NEAR(result[r].distance, all[r].first, 1e-9);
    }
  }
}

TEST_F(SaxIndexTest, StatsAccountForEverySeries) {
  const auto collection = Collection();
  SaxIndex index(8, 6);
  index.Build(collection);
  const auto query = RandomZNormalized(64, 9);
  SaxIndex::Stats stats;
  index.Knn(query, 1, &stats);
  EXPECT_EQ(stats.bucket_pruned + stats.paa_pruned + stats.full_distances,
            collection.size());
}

TEST_F(SaxIndexTest, PruningHappensForSelectiveQueries) {
  const auto collection = Collection();
  SaxIndex index(8, 8);
  index.Build(collection);
  // A query equal to an indexed series: its bucket is visited first and
  // the rest prunes aggressively.
  SaxIndex::Stats stats;
  const auto result = index.Knn(collection[5].values(), 1, &stats);
  EXPECT_EQ(result[0].index, 5u);
  EXPECT_NEAR(result[0].distance, 0.0, 1e-9);
  EXPECT_GT(stats.bucket_pruned + stats.paa_pruned, 0u);
}

TEST_F(SaxIndexTest, KLargerThanCollectionIsClamped) {
  const auto collection = Collection();
  SaxIndex index(4, 4);
  index.Build(collection);
  const auto query = RandomZNormalized(64, 11);
  const auto result = index.Knn(query, collection.size() + 10);
  EXPECT_EQ(result.size(), collection.size());
}

}  // namespace
}  // namespace tsdist
