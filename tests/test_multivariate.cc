// Unit and integration tests for the multivariate extension.

#include "src/multivariate/multivariate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsdist {
namespace {

MultivariateSeries Toy(int label = 0) {
  return MultivariateSeries({{1.0, 2.0, 3.0}, {0.0, -1.0, 1.0}}, label);
}

TEST(MultivariateSeriesTest, ShapeAccessors) {
  const MultivariateSeries s = Toy(7);
  EXPECT_EQ(s.num_channels(), 2u);
  EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(s.label(), 7);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 1.0);
}

TEST(MultivariateSeriesTest, ZNormalizationPerChannel) {
  const MultivariateSeries s = Toy().ZNormalized();
  for (std::size_t c = 0; c < s.num_channels(); ++c) {
    double mean = 0.0;
    for (std::size_t t = 0; t < s.length(); ++t) mean += s.at(c, t);
    EXPECT_NEAR(mean / static_cast<double>(s.length()), 0.0, 1e-12);
  }
}

TEST(MultivariateEdTest, DependentIsStackedEuclidean) {
  const MultivariateSeries a({{0.0, 0.0}, {0.0, 0.0}});
  const MultivariateSeries b({{3.0, 0.0}, {0.0, 4.0}});
  // Stacked differences: 3 and 4 -> 5.
  EXPECT_DOUBLE_EQ(MultivariateEdDependent().Distance(a, b), 5.0);
}

TEST(MultivariateEdTest, IndependentIsSumOfChannelEds) {
  const MultivariateSeries a({{0.0, 0.0}, {0.0, 0.0}});
  const MultivariateSeries b({{3.0, 0.0}, {0.0, 4.0}});
  // Channel EDs: 3 and 4 -> 7.
  EXPECT_DOUBLE_EQ(MultivariateEdIndependent().Distance(a, b), 7.0);
}

TEST(MultivariateEdTest, IndependentNeverBelowDependent) {
  // ||.||_2 of channel EDs <= their sum (triangle on the channel vector):
  // ED_D = sqrt(sum ed_c^2) <= sum ed_c = ED_I.
  MultivariateGeneratorOptions options;
  options.train_per_class = 2;
  options.test_per_class = 2;
  options.seed = 3;
  const auto data = MakeMultivariateMotions(options);
  const MultivariateEdIndependent ed_i;
  const MultivariateEdDependent ed_d;
  for (std::size_t i = 0; i + 1 < data.train.size(); ++i) {
    EXPECT_GE(ed_i.Distance(data.train[i], data.train[i + 1]),
              ed_d.Distance(data.train[i], data.train[i + 1]) - 1e-9);
  }
}

TEST(MultivariateDtwTest, IdenticalSeriesAreZero) {
  const MultivariateSeries s = Toy();
  EXPECT_DOUBLE_EQ(MultivariateDtwIndependent().Distance(s, s), 0.0);
  EXPECT_DOUBLE_EQ(MultivariateDtwDependent().Distance(s, s), 0.0);
}

TEST(MultivariateDtwTest, DependentNeverExceedsStackedSquaredEd) {
  MultivariateGeneratorOptions options;
  options.train_per_class = 3;
  options.test_per_class = 1;
  options.seed = 4;
  const auto data = MakeMultivariateMotions(options);
  const MultivariateDtwDependent dtw_d(100.0);
  const MultivariateEdDependent ed_d;
  for (std::size_t i = 0; i + 1 < data.train.size(); ++i) {
    const double ed = ed_d.Distance(data.train[i], data.train[i + 1]);
    EXPECT_LE(dtw_d.Distance(data.train[i], data.train[i + 1]),
              ed * ed + 1e-9);
  }
}

TEST(MultivariateDtwTest, IndependentAbsorbsPerChannelWarps) {
  // Channels warped independently: DTW_I can align each channel on its own
  // path; DTW_D (single path) cannot.
  MultivariateGeneratorOptions options;
  options.warp = 0.15;
  options.shared_warp = false;
  options.train_per_class = 8;
  options.test_per_class = 8;
  options.noise = 0.05;
  options.seed = 5;
  const auto data = MakeMultivariateMotions(options);
  const double acc_i =
      MultivariateOneNnAccuracy(MultivariateDtwIndependent(20.0), data);
  const double acc_d =
      MultivariateOneNnAccuracy(MultivariateDtwDependent(20.0), data);
  EXPECT_GE(acc_i, acc_d - 0.05);
  EXPECT_GT(acc_i, 0.6);
}

TEST(MultivariateOneNnTest, GeneratorClassesAreLearnable) {
  MultivariateGeneratorOptions options;
  options.noise = 0.1;
  options.seed = 6;
  const auto data = MakeMultivariateMotions(options);
  EXPECT_GT(MultivariateOneNnAccuracy(MultivariateEdDependent(), data), 0.7);
}

TEST(MultivariateGeneratorTest, DeterministicAndBalanced) {
  MultivariateGeneratorOptions options;
  options.seed = 7;
  const auto a = MakeMultivariateMotions(options);
  const auto b = MakeMultivariateMotions(options);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.size(), 30u);  // 3 classes x 10
  EXPECT_EQ(a.test.size(), 30u);
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].label(), b.train[i].label());
    EXPECT_DOUBLE_EQ(a.train[i].at(0, 0), b.train[i].at(0, 0));
  }
}

}  // namespace
}  // namespace tsdist
