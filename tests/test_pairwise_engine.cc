// Regression and contract tests for PairwiseEngine.
//
// The load-bearing test here is SelfMatrixMatchesFullComputeForEveryMeasure:
// ComputeSelf used to mirror the upper triangle unconditionally, silently
// corrupting the lower triangle of W for every asymmetric measure
// (Kullback-Leibler, Pearson/Neyman chi^2, K divergence, ASD) and every
// LOOCV accuracy derived from it.

#include "src/core/pairwise_engine.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/classify/one_nn.h"
#include "src/classify/param_grids.h"
#include "src/core/registry.h"
#include "src/elastic/dtw.h"
#include "src/linalg/rng.h"

namespace tsdist {
namespace {

// Strictly positive series keep ratio/entropy measures (KL, chi^2, ...) in
// their natural domain, where their asymmetry is material rather than a
// guard-clause artifact.
std::vector<TimeSeries> PositiveCollection(std::size_t n, std::size_t m,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimeSeries> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(m);
    for (auto& v : values) v = 0.1 + std::abs(rng.Gaussian());
    out.emplace_back(std::move(values), static_cast<int>(i % 2));
  }
  return out;
}

// Cells must agree to within one part in 1e12 (NaN == NaN for this
// purpose). The pre-fix mirroring bug corrupted asymmetric measures at the
// 1e-1..1e+1 scale, so this tolerance only forgives last-ulp noise from
// mathematically-symmetric measures whose evaluation is not bitwise
// argument-order invariant (e.g. SINK's normalization divisions).
void ExpectSameMatrix(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::isnan(a(i, j)) && std::isnan(b(i, j))) continue;
      const double scale =
          std::max({1.0, std::abs(a(i, j)), std::abs(b(i, j))});
      ASSERT_LE(std::abs(a(i, j) - b(i, j)), 1e-12 * scale)
          << what << " differs at (" << i << ", " << j << "): " << a(i, j)
          << " vs " << b(i, j);
    }
  }
}

class EveryMeasure : public ::testing::TestWithParam<std::string> {};

// The asymmetric-mirroring regression test: fails on the pre-fix engine for
// every asymmetric measure, passes now that mirroring is gated on
// measure.symmetric().
TEST_P(EveryMeasure, SelfMatrixMatchesFullCompute) {
  const MeasurePtr measure =
      Registry::Global().Create(GetParam(), UnsupervisedParamsFor(GetParam()));
  ASSERT_NE(measure, nullptr);
  const auto series = PositiveCollection(7, 24, 11);
  const PairwiseEngine engine(2);
  const Matrix self = engine.ComputeSelf(series, *measure);
  const Matrix full = engine.Compute(series, series, *measure);
  ExpectSameMatrix(self, full, GetParam().c_str());
}

// symmetric() must describe the measure's actual behaviour: a measure
// claiming symmetry gets its lower triangle mirrored, so a false claim
// would reintroduce the corruption this PR fixes.
TEST_P(EveryMeasure, SymmetricFlagMatchesBehaviour) {
  const MeasurePtr measure =
      Registry::Global().Create(GetParam(), UnsupervisedParamsFor(GetParam()));
  ASSERT_NE(measure, nullptr);
  const auto series = PositiveCollection(6, 24, 29);
  double max_gap = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      const double ab = measure->Distance(series[i].values(), series[j].values());
      const double ba = measure->Distance(series[j].values(), series[i].values());
      if (std::isnan(ab) || std::isnan(ba)) continue;
      const double scale = std::max({1.0, std::abs(ab), std::abs(ba)});
      max_gap = std::max(max_gap, std::abs(ab - ba) / scale);
    }
  }
  if (measure->symmetric()) {
    EXPECT_LE(max_gap, 1e-9) << GetParam() << " claims symmetry but is not";
  } else {
    EXPECT_GT(max_gap, 1e-9)
        << GetParam() << " claims asymmetry but behaved symmetrically";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryMeasure,
    ::testing::ValuesIn(Registry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(PairwiseEngineTest, ResultsAreBitIdenticalAcrossThreadCounts) {
  const auto series = PositiveCollection(9, 32, 5);
  const DtwDistance dtw(10.0);
  const PairwiseEngine serial(1);
  const PairwiseEngine threaded(4);
  ExpectSameMatrix(serial.ComputeSelf(series, dtw),
                   threaded.ComputeSelf(series, dtw), "ComputeSelf");
  ExpectSameMatrix(serial.Compute(series, series, dtw),
                   threaded.Compute(series, series, dtw), "Compute");
  EXPECT_EQ(serial.NearestNeighborIndicesPruned(series, series, dtw),
            threaded.NearestNeighborIndicesPruned(series, series, dtw));
}

TEST(PairwiseEngineTest, NearestNeighborRowAgreesWithMatrixArgmin) {
  const auto train = PositiveCollection(12, 32, 7);
  const auto test = PositiveCollection(4, 32, 8);
  const DtwDistance dtw(10.0);
  const PairwiseEngine engine(2);
  const Matrix e = engine.Compute(test, train, dtw);
  const std::vector<std::size_t> argmin = NearestNeighborIndices(e);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const NearestNeighbor nn = engine.NearestNeighborRow(test[i], train, dtw);
    EXPECT_EQ(nn.index, argmin[i]);
    EXPECT_EQ(nn.distance, e(i, argmin[i]));
  }
}

TEST(PairwiseEngineTest, NearestNeighborRowHonorsSkip) {
  const auto series = PositiveCollection(8, 24, 13);
  const DtwDistance dtw(10.0);
  const PairwiseEngine engine(2);
  // Skipping the query's own position must never return it.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const NearestNeighbor nn =
        engine.NearestNeighborRow(series[i], series, dtw, i);
    EXPECT_NE(nn.index, i);
    EXPECT_LT(nn.index, series.size());
  }
}

TEST(PairwiseEngineTest, ThrowsOnLengthMismatch) {
  std::vector<TimeSeries> queries = {TimeSeries({1.0, 2.0, 3.0}, 0)};
  std::vector<TimeSeries> references = {TimeSeries({1.0, 2.0, 3.0}, 0),
                                        TimeSeries({1.0, 2.0}, 1)};
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  EXPECT_THROW(engine.Compute(queries, references, dtw),
               std::invalid_argument);
  EXPECT_THROW(engine.ComputeSelf(references, dtw), std::invalid_argument);
  EXPECT_THROW(engine.NearestNeighborRow(queries[0], references, dtw),
               std::invalid_argument);
  EXPECT_THROW(engine.NearestNeighborIndicesPruned(queries, references, dtw),
               std::invalid_argument);
  EXPECT_THROW(engine.LeaveOneOutNeighborsPruned(references, dtw),
               std::invalid_argument);
}

TEST(PairwiseEngineTest, LengthMismatchMessageNamesTheOffendingPair) {
  std::vector<TimeSeries> queries = {TimeSeries({1.0, 2.0, 3.0}, 0)};
  std::vector<TimeSeries> references = {TimeSeries({1.0, 2.0, 3.0}, 0),
                                        TimeSeries({1.0, 2.0}, 1)};
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  try {
    engine.Compute(queries, references, dtw);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("references[1]"), std::string::npos) << message;
    EXPECT_NE(message.find("length"), std::string::npos) << message;
  }
}

TEST(PairwiseEngineTest, ThrowsOnEmptySeries) {
  std::vector<TimeSeries> series = {TimeSeries({1.0, 2.0}, 0),
                                    TimeSeries(std::vector<double>{}, 1)};
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  EXPECT_THROW(engine.ComputeSelf(series, dtw), std::invalid_argument);
}

TEST(PairwiseEngineTest, NearestNeighborRowThrowsWithoutCandidates) {
  const auto series = PositiveCollection(1, 16, 17);
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  EXPECT_THROW(
      engine.NearestNeighborRow(series[0], std::vector<TimeSeries>{}, dtw),
      std::invalid_argument);
  // The only reference is the skipped self-match: no candidates either.
  EXPECT_THROW(engine.NearestNeighborRow(series[0], series, dtw, 0),
               std::invalid_argument);
}

TEST(PairwiseEngineTest, LeaveOneOutNeighborsPrunedNeedsTwoSeries) {
  const auto series = PositiveCollection(1, 16, 19);
  const PairwiseEngine engine(1);
  const DtwDistance dtw(10.0);
  EXPECT_THROW(engine.LeaveOneOutNeighborsPruned(series, dtw),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsdist
