// Unit tests for the elastic-measure variants (DDTW, WDTW, CID).

#include "src/elastic/variants.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/elastic/dtw.h"
#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(DerivativeTest, LinearRampHasConstantDerivative) {
  const std::vector<double> ramp = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto d = DerivativeDistance::Derive(ramp);
  ASSERT_EQ(d.size(), ramp.size());
  for (double v : d) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(DerivativeTest, ConstantSeriesHasZeroDerivative) {
  const std::vector<double> flat(8, 3.0);
  for (double v : DerivativeDistance::Derive(flat)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(DerivativeTest, OffsetInvariance) {
  // DDTW's purpose: a vertical offset does not change the derivative, so
  // the wrapped distance is offset-invariant.
  const auto a = RandomSeries(32, 1);
  std::vector<double> shifted = a;
  for (auto& v : shifted) v += 5.0;
  DerivativeDistance ddtw(std::make_unique<DtwDistance>(10.0));
  EXPECT_NEAR(ddtw.Distance(a, shifted), 0.0, 1e-12);
  // Plain DTW, by contrast, sees the offset.
  EXPECT_GT(DtwDistance(10.0).Distance(a, shifted), 1.0);
}

TEST(DerivativeTest, NameReflectsBase) {
  DerivativeDistance d(std::make_unique<DtwDistance>());
  EXPECT_EQ(d.name(), "ddtw");
}

TEST(WdtwTest, IdenticalSeriesHaveZeroDistance) {
  const auto a = RandomSeries(24, 2);
  EXPECT_DOUBLE_EQ(WdtwDistance(0.05).Distance(a, a), 0.0);
}

TEST(WdtwTest, SymmetricInArguments) {
  const auto a = RandomSeries(20, 3);
  const auto b = RandomSeries(20, 4);
  const WdtwDistance wdtw(0.1);
  EXPECT_NEAR(wdtw.Distance(a, b), wdtw.Distance(b, a), 1e-9);
}

TEST(WdtwTest, ZeroSteepnessIsHalfWeightedDtw) {
  // g = 0 gives uniform weight 1/2 at every cell, so WDTW = DTW / 2 when
  // the optimal path is the same (weights uniform => same argmin path).
  const auto a = RandomSeries(16, 5);
  const auto b = RandomSeries(16, 6);
  const double wdtw = WdtwDistance(0.0).Distance(a, b);
  const double dtw = DtwDistance(100.0).Distance(a, b);
  EXPECT_NEAR(wdtw, 0.5 * dtw, 1e-9);
}

TEST(WdtwTest, SteeperPenaltyNeverDecreasesOffDiagonalCost) {
  // With very large g, off-diagonal matches cost full weight while
  // diagonal ones are nearly free: WDTW approaches something dominated by
  // the diagonal. Sanity: distance is monotone-ish in g for a warped pair
  // (weak check: g=5 >= g=0 up to numerical noise).
  const std::vector<double> a = {0, 0, 1, 2, 3, 3, 3, 2, 1, 0};
  const std::vector<double> b = {0, 1, 2, 3, 3, 3, 2, 1, 0, 0};
  const double loose = WdtwDistance(0.0).Distance(a, b);
  const double tight = WdtwDistance(5.0).Distance(a, b);
  EXPECT_GE(tight, loose - 1e-9);
}

TEST(CidTest, ComplexityEstimateOfFlatSeriesIsZero) {
  const std::vector<double> flat(10, 2.0);
  EXPECT_DOUBLE_EQ(CidDistance::ComplexityEstimate(flat), 0.0);
}

TEST(CidTest, ComplexityEstimateKnownValue) {
  // Differences: 1, -1, 1 -> sqrt(3).
  const std::vector<double> v = {0.0, 1.0, 0.0, 1.0};
  EXPECT_NEAR(CidDistance::ComplexityEstimate(v), std::sqrt(3.0), 1e-12);
}

TEST(CidTest, EqualComplexityLeavesBaseDistanceUnchanged) {
  const auto a = RandomSeries(32, 7);
  std::vector<double> b = a;
  std::reverse(b.begin(), b.end());  // same polyline length
  CidDistance cid(std::make_unique<EuclideanDistance>());
  EXPECT_NEAR(cid.Distance(a, b), EuclideanDistance().Distance(a, b), 1e-9);
}

TEST(CidTest, ComplexityMismatchInflatesDistance) {
  std::vector<double> smooth(32, 0.0);
  std::vector<double> rough(32, 0.0);
  for (std::size_t i = 0; i < 32; ++i) {
    smooth[i] = 0.1 * static_cast<double>(i);
    rough[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  CidDistance cid(std::make_unique<EuclideanDistance>());
  EXPECT_GT(cid.Distance(smooth, rough),
            EuclideanDistance().Distance(smooth, rough));
}

TEST(VariantRegistryTest, AllVariantsRegisterAndConstruct) {
  Registry registry;
  RegisterElasticVariants(&registry);
  for (const char* name : {"ddtw", "wdtw", "cid_euclidean", "cid_dtw"}) {
    const MeasurePtr m = registry.Create(name);
    ASSERT_NE(m, nullptr) << name;
  }
  const MeasurePtr wdtw = registry.Create("wdtw", {{"g", 0.2}});
  EXPECT_DOUBLE_EQ(wdtw->params().at("g"), 0.2);
}

TEST(VariantRegistryTest, VariantsAreNotInTheGlobalInventory) {
  // The paper's 71-measure count excludes these extensions; the global
  // registry must stay at 67 pairwise measures.
  EXPECT_FALSE(Registry::Global().Contains("ddtw"));
  EXPECT_FALSE(Registry::Global().Contains("wdtw"));
}

}  // namespace
}  // namespace tsdist
