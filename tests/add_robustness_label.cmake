# Appends the `robustness` label to every test discovered from the
# test_resilience binary, so CI can run the fault-tolerance suite alone
# (ctest -L robustness). Same TEST_INCLUDE_FILES technique as
# add_sanitize_label.cmake (which see): set_tests_properties is the only
# property command ctest's testfile processing reliably supports, so the
# full label list is substituted at configure time (@TSDIST_TEST_LABELS@)
# rather than appended — this script is registered last, so it wins.
file(GLOB _tsdist_resilience_files
     "${CMAKE_CURRENT_LIST_DIR}/test_resilience*_tests.cmake")
foreach(_file IN LISTS _tsdist_resilience_files)
  file(STRINGS "${_file}" _add_test_lines REGEX "^add_test")
  foreach(_line IN LISTS _add_test_lines)
    # add_test([=[SuiteName.TestName]=] ...)
    if(_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "@TSDIST_TEST_LABELS@;robustness")
    endif()
  endforeach()
endforeach()
unset(_tsdist_resilience_files)
unset(_add_test_lines)
