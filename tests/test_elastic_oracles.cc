// Independent-oracle cross-checks for the elastic measures: every
// rolling-row DP in src/elastic is compared against a naive full-matrix
// reference implementation on random data. Catches off-by-one and
// row-swap errors that property tests cannot see.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/elastic/elastic_all.h"
#include "src/linalg/rng.h"

namespace tsdist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

double RefDtw(const std::vector<double>& a, const std::vector<double>& b,
              double window_pct) {
  const std::size_t m = a.size();
  const std::size_t band =
      window_pct >= 100.0
          ? m
          : static_cast<std::size_t>(
                std::ceil(window_pct / 100.0 * static_cast<double>(m)));
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m + 1, kInf));
  d[0][0] = 0.0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap > band) continue;
      const double cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
      d[i][j] = cost + std::min({d[i - 1][j - 1], d[i - 1][j], d[i][j - 1]});
    }
  }
  return d[m][m];
}

double RefErp(const std::vector<double>& a, const std::vector<double>& b,
              double g) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 1; i <= m; ++i) {
    d[i][0] = d[i - 1][0] + std::fabs(a[i - 1] - g);
  }
  for (std::size_t j = 1; j <= m; ++j) {
    d[0][j] = d[0][j - 1] + std::fabs(b[j - 1] - g);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      d[i][j] = std::min({d[i - 1][j - 1] + std::fabs(a[i - 1] - b[j - 1]),
                          d[i - 1][j] + std::fabs(a[i - 1] - g),
                          d[i][j - 1] + std::fabs(b[j - 1] - g)});
    }
  }
  return d[m][m];
}

double RefEdr(const std::vector<double>& a, const std::vector<double>& b,
              double epsilon) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 0; i <= m; ++i) {
    d[i][0] = static_cast<double>(i);
    d[0][i] = static_cast<double>(i);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double sub =
          std::fabs(a[i - 1] - b[j - 1]) < epsilon ? 0.0 : 1.0;
      d[i][j] = std::min({d[i - 1][j - 1] + sub, d[i - 1][j] + 1.0,
                          d[i][j - 1] + 1.0});
    }
  }
  return d[m][m];
}

double RefLcss(const std::vector<double>& a, const std::vector<double>& b,
               double window_pct, double epsilon) {
  const std::size_t m = a.size();
  const std::size_t band =
      window_pct >= 100.0
          ? m
          : static_cast<std::size_t>(
                std::ceil(window_pct / 100.0 * static_cast<double>(m)));
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap > band) continue;
      if (std::fabs(a[i - 1] - b[j - 1]) < epsilon) {
        d[i][j] = d[i - 1][j - 1] + 1.0;
      } else {
        d[i][j] = std::max(d[i - 1][j], d[i][j - 1]);
      }
    }
  }
  double best = 0.0;
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = 0; j <= m; ++j) best = std::max(best, d[i][j]);
  }
  return 1.0 - best / static_cast<double>(m);
}

double RefMsmCost(double x, double prev, double other, double c) {
  if ((prev <= x && x <= other) || (prev >= x && x >= other)) return c;
  return c + std::min(std::fabs(x - prev), std::fabs(x - other));
}

double RefMsm(const std::vector<double>& a, const std::vector<double>& b,
              double c) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> d(m, std::vector<double>(m, 0.0));
  d[0][0] = std::fabs(a[0] - b[0]);
  for (std::size_t j = 1; j < m; ++j) {
    d[0][j] = d[0][j - 1] + RefMsmCost(b[j], b[j - 1], a[0], c);
  }
  for (std::size_t i = 1; i < m; ++i) {
    d[i][0] = d[i - 1][0] + RefMsmCost(a[i], a[i - 1], b[0], c);
    for (std::size_t j = 1; j < m; ++j) {
      d[i][j] = std::min({d[i - 1][j - 1] + std::fabs(a[i] - b[j]),
                          d[i - 1][j] + RefMsmCost(a[i], a[i - 1], b[j], c),
                          d[i][j - 1] + RefMsmCost(b[j], b[j - 1], a[i], c)});
    }
  }
  return d[m - 1][m - 1];
}

double RefTwe(const std::vector<double>& a, const std::vector<double>& b,
              double lambda, double nu) {
  const std::size_t m = a.size();
  auto at = [](const std::vector<double>& s, std::size_t idx) {
    return idx == 0 ? 0.0 : s[idx - 1];
  };
  std::vector<std::vector<double>> d(m + 1, std::vector<double>(m + 1, kInf));
  d[0][0] = 0.0;
  for (std::size_t i = 1; i <= m; ++i) {
    d[i][0] = d[i - 1][0] + std::fabs(at(a, i) - at(a, i - 1)) + nu + lambda;
  }
  for (std::size_t j = 1; j <= m; ++j) {
    d[0][j] = d[0][j - 1] + std::fabs(at(b, j) - at(b, j - 1)) + nu + lambda;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double match =
          d[i - 1][j - 1] + std::fabs(at(a, i) - at(b, j)) +
          std::fabs(at(a, i - 1) - at(b, j - 1)) +
          2.0 * nu * std::fabs(static_cast<double>(i) - static_cast<double>(j));
      const double del_a =
          d[i - 1][j] + std::fabs(at(a, i) - at(a, i - 1)) + nu + lambda;
      const double del_b =
          d[i][j - 1] + std::fabs(at(b, j) - at(b, j - 1)) + nu + lambda;
      d[i][j] = std::min({match, del_a, del_b});
    }
  }
  return d[m][m];
}

double RefSwale(const std::vector<double>& a, const std::vector<double>& b,
                double epsilon, double p, double r) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> s(m + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 0; i <= m; ++i) {
    s[i][0] = -static_cast<double>(i) * p;
    s[0][i] = -static_cast<double>(i) * p;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (std::fabs(a[i - 1] - b[j - 1]) < epsilon) {
        s[i][j] = s[i - 1][j - 1] + r;
      } else {
        s[i][j] = std::max(s[i - 1][j], s[i][j - 1]) - p;
      }
    }
  }
  return -s[m][m];
}

class ElasticOracleTest : public ::testing::TestWithParam<int> {
 protected:
  std::vector<double> A() const { return RandomSeries(25, 100 + GetParam()); }
  std::vector<double> B() const { return RandomSeries(25, 500 + GetParam()); }
};

TEST_P(ElasticOracleTest, DtwUnconstrained) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create("dtw", {{"delta", 100.0}});
  EXPECT_NEAR(m->Distance(a, b), RefDtw(a, b, 100.0), 1e-9);
}

TEST_P(ElasticOracleTest, DtwBanded) {
  const auto a = A(), b = B();
  for (double delta : {4.0, 10.0, 20.0}) {
    const auto m = Registry::Global().Create("dtw", {{"delta", delta}});
    EXPECT_NEAR(m->Distance(a, b), RefDtw(a, b, delta), 1e-9) << delta;
  }
}

TEST_P(ElasticOracleTest, Erp) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create("erp");
  EXPECT_NEAR(m->Distance(a, b), RefErp(a, b, 0.0), 1e-9);
}

TEST_P(ElasticOracleTest, Edr) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create("edr", {{"epsilon", 0.5}});
  EXPECT_NEAR(m->Distance(a, b), RefEdr(a, b, 0.5), 1e-9);
}

TEST_P(ElasticOracleTest, Lcss) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create(
      "lcss", {{"delta", 10.0}, {"epsilon", 0.5}});
  EXPECT_NEAR(m->Distance(a, b), RefLcss(a, b, 10.0, 0.5), 1e-9);
}

TEST_P(ElasticOracleTest, Msm) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create("msm", {{"c", 0.5}});
  EXPECT_NEAR(m->Distance(a, b), RefMsm(a, b, 0.5), 1e-9);
}

TEST_P(ElasticOracleTest, Twe) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create(
      "twe", {{"lambda", 0.5}, {"nu", 0.001}});
  EXPECT_NEAR(m->Distance(a, b), RefTwe(a, b, 0.5, 0.001), 1e-9);
}

TEST_P(ElasticOracleTest, Swale) {
  const auto a = A(), b = B();
  const auto m = Registry::Global().Create(
      "swale", {{"epsilon", 0.5}, {"p", 5.0}, {"r", 1.0}});
  EXPECT_NEAR(m->Distance(a, b), RefSwale(a, b, 0.5, 5.0, 1.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElasticOracleTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace tsdist
