// Evaluate measures on a real UCR-archive dataset.
//
//   $ ./ucr_runner <archive-dir> <DatasetName> [measure ...]
//   $ ./ucr_runner ~/UCRArchive_2018 ECGFiveDays nccc dtw msm
//
// Expects <archive-dir>/<DatasetName>/<DatasetName>_TRAIN.tsv and
// ..._TEST.tsv in the standard UCR format. Varying lengths and missing
// values are handled by the loader (resampling + linear interpolation),
// matching the paper's preprocessing. Series are z-normalized.

#include <cstdio>
#include <string>
#include <vector>

#include "src/classify/tuning.h"
#include "src/data/ucr_loader.h"
#include "src/normalization/normalization.h"

int main(int argc, char** argv) {
  using namespace tsdist;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <archive-dir> <DatasetName> [measure ...]\n"
                 "example: %s ~/UCRArchive_2018 ECGFiveDays nccc dtw\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string dir = std::string(argv[1]) + "/" + argv[2];
  const LoadResult loaded = LoadUcrDataset(dir, argv[2]);
  if (!loaded.ok) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[2],
                 loaded.error.c_str());
    return 1;
  }
  const Dataset data = ZScoreNormalizer().Apply(loaded.dataset);
  std::printf("%s: %zu train / %zu test series of length %zu, %zu classes\n",
              data.name().c_str(), data.train_size(), data.test_size(),
              data.series_length(), data.num_classes());

  std::vector<std::string> measures;
  for (int i = 3; i < argc; ++i) measures.emplace_back(argv[i]);
  if (measures.empty()) measures = {"euclidean", "lorentzian", "nccc"};

  const PairwiseEngine engine;
  for (const auto& name : measures) {
    if (Registry::Global().Create(name) == nullptr) {
      std::fprintf(stderr, "unknown measure '%s' (see Registry names)\n",
                   name.c_str());
      continue;
    }
    const EvalResult r = EvaluateFixed(name, {}, data, engine);
    std::printf("  %-14s 1-NN test accuracy: %.4f\n", name.c_str(),
                r.test_accuracy);
  }
  return 0;
}
