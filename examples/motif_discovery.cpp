// Motif discovery and anomaly detection with the matrix profile — the
// intro's remaining headline tasks, driven entirely by the z-normalized ED
// machinery of this library.
//
//   $ ./motif_discovery
//
// Builds a day-long sensor-style recording with a repeated daily routine
// (the motif) and one corrupted segment (the discord), then recovers both.

#include <cstdio>
#include <cmath>
#include <vector>

#include "src/linalg/rng.h"
#include "src/search/matrix_profile.h"

int main() {
  using namespace tsdist;

  const std::size_t n = 2000;
  const std::size_t window = 64;
  Rng rng(31);
  std::vector<double> series(n);
  // Structured background: a daily cycle plus mild noise. (A discord is
  // only meaningful against repeating structure — in pure noise every
  // window is equally anomalous.)
  for (std::size_t i = 0; i < n; ++i) {
    series[i] =
        0.8 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 125.0) +
        rng.Gaussian(0.0, 0.1);
  }

  // The routine: a double bump, repeated at two far-apart times of "day".
  auto routine = [](std::size_t t) {
    const double x = static_cast<double>(t) / 64.0;
    return 2.0 * std::exp(-120.0 * (x - 0.3) * (x - 0.3)) +
           1.4 * std::exp(-120.0 * (x - 0.7) * (x - 0.7));
  };
  // The two occurrences are genuine repetitions of the same event: the
  // routine *replaces* the background there, with only tiny per-occurrence
  // noise (background windows, by contrast, differ by the full noise
  // level).
  for (std::size_t t = 0; t < window; ++t) {
    series[400 + t] = routine(t) + rng.Gaussian(0.0, 0.01);
    series[1500 + t] = routine(t) + rng.Gaussian(0.0, 0.01);
  }
  // The anomaly: a burst of high-frequency oscillation.
  for (std::size_t t = 0; t < window; ++t) {
    series[1000 + t] += ((t % 2 == 0) ? 2.0 : -2.0);
  }

  std::printf("recording: %zu points, window %zu\n", n, window);
  std::printf("planted: motif pair at 400 and 1500, anomaly at 1000\n\n");

  const MatrixProfile mp = ComputeMatrixProfile(series, window);

  const MotifPair motif = TopMotif(mp);
  std::printf("top motif:   windows %4zu and %4zu (profile %.4f)\n",
              motif.first, motif.second, motif.distance);

  const auto discords = TopDiscords(mp, 3);
  std::printf("top discords:");
  for (std::size_t d : discords) std::printf(" %zu", d);
  std::printf("\n\n");

  const bool motif_found =
      (motif.first + 3 >= 400 && motif.first <= 403) &&
      (motif.second + 3 >= 1500 && motif.second <= 1503);
  const bool discord_found =
      !discords.empty() && discords[0] + window >= 1000 &&
      discords[0] <= 1000 + window;
  std::printf("motif recovered:   %s\n", motif_found ? "yes" : "NO");
  std::printf("anomaly recovered: %s\n", discord_found ? "yes" : "NO");
  return 0;
}
