// Clustering with distance measures: k-Shape (SBD) vs k-means (ED) vs
// k-medoids (DTW) on datasets with different dominant distortions.
//
//   $ ./clustering
//
// Demonstrates the downstream impact of the measure choice the paper
// studies: on phase-shifted data the cross-correlation-based k-Shape
// dominates; on warped data a DTW k-medoids catches up.

#include <cstdio>

#include "src/cluster/evaluation.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/kshape.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"

namespace {

void RunOn(const tsdist::Dataset& data) {
  using namespace tsdist;
  const std::size_t k = data.num_classes();
  const std::vector<int> truth = data.train_labels();
  std::printf("%s: %zu series, %zu classes\n", data.name().c_str(),
              data.train_size(), k);

  KShapeOptions ks;
  ks.k = k;
  ks.seed = 11;
  const ClusteringResult kshape = KShape(data.train(), ks);
  std::printf("  k-shape (SBD)      ARI %.3f  purity %.3f  (%d iters)\n",
              AdjustedRandIndex(kshape.assignments, truth),
              Purity(kshape.assignments, truth), kshape.iterations);

  KMeansOptions km;
  km.k = k;
  km.seed = 11;
  const ClusteringResult kmeans = KMeans(data.train(), km);
  std::printf("  k-means (ED)       ARI %.3f  purity %.3f  (%d iters)\n",
              AdjustedRandIndex(kmeans.assignments, truth),
              Purity(kmeans.assignments, truth), kmeans.iterations);

  const MeasurePtr dtw = Registry::Global().Create("dtw", {{"delta", 10.0}});
  const ClusteringResult kmed = KMedoids(data.train(), *dtw, km);
  std::printf("  k-medoids (DTW)    ARI %.3f  purity %.3f  (%d iters)\n\n",
              AdjustedRandIndex(kmed.assignments, truth),
              Purity(kmed.assignments, truth), kmed.iterations);
}

}  // namespace

int main() {
  using namespace tsdist;
  const ZScoreNormalizer z;

  GeneratorOptions options;
  options.length = 96;
  options.train_per_class = 20;
  options.test_per_class = 1;
  options.noise = 0.15;
  options.seed = 23;

  // Phase-shift-dominated: the k-Shape regime.
  {
    GeneratorOptions o = options;
    o.max_shift = 30;
    RunOn(z.Apply(MakeShiftedEvents(o)));
  }
  // Warp-dominated: the elastic regime.
  {
    GeneratorOptions o = options;
    o.warp = 0.2;
    RunOn(z.Apply(MakeWarpedPrototypes(o)));
  }
  // Noise-dominated shapes.
  {
    GeneratorOptions o = options;
    o.noise = 0.3;
    RunOn(z.Apply(MakeCbf(o)));
  }
  return 0;
}
