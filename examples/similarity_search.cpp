// Similarity search over an ECG-like collection: the workload that
// motivates the paper (1-NN classification "resembles the problem solved in
// time-series similarity search").
//
//   $ ./similarity_search
//
// Builds a beat collection, takes a query with a premature beat, and shows
// the top-5 matches under a lock-step, a sliding, and an elastic measure —
// illustrating how the measure choice changes which records come back.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"

namespace {

const char* ClassName(int label) {
  switch (label) {
    case 0: return "normal";
    case 1: return "premature-beat";
    case 2: return "inverted-T";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace tsdist;

  GeneratorOptions options;
  options.length = 128;
  options.train_per_class = 30;  // the "database"
  options.test_per_class = 2;    // queries
  options.noise = 0.15;
  options.warp = 0.05;
  options.max_shift = 8;
  options.seed = 17;
  const Dataset data = ZScoreNormalizer().Apply(MakeEcgLike(options));
  const auto& database = data.train();

  // Pick a premature-beat query.
  const TimeSeries* query = nullptr;
  for (const auto& s : data.test()) {
    if (s.label() == 1) {
      query = &s;
      break;
    }
  }
  if (query == nullptr) {
    std::fprintf(stderr, "no premature-beat query generated\n");
    return 1;
  }

  std::printf("query: a %s beat; database: %zu beats (%d classes)\n\n",
              ClassName(query->label()), database.size(),
              static_cast<int>(data.num_classes()));

  for (const char* name : {"euclidean", "nccc", "msm"}) {
    const MeasurePtr measure = Registry::Global().Create(name);
    std::vector<double> dist(database.size());
    for (std::size_t j = 0; j < database.size(); ++j) {
      dist[j] = measure->Distance(query->values(), database[j].values());
    }
    std::vector<std::size_t> order(database.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&dist](std::size_t a, std::size_t b) {
                        return dist[a] < dist[b];
                      });
    std::printf("top-5 under %s:\n", name);
    int same_class = 0;
    for (int k = 0; k < 5; ++k) {
      const std::size_t idx = order[static_cast<std::size_t>(k)];
      const bool match = database[idx].label() == query->label();
      same_class += match ? 1 : 0;
      std::printf("  #%d  record %3zu  d=%8.4f  class=%-15s %s\n", k + 1, idx,
                  dist[idx], ClassName(database[idx].label()),
                  match ? "" : "<- wrong class");
    }
    std::printf("  => %d/5 retrieved beats share the query's class\n\n",
                same_class);
  }
  return 0;
}
