// Subsequence search with MASS: find where a short pattern occurs inside a
// long recording — the "subsequence matching" problem of Faloutsos et al.
// [51] that seeded the whole similarity-search line the paper revisits.
//
//   $ ./subsequence_search
//
// Builds a long noisy recording with three planted heartbeats-like events,
// then locates them with the FFT-accelerated distance profile.

#include <cstdio>
#include <cmath>
#include <vector>

#include "src/linalg/rng.h"
#include "src/search/mass.h"

int main() {
  using namespace tsdist;

  // A 4000-point noisy recording.
  Rng rng(2026);
  std::vector<double> recording(4000);
  for (auto& v : recording) v = rng.Gaussian(0.0, 0.4);
  // Slow baseline wander.
  for (std::size_t i = 0; i < recording.size(); ++i) {
    recording[i] += std::sin(0.002 * static_cast<double>(i));
  }

  // The pattern: a spike followed by a dip (a crude QRS complex).
  const std::size_t m = 64;
  std::vector<double> pattern(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(m);
    pattern[i] = 2.5 * std::exp(-200.0 * (t - 0.4) * (t - 0.4)) -
                 1.0 * std::exp(-150.0 * (t - 0.55) * (t - 0.55));
  }

  // Plant three occurrences at different scales and offsets.
  const std::size_t positions[] = {700, 1900, 3200};
  const double scales[] = {1.0, 2.2, 0.6};
  const double offsets[] = {0.0, 1.5, -0.8};
  for (int occ = 0; occ < 3; ++occ) {
    for (std::size_t i = 0; i < m; ++i) {
      recording[positions[occ] + i] =
          scales[occ] * pattern[i] + offsets[occ] + rng.Gaussian(0.0, 0.05);
    }
  }

  std::printf("recording: %zu points; pattern: %zu points; "
              "3 occurrences planted at 700, 1900, 3200\n\n",
              recording.size(), m);

  const auto matches = TopKMatches(pattern, recording, 5);
  std::printf("top-5 matches by z-normalized subsequence ED (MASS):\n");
  for (std::size_t r = 0; r < matches.size(); ++r) {
    bool planted = false;
    for (std::size_t p : positions) {
      const std::size_t gap = matches[r].position > p
                                  ? matches[r].position - p
                                  : p - matches[r].position;
      if (gap <= 3) planted = true;
    }
    std::printf("  #%zu  position %4zu  distance %7.4f  %s\n", r + 1,
                matches[r].position, matches[r].distance,
                planted ? "<- planted occurrence" : "(background)");
  }
  std::printf("\nz-normalization inside the profile makes the match immune "
              "to the\nper-occurrence scale and offset — the invariance "
              "Section 4 of the\npaper is about.\n");
  return 0;
}
