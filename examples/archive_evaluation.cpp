// A miniature version of the paper's full evaluation pipeline: several
// measures over the synthetic archive, with Wilcoxon pairwise verdicts and
// a Friedman/Nemenyi critical-difference diagram.
//
//   $ ./archive_evaluation [tiny|small|medium]
//
// This is the template to copy when evaluating your own measure: implement
// DistanceMeasure, register it, add its name below.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "src/classify/tuning.h"
#include "src/data/archive.h"
#include "src/stats/ranking.h"
#include "src/stats/wilcoxon.h"

int main(int argc, char** argv) {
  using namespace tsdist;

  ArchiveOptions archive_options;
  if (argc > 1) {
    if (std::strcmp(argv[1], "tiny") == 0) {
      archive_options.scale = ArchiveScale::kTiny;
    } else if (std::strcmp(argv[1], "medium") == 0) {
      archive_options.scale = ArchiveScale::kMedium;
    }
  }
  const std::vector<Dataset> archive = BuildArchive(archive_options);
  const PairwiseEngine engine;

  const std::vector<std::string> measures = {"euclidean", "lorentzian",
                                             "nccc", "dtw", "msm"};
  std::printf("evaluating %zu measures on %zu datasets...\n\n",
              measures.size(), archive.size());

  Matrix accuracies(archive.size(), measures.size());
  for (std::size_t i = 0; i < archive.size(); ++i) {
    std::printf("%-20s", archive[i].name().c_str());
    for (std::size_t j = 0; j < measures.size(); ++j) {
      const EvalResult r = EvaluateFixed(measures[j], {}, archive[i], engine);
      accuracies(i, j) = r.test_accuracy;
      std::printf("  %s=%.3f", measures[j].c_str(), r.test_accuracy);
    }
    std::printf("\n");
  }

  // Pairwise: is each measure significantly better than ED?
  std::printf("\npairwise Wilcoxon vs euclidean (95%%):\n");
  std::vector<double> ed_acc(archive.size());
  for (std::size_t i = 0; i < archive.size(); ++i) ed_acc[i] = accuracies(i, 0);
  for (std::size_t j = 1; j < measures.size(); ++j) {
    std::vector<double> acc(archive.size());
    for (std::size_t i = 0; i < archive.size(); ++i) acc[i] = accuracies(i, j);
    const WilcoxonResult w = WilcoxonSignedRank(acc, ed_acc);
    std::printf("  %-12s p=%.4f  %s\n", measures[j].c_str(), w.p_value,
                (w.p_value < 0.05 && w.w_plus > w.w_minus)
                    ? "significantly better"
                    : "no significant difference");
  }

  // All together: the paper's critical-difference figure.
  const CdAnalysis analysis = AnalyzeRanks(accuracies, measures, 0.10);
  std::printf("\n");
  std::cout << RenderCdDiagram(analysis);
  return 0;
}
