// Quickstart: the five measure categories on a pair of series, plus a
// minimal end-to-end 1-NN classification.
//
//   $ ./quickstart
//
// Walks through (1) constructing series, (2) normalizing, (3) computing
// distances from each category, (4) classifying a small synthetic dataset.

#include <cstdio>
#include <vector>

#include "src/classify/one_nn.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"

int main() {
  using namespace tsdist;

  // 1. Two example series: y is a shifted, noisy copy of x.
  std::vector<double> x(64, 0.0), y(64, 0.0);
  Rng rng(42);
  for (int i = 20; i < 36; ++i) x[static_cast<std::size_t>(i)] = 1.0;
  for (int i = 28; i < 44; ++i) y[static_cast<std::size_t>(i)] = 1.0;
  for (auto& v : y) v += rng.Gaussian(0.0, 0.05);

  // 2. Normalize (z-score, the time-series default).
  const ZScoreNormalizer zscore;
  const std::vector<double> xn = zscore.Apply(std::span<const double>(x));
  const std::vector<double> yn = zscore.Apply(std::span<const double>(y));

  // 3. One measure from each pairwise category, via the registry.
  std::printf("distance between a pattern and its shifted copy:\n");
  for (const char* name : {"euclidean", "lorentzian", "nccc", "dtw", "kdtw"}) {
    const MeasurePtr measure = Registry::Global().Create(name);
    std::printf("  %-12s (%-9s): %8.4f\n", name,
                ToString(measure->category()).c_str(),
                measure->Distance(xn, yn));
  }
  std::printf("note how the sliding/elastic/kernel measures see through the "
              "shift\nwhile the lock-step measures do not.\n\n");

  // 4. End-to-end: generate a labeled dataset, classify with 1-NN.
  GeneratorOptions options;
  options.length = 64;
  options.train_per_class = 10;
  options.test_per_class = 10;
  options.noise = 0.2;
  const Dataset data = zscore.Apply(MakeCbf(options));

  const PairwiseEngine engine;
  for (const char* name : {"euclidean", "nccc", "msm"}) {
    const MeasurePtr measure = Registry::Global().Create(name);
    const Matrix e = engine.Compute(data.test(), data.train(), *measure);
    const double acc =
        OneNnAccuracy(e, data.test_labels(), data.train_labels());
    std::printf("1-NN accuracy on %s with %-10s: %.3f\n", data.name().c_str(),
                name, acc);
  }
  return 0;
}
